# Convenience targets for the reproduction workspace.

.PHONY: install test bench tables validate examples all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

tables:
	pytest benchmarks/ -s --benchmark-disable

validate:
	python -m repro.cli validate

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

all: test bench validate
