# Convenience targets for the reproduction workspace.

.PHONY: install test doctest bench bench-json parallel-bench kernel-bench compression-bench serving-bench scale-bench tables validate examples lint typecheck race-check crash-check all

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

lint:
	PYTHONPATH=src python -m repro.lint src tests
	@if command -v ruff >/dev/null 2>&1; then ruff check src tests; \
	else echo "ruff not installed (pip install -e .[lint]); skipped"; fi

typecheck:
	@if python -c "import mypy" 2>/dev/null; then python -m mypy src/repro; \
	else echo "mypy not installed (pip install -e .[lint]); skipped"; fi

# EBI3xx at a zero baseline plus the seeded-interleaving stress suite
# (docs/concurrency.md).
race-check:
	PYTHONPATH=src python -m repro.lint src tests \
		--select EBI301 EBI302 EBI303 EBI304 --no-baseline
	PYTHONPATH=src python -m pytest -q tests/test_concurrency.py

# Durability discipline at a zero baseline plus the deterministic
# crash matrix, the WAL/fault suites and the delta-tier guarantees
# (docs/robustness.md "Durability & recovery").
crash-check:
	PYTHONPATH=src python -m repro.lint src tests \
		--select EBI401 --no-baseline
	PYTHONPATH=src python -m pytest -q tests/test_crash_matrix.py \
		tests/test_wal.py tests/test_delta.py tests/test_faults.py

doctest:
	PYTHONPATH=src python -m pytest --doctest-modules \
		src/repro/query src/repro/storage src/repro/obs \
		src/repro/bench src/repro/shard src/repro/serving \
		src/repro/kernels src/repro/cache.py src/repro/database.py

bench:
	pytest benchmarks/ --benchmark-only

bench-json:
	PYTHONPATH=src python -m repro.cli bench --quick
	PYTHONPATH=src python -m repro.cli bench

parallel-bench:
	PYTHONPATH=src python -m repro.cli bench --quick --workers 1,4

kernel-bench:
	PYTHONPATH=src python -m repro.cli bench --case kernel_eval \
		--suite kernel --workers 1,4

compression-bench:
	PYTHONPATH=src python -m repro.cli bench --case compression \
		--suite compression

# Query-serving tier: result-cache/process-pool bit-identity and
# throughput lines plus the served zipf multi-tenant workload
# (docs/serving.md).
serving-bench:
	PYTHONPATH=src python -m repro.cli bench --case serving \
		--suite serving

# Out-of-core streaming: mapped planes under a 25% plane-byte budget
# against the fully-resident reference, page reads vs the Section 3
# model envelope (docs/out_of_core.md).
scale-bench:
	PYTHONPATH=src python -m repro.cli bench --case scale \
		--suite scale

tables:
	pytest benchmarks/ -s --benchmark-disable

validate:
	python -m repro.cli validate

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

all: lint typecheck race-check crash-check test doctest bench validate
