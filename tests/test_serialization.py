"""Unit tests for repro.index.serialization."""

import random

import pytest

from repro.encoding.mapping import NULL, VOID
from repro.errors import IndexBuildError
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.serialization import dumps, load, loads, save
from repro.query.predicates import Equals, InList, IsNull, Range
from repro.table.table import Table


@pytest.fixture
def indexed_table():
    table = Table("t", ["v"])
    rng = random.Random(41)
    for _ in range(200):
        value = rng.randrange(30)
        table.append({"v": value if value else None})
    index = EncodedBitmapIndex(table, "v")
    return table, index


class TestRoundtrip:
    def test_bytes_roundtrip_preserves_lookups(self, indexed_table):
        table, index = indexed_table
        restored = loads(dumps(index), table)
        for predicate in (
            Equals("v", 7),
            InList("v", [1, 2, 3]),
            Range("v", 10, 20),
            IsNull("v"),
        ):
            assert restored.lookup(predicate) == index.lookup(predicate)

    def test_mapping_preserved(self, indexed_table):
        table, index = indexed_table
        restored = loads(dumps(index), table)
        assert restored.mapping == index.mapping
        assert restored.width == index.width
        assert restored.mapping.encode(VOID) == 0
        assert NULL in restored.mapping

    def test_file_roundtrip(self, indexed_table, tmp_path):
        table, index = indexed_table
        path = tmp_path / "index.ebix"
        save(index, str(path))
        restored = load(str(path), table)
        pred = Range("v", 5, 25)
        assert restored.lookup(pred) == index.lookup(pred)

    def test_restored_index_maintainable(self, indexed_table):
        table, index = indexed_table
        restored = loads(dumps(index), table)
        table.attach(restored)
        row_id = table.append({"v": 7})
        assert row_id in restored.lookup(
            Equals("v", 7)
        ).indices().tolist()
        table.detach(restored)

    def test_void_vector_mode_roundtrip(self):
        table = Table("t", ["v"])
        for value in ["a", "b", "c", "a"]:
            table.append({"v": value})
        index = EncodedBitmapIndex(table, "v", void_mode="vector")
        table.attach(index)
        table.delete(1)
        restored = loads(dumps(index), table)
        pred = InList("v", ["a", "b", "c"])
        assert restored.lookup(pred) == index.lookup(pred)
        table.detach(index)


class TestValidation:
    def test_bad_magic(self, indexed_table):
        table, _ = indexed_table
        with pytest.raises(IndexBuildError):
            loads(b"NOPE" + b"\x00" * 20, table)

    def test_row_count_mismatch(self, indexed_table):
        table, index = indexed_table
        payload = dumps(index)
        other = Table("o", ["v"])
        other.append({"v": 1})
        with pytest.raises(IndexBuildError):
            loads(payload, other)

    def test_missing_column(self, indexed_table):
        table, index = indexed_table
        payload = dumps(index)
        other = Table("o", ["w"])
        for _ in range(len(table)):
            other.append({"w": 1})
        with pytest.raises(IndexBuildError):
            loads(payload, other)

    def test_unserialisable_value(self):
        table = Table("t", ["v"])
        table.append({"v": (1, 2)})  # tuple values not supported
        index = EncodedBitmapIndex(table, "v")
        with pytest.raises(IndexBuildError):
            dumps(index)
