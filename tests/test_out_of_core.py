"""Out-of-core execution: mapped planes, residency, streaming.

Covers the spill/evict/fault-in tier end to end (docs/out_of_core.md):

* plane-file round trips and corruption detection for
  :class:`repro.kernels.mapped.MappedPlaneSet`;
* hypothesis differentials proving mapped evaluation is bit-identical
  (rows *and* ``c_e``) to dense evaluation across spill / evict /
  fault-in / promote cycles;
* :class:`repro.shard.residency.ResidencyManager` budget enforcement,
  LRU victim order, prefetch warmth, promotion and accounting;
* the database-level wiring: ``memory_budget_bytes``, streaming
  queries under budget pressure, idempotent ``close()``, manifest
  round trip;
* :class:`repro.shard.process.ProcessPoolStrategy` spill-file hygiene
  (no leaked content-addressed files across runs);
* :class:`repro.storage.stats.IOStatistics` ledger reconciliation
  under buffer-pool eviction pressure.
"""

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.evaluator import AccessCounter
from repro.database import Database
from repro.errors import ChecksumError, CorruptIndexError
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.kernels import MappedPlaneSet, write_plane_file
from repro.kernels.compiler import compile_function
from repro.kernels.mapped import PLANE_DATA_OFFSET
from repro.query.options import QueryOptions
from repro.query.predicates import Equals, InList
from repro.shard.residency import ResidencyManager
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager
from repro.table.table import Table


def _index(values):
    table = Table.from_columns("t", {"v": list(values)})
    return EncodedBitmapIndex(table, "v")


# ---------------------------------------------------------------------------
# plane files
# ---------------------------------------------------------------------------
class TestPlaneFile:
    def test_round_trip_rows_bit_identical(self, tmp_path):
        index = _index([i % 7 for i in range(300)])
        planes = index.planes()
        path = str(tmp_path / "planes.ebp")
        nbytes = write_plane_file(planes, path)
        assert nbytes == os.path.getsize(path)
        mapped = MappedPlaneSet.open(path)
        assert (mapped.width, mapped.nbits, mapped.nwords) == (
            planes.width,
            planes.nbits,
            planes.nwords,
        )
        for i in range(planes.width):
            for positive in (True, False):
                assert (
                    mapped.matrix[mapped.row(i, positive)]
                    == planes.matrix[planes.row(i, positive)]
                ).all()
        mapped.verify()  # raises on payload corruption
        mapped.close()

    def test_payload_starts_page_aligned(self, tmp_path):
        index = _index(["a", "b", "c"] * 10)
        planes = index.planes()
        path = str(tmp_path / "planes.ebp")
        write_plane_file(planes, path)
        # The matrix begins exactly one page in, so plane words never
        # share an OS page with the header.
        assert PLANE_DATA_OFFSET % 4096 == 0
        assert (
            os.path.getsize(path)
            == PLANE_DATA_OFFSET + planes.matrix.nbytes
        )

    def test_header_corruption_detected(self, tmp_path):
        index = _index(["a", "b"] * 40)
        path = str(tmp_path / "planes.ebp")
        write_plane_file(index.planes(), path)
        with open(path, "r+b") as handle:
            handle.seek(9)
            byte = handle.read(1)
            handle.seek(9)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(ChecksumError):
            MappedPlaneSet.open(path)

    def test_payload_corruption_fails_verify(self, tmp_path):
        index = _index(["a", "b"] * 40)
        path = str(tmp_path / "planes.ebp")
        write_plane_file(index.planes(), path)
        mapped = MappedPlaneSet.open(path)
        mapped.verify()
        mapped.close()
        with open(path, "r+b") as handle:
            handle.seek(PLANE_DATA_OFFSET)
            word = handle.read(8)
            handle.seek(PLANE_DATA_OFFSET)
            handle.write(bytes(b ^ 0xFF for b in word))
        reopened = MappedPlaneSet.open(path)  # header still intact
        with pytest.raises(ChecksumError):
            reopened.verify()
        reopened.close()

    def test_truncated_file_rejected(self, tmp_path):
        index = _index(["a", "b"] * 40)
        path = str(tmp_path / "planes.ebp")
        write_plane_file(index.planes(), path)
        with open(path, "r+b") as handle:
            handle.truncate(PLANE_DATA_OFFSET + 8)
        with pytest.raises(CorruptIndexError):
            MappedPlaneSet.open(path)

    def test_materialize_matches_mapped(self, tmp_path):
        index = _index([i % 5 for i in range(200)])
        planes = index.planes()
        path = str(tmp_path / "planes.ebp")
        write_plane_file(planes, path)
        mapped = MappedPlaneSet.open(path)
        dense = mapped.materialize()
        assert (dense.matrix == mapped.matrix).all()
        mapped.close()
        # The materialized copy must survive the mapping's close.
        assert (dense.matrix == planes.matrix).all()


# ---------------------------------------------------------------------------
# differential: mapped == dense, through kernels and the index API
# ---------------------------------------------------------------------------
class TestMappedDifferential:
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=15),
            min_size=1,
            max_size=220,
        ),
        picks=st.lists(
            st.integers(min_value=0, max_value=15),
            min_size=1,
            max_size=6,
            unique=True,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_kernel_rows_and_ce_identical(self, values, picks):
        index = _index(values)
        domain = sorted(set(values))
        selected = sorted({domain[p % len(domain)] for p in picks})
        kernel = compile_function(index.reduced_function(selected))
        planes = index.planes()
        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "planes.ebp")
            write_plane_file(planes, path)
            mapped = MappedPlaneSet.open(path)
            dense_counter = AccessCounter()
            dense_rows = kernel.evaluate(planes, dense_counter)
            mapped_counter = AccessCounter()
            mapped_rows = kernel.evaluate(mapped, mapped_counter)
            assert dense_rows == mapped_rows
            assert (
                dense_counter.distinct_accesses
                == mapped_counter.distinct_accesses
            )
            assert dense_counter.reads == mapped_counter.reads
            mapped.close()

    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=9),
            min_size=1,
            max_size=150,
        ),
        cycles=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_lookup_stable_across_spill_promote_cycles(
        self, values, cycles
    ):
        index = _index(values)
        domain = sorted(set(values))
        probes = domain[:3]
        baseline = []
        for value in probes:
            rows = list(index.lookup(Equals("v", value)))
            baseline.append(
                (rows, index.last_cost.vectors_accessed)
            )
        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "planes.ebp")
            for cycle in range(cycles):
                assert index.spill_planes(path) is not None
                assert index.planes_mapped
                for value, (rows, ce) in zip(probes, baseline):
                    got = list(index.lookup(Equals("v", value)))
                    assert got == rows
                    assert index.last_cost.vectors_accessed == ce
                assert index.promote_planes() is not None
                assert not index.planes_mapped
                for value, (rows, ce) in zip(probes, baseline):
                    got = list(index.lookup(Equals("v", value)))
                    assert got == rows
                    assert index.last_cost.vectors_accessed == ce

    def test_spill_noop_on_mapped_and_promote_noop_on_dense(
        self, tmp_path
    ):
        index = _index(["a", "b"] * 30)
        path = str(tmp_path / "planes.ebp")
        assert index.promote_planes() is None  # already dense
        assert index.spill_planes(path) is not None
        assert index.spill_planes(path) is None  # already mapped
        assert index.promote_planes() is not None

    def test_append_served_over_mapped_snapshot(self, tmp_path):
        table = Table.from_columns("t", {"v": ["a", "b"] * 30})
        index = EncodedBitmapIndex(table, "v")
        path = str(tmp_path / "planes.ebp")
        index.spill_planes(path)
        assert index.planes_mapped
        row = table.append({"v": "a"})
        index.on_append(row, {"v": "a"})
        # The delta tier absorbs the append over the mapped snapshot:
        # the new row is visible without a dense rebuild.
        bits = index.lookup(Equals("v", "a"))
        assert [i for i, bit in enumerate(bits) if bit][-1] == row
        # A full rebuild drops the stale mapping for dense planes.
        index.rebuild()
        index.lookup(Equals("v", "a"))
        assert not index.planes_mapped


# ---------------------------------------------------------------------------
# residency manager
# ---------------------------------------------------------------------------
def _partitioned_db(budget, rows=4096, partitions=4):
    db = Database(memory_budget_bytes=budget)
    db.create_table(
        "facts",
        {"v": [i % 8 for i in range(rows)]},
        partitions=partitions,
    )
    db.create_index("facts", "v")
    return db


class TestResidencyManager:
    def test_budget_is_a_hard_ceiling(self, tmp_path):
        manager = ResidencyManager(
            str(tmp_path), memory_budget_bytes=1
        )
        index = _index([i % 4 for i in range(512)])
        manager.register(0, index)
        manager.acquire(0)
        assert index.planes_mapped
        assert manager.resident_bytes <= 1

    def test_lru_victim_order(self, tmp_path):
        indexes = [_index([i % 4 for i in range(512)]) for _ in range(3)]
        per_index = indexes[0].planes().matrix.nbytes
        manager = ResidencyManager(
            str(tmp_path), memory_budget_bytes=2 * per_index
        )
        for pid, index in enumerate(indexes):
            manager.register(pid, index)
        manager.acquire(0)
        manager.acquire(1)
        assert manager.mapped_count() == 0
        manager.acquire(2)  # evicts partition 0, the LRU
        assert indexes[0].planes_mapped
        assert not indexes[1].planes_mapped
        assert not indexes[2].planes_mapped

    def test_fault_promotes_when_headroom_allows(self, tmp_path):
        indexes = [_index([i % 4 for i in range(512)]) for _ in range(2)]
        per_index = indexes[0].planes().matrix.nbytes
        manager = ResidencyManager(
            str(tmp_path), memory_budget_bytes=per_index
        )
        for pid, index in enumerate(indexes):
            manager.register(pid, index)
        manager.acquire(0)
        manager.acquire(1)  # spills 0, charges 1
        assert indexes[0].planes_mapped
        manager.spill(1)
        manager.acquire(0)  # budget now free: fault promotes 0 back
        assert not indexes[0].planes_mapped
        assert manager.report()["promotions"] >= 1

    def test_prefetch_turns_fault_into_pool_hits(self, tmp_path):
        manager = ResidencyManager(
            str(tmp_path), memory_budget_bytes=1
        )
        index = _index([i % 4 for i in range(512)])
        manager.register(0, index)
        manager.acquire(0)  # charge + spill
        before = manager.stats.snapshot()
        manager.acquire(0)  # cold fault
        cold = manager.stats.snapshot() - before
        assert cold.physical_reads > 0
        assert cold.pool_hits == 0
        before = manager.stats.snapshot()
        manager.prefetch(0)
        manager.acquire(0)  # warmth consumed as pool hits
        warm = manager.stats.snapshot() - before
        assert warm.pool_hits > 0
        assert warm.pool_hits == warm.physical_reads  # prefetch paid them

    def test_multiple_indexes_per_partition(self, tmp_path):
        table = Table.from_columns(
            "t",
            {
                "v": [i % 4 for i in range(512)],
                "w": [i % 3 for i in range(512)],
            },
        )
        first = EncodedBitmapIndex(table, "v")
        second = EncodedBitmapIndex(table, "w")
        manager = ResidencyManager(
            str(tmp_path), memory_budget_bytes=1
        )
        manager.register(0, first)
        manager.register(0, second)
        assert manager.report()["registered"] == 2
        manager.acquire(0)
        assert first.planes_mapped and second.planes_mapped
        assert len(os.listdir(str(tmp_path))) == 2

    def test_spill_accounting_reconciles(self, tmp_path):
        manager = ResidencyManager(
            str(tmp_path), memory_budget_bytes=1
        )
        index = _index([i % 4 for i in range(512)])
        manager.register(0, index)
        manager.acquire(0)
        report = manager.report()
        payload = index.planes().nbytes()
        pages = -(-payload // manager.page_size)
        assert report["spills"] == 1
        assert manager.stats.evictions == 1
        assert manager.stats.writes == pages
        manager.acquire(0)
        assert manager.stats.physical_reads == pages

    def test_close_is_idempotent_and_removes_files(self, tmp_path):
        directory = str(tmp_path / "res")
        manager = ResidencyManager(directory, memory_budget_bytes=1)
        index = _index([i % 4 for i in range(512)])
        manager.register(0, index)
        manager.acquire(0)
        assert os.listdir(directory)
        manager.close()
        assert not os.path.exists(directory)
        manager.close()  # second close is a no-op


# ---------------------------------------------------------------------------
# database wiring + streaming executor
# ---------------------------------------------------------------------------
class TestDatabaseOutOfCore:
    # 4096 rows over 8 values in 4 partitions: 2 * k=3 * 16 words * 8
    # bytes = 768 plane bytes per child, 3072 total.  A 1536-byte
    # budget holds two partitions, so every pass must spill and fault.
    BUDGET = 1536

    def test_streaming_matches_fully_resident(self):
        resident = _partitioned_db(None)
        budgeted = _partitioned_db(self.BUDGET)
        try:
            opts = QueryOptions(workers=1)
            for predicate in (
                Equals("v", 3),
                InList("v", [0, 5, 7]),
            ):
                expected = resident.query("facts", predicate, opts)
                for _ in range(3):  # cycle spill/fault repeatedly
                    got = budgeted.query("facts", predicate, opts)
                    assert got.row_ids() == expected.row_ids()
                    assert (
                        got.cost.vectors_accessed
                        == expected.cost.vectors_accessed
                    )
            report = budgeted.residency_report("facts")
            assert report is not None
            assert report["spills"] >= 1
            assert report["budget_bytes"] == self.BUDGET
            assert (
                report["peak_resident_bytes"]
                <= self.BUDGET + report["total_plane_bytes"] // 4
            )
        finally:
            resident.close()
            budgeted.close()

    def test_prefetch_option_controls_pipeline(self):
        db = _partitioned_db(self.BUDGET)
        try:
            predicate = InList("v", [1, 2])
            db.query("facts", predicate, QueryOptions(workers=1))
            db.query(
                "facts",
                predicate,
                QueryOptions(workers=1, prefetch=False),
            )
            report = db.residency_report("facts")
            assert report is not None
            ablated = report["prefetches"]
            db.query("facts", predicate, QueryOptions(workers=1))
            report = db.residency_report("facts")
            assert report is not None
            assert report["prefetches"] > ablated
        finally:
            db.close()

    def test_no_manager_without_budget(self):
        db = _partitioned_db(None)
        try:
            assert db.residency_report("facts") is None
        finally:
            db.close()

    def test_multiworker_spill_race_bit_identical(self):
        # Regression: two worker threads enforcing the budget at once
        # used to share one spill temp file (pid-only suffix) and
        # publish a torn plane header (CorruptIndexError mid-query).
        resident = _partitioned_db(None, partitions=16)
        streaming = _partitioned_db(self.BUDGET, partitions=16)
        try:
            opts = QueryOptions(workers=4)
            preds = [InList("v", [1, 3, 5, 7]), InList("v", [0, 2, 6])]
            expected = [
                list(resident.query("facts", p).vector) for p in preds
            ]
            for _ in range(4):
                for p, want in zip(preds, expected):
                    got = streaming.query("facts", p, opts)
                    assert list(got.vector) == want
            report = streaming.residency_report("facts")
            assert report["spills"] >= 1
        finally:
            resident.close()
            streaming.close()

    def test_concurrent_acquires_never_torn(self, tmp_path):
        import threading

        indexes = [
            _index([i % 5 for i in range(256)]) for _ in range(6)
        ]
        manager = ResidencyManager(
            str(tmp_path), memory_budget_bytes=1
        )
        for pid, index in enumerate(indexes):
            manager.register(pid, index)
        errors = []

        def hammer(seed):
            try:
                for i in range(30):
                    manager.acquire((seed + i) % len(indexes))
            except Exception as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        # Every spilled file must still open as a valid plane file.
        for index in indexes:
            assert any(index.lookup(Equals("v", 1)))
        manager.close()

    def test_close_idempotent_with_residency(self):
        db = _partitioned_db(16_384)
        db.query("facts", Equals("v", 1), QueryOptions(workers=1))
        db.close()
        db.close()  # must not raise
        # The database stays usable: managers rebuild lazily.
        db.query("facts", Equals("v", 1), QueryOptions(workers=1))
        db.close()

    def test_budget_survives_save_load(self, tmp_path):
        db = _partitioned_db(32_768, rows=512, partitions=2)
        try:
            db.save(str(tmp_path))
        finally:
            db.close()
        loaded = Database.load(str(tmp_path))
        try:
            assert loaded.memory_budget_bytes == 32_768
            loaded.query("facts", Equals("v", 1), QueryOptions(workers=1))
            assert loaded.residency_report("facts") is not None
        finally:
            loaded.close()

    def test_negative_budget_rejected(self):
        from repro.errors import InvalidArgumentError

        with pytest.raises(InvalidArgumentError):
            Database(memory_budget_bytes=-1)


# ---------------------------------------------------------------------------
# process-pool spill hygiene
# ---------------------------------------------------------------------------
class TestProcessSpillCleanup:
    def test_stale_files_swept_on_first_spill(self, tmp_path):
        from repro.shard.process import ProcessPoolStrategy

        spill_dir = str(tmp_path / "spills")
        os.makedirs(spill_dir)
        stale_spill = os.path.join(spill_dir, "p0-deadbeef.ebsp")
        stale_tmp = os.path.join(
            spill_dir, "p1-cafe.ebsp.tmp.12345.678"
        )
        unrelated = os.path.join(spill_dir, "keep.txt")
        for path in (stale_spill, stale_tmp, unrelated):
            with open(path, "wb") as handle:
                handle.write(b"x")
        strategy = ProcessPoolStrategy(spill_dir=spill_dir)
        try:
            assert strategy._spill_root() == spill_dir
        finally:
            strategy.close()
        assert not os.path.exists(stale_spill)
        assert not os.path.exists(stale_tmp)
        assert os.path.exists(unrelated)

    def test_close_sweeps_even_untracked_spills(self, tmp_path):
        from repro.shard.process import ProcessPoolStrategy

        spill_dir = str(tmp_path / "spills")
        strategy = ProcessPoolStrategy(spill_dir=spill_dir)
        strategy._spill_root()
        orphan = os.path.join(spill_dir, "p7-0123abcd.ebsp")
        with open(orphan, "wb") as handle:
            handle.write(b"x")
        strategy.close()
        assert not os.path.exists(orphan)
        strategy.close()  # idempotent

    def test_tempdir_backend_leaves_nothing(self):
        from repro.shard.process import ProcessPoolStrategy

        strategy = ProcessPoolStrategy()
        root = strategy._spill_root()
        assert os.path.isdir(root)
        strategy.close()
        assert not os.path.exists(root)


# ---------------------------------------------------------------------------
# IOStatistics under buffer-pool eviction pressure
# ---------------------------------------------------------------------------
class TestEvictionPressureAccounting:
    def test_ledger_reconciles_with_pager_reads(self):
        pager = Pager(page_size=64)
        ids = [pager.allocate().page_id for _ in range(6)]
        pool = BufferPool(pager, capacity=2)
        pager.stats.reset()
        # Cycle far beyond capacity: a 6-page sweep through a 2-page
        # pool evicts everything behind the window, so revisiting
        # ids[:2] misses again; only re-touching the MRU page hits.
        pattern = (
            ids
            + ids[:2]  # misses: evicted by the sweep
            + ids[2:]  # misses again: still cycling
            + [ids[-1], ids[-1]]  # hits: MRU stays put
        )
        for page_id in pattern:
            pool.fetch(page_id)
        stats = pager.stats
        assert stats.logical_reads == len(pattern)
        assert (
            stats.pool_hits + stats.pool_misses == stats.logical_reads
        )
        # Every pool miss is exactly one pager-level physical read.
        assert stats.physical_reads == stats.pool_misses
        assert stats.pool_hits == 2
        # Evictions: every admission past the first two evicts one.
        assert stats.evictions == stats.pool_misses - pool.capacity
        assert pool.resident == pool.capacity

    def test_dirty_evictions_write_back_once(self):
        pager = Pager(page_size=64)
        ids = [pager.allocate().page_id for _ in range(4)]
        pool = BufferPool(pager, capacity=1)
        pager.stats.reset()
        for page_id in ids:
            page = pool.fetch(page_id)
            page.write(b"\x07")
        pool.flush()
        stats = pager.stats
        # Three dirty evictions + one final flush = four write-backs.
        assert stats.write_backs == len(ids)
        assert stats.writes == len(ids)
        assert stats.evictions == len(ids) - pool.capacity

    def test_reset_clears_every_counter(self):
        pager = Pager(page_size=64)
        pid = pager.allocate().page_id
        pool = BufferPool(pager, capacity=1)
        pool.fetch(pid)
        pager.stats.reset()
        as_dict = pager.stats.as_dict()
        assert all(value == 0 for value in as_dict.values())
