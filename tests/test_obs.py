"""Tests for the observability layer (``repro.obs``).

Covers the metrics registry (instruments, hierarchy, scoping, the
null variant), the migration of the ad-hoc accounting onto it
(storage stats, evaluator, retry), the per-query metric snapshot on
``QueryResult``, and the hot-path overhead contract.
"""

from __future__ import annotations

import pytest

from repro.errors import InvalidArgumentError
from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.trace import QueryTrace, StageTimer, VectorAccess


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.value("c") == 5

    def test_gauge_sets(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3.5)
        registry.gauge("g").set(1.0)
        assert registry.value("g") == 1.0

    def test_histogram_aggregates(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for sample in (1.0, 3.0, 2.0):
            hist.observe(sample)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.minimum == 1.0
        assert hist.maximum == 3.0
        assert hist.mean() == 2.0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(InvalidArgumentError):
            registry.gauge("x")

    def test_collect_flattens_histograms(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h").observe(0.5)
        collected = registry.collect()
        assert collected["c"] == 2
        assert collected["h.count"] == 1
        assert collected["h.total"] == 0.5


# ----------------------------------------------------------------------
# hierarchy + scoping
# ----------------------------------------------------------------------
class TestHierarchyAndScoping:
    def test_child_increment_propagates_to_parent(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        child.counter("reads").inc(3)
        assert parent.value("reads") == 3
        assert child.value("reads") == 3

    def test_child_reset_keeps_parent_totals(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        child.counter("reads").inc(7)
        child.reset()
        assert child.value("reads") == 0
        assert parent.value("reads") == 7

    def test_scope_captures_only_the_delta(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(10)
        scope = registry.scoped()
        registry.counter("c").inc(2)
        registry.counter("new").inc()
        delta = scope.finish()
        assert delta == {"c": 2, "new": 1}

    def test_scope_drops_zero_deltas(self):
        registry = MetricsRegistry()
        registry.counter("quiet").inc()
        with registry.scoped() as scope:
            pass
        assert scope.finish() == {}


# ----------------------------------------------------------------------
# global registry management
# ----------------------------------------------------------------------
class TestGlobalRegistry:
    def test_use_registry_restores_previous(self):
        before = get_registry()
        fresh = MetricsRegistry()
        with use_registry(fresh) as active:
            assert active is fresh
            assert get_registry() is fresh
        assert get_registry() is before

    def test_set_registry_returns_previous(self):
        before = get_registry()
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert previous is before
            assert get_registry() is fresh
        finally:
            set_registry(previous)

    def test_null_registry_is_inert(self):
        null = NullRegistry()
        null.counter("c").inc(100)
        null.gauge("g").set(5)
        null.histogram("h").observe(1.0)
        assert null.collect() == {}
        assert NULL_REGISTRY.collect() == {}


# ----------------------------------------------------------------------
# storage stats migration
# ----------------------------------------------------------------------
class TestStorageStatsOnRegistry:
    def test_pager_stats_reach_global_registry(self):
        from repro.storage.pager import Pager

        with use_registry(MetricsRegistry()) as registry:
            pager = Pager(page_size=64)
            page = pager.allocate()
            pager.write(page)
            pager.read(page.page_id)
            assert registry.value("storage.allocations") == 1
            assert registry.value("storage.writes") == 1
            assert registry.value("storage.physical_reads") == 1

    def test_local_reset_does_not_touch_global(self):
        from repro.storage.pager import Pager

        with use_registry(MetricsRegistry()) as registry:
            pager = Pager(page_size=64)
            pager.allocate()
            pager.stats.reset()
            assert pager.stats.allocations == 0
            assert registry.value("storage.allocations") == 1

    def test_two_pagers_are_isolated_locally(self):
        from repro.storage.pager import Pager

        with use_registry(MetricsRegistry()) as registry:
            a, b = Pager(page_size=64), Pager(page_size=64)
            a.allocate()
            a.allocate()
            b.allocate()
            assert a.stats.allocations == 2
            assert b.stats.allocations == 1
            assert registry.value("storage.allocations") == 3

    def test_pool_hits_and_misses_counted(self):
        from repro.storage.buffer_pool import BufferPool
        from repro.storage.pager import Pager

        with use_registry(MetricsRegistry()) as registry:
            pager = Pager(page_size=64)
            page = pager.allocate()
            pool = BufferPool(pager, capacity=2)
            pool.fetch(page.page_id)   # miss
            pool.fetch(page.page_id)   # hit
            assert registry.value("storage.pool_misses") == 1
            assert registry.value("storage.pool_hits") == 1
            assert pager.stats.hit_ratio() == 0.5


# ----------------------------------------------------------------------
# retry metrics
# ----------------------------------------------------------------------
class TestRetryMetrics:
    def test_transient_fault_counts(self):
        from repro.errors import TransientIOError
        from repro.faults.retry import RetryPolicy

        registry = MetricsRegistry()
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.0, registry=registry
        )
        attempts = {"n": 0}

        def flaky() -> str:
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise TransientIOError("blip")
            return "done"

        assert policy.call(flaky) == "done"
        assert registry.value("faults.retry_calls") == 1
        assert registry.value("faults.transient_faults") == 2
        assert registry.value("faults.retries") == 2
        assert registry.value("faults.retry_exhausted") == 0


# ----------------------------------------------------------------------
# query-layer integration
# ----------------------------------------------------------------------
def _abc_catalog():
    from repro.index.encoded_bitmap import EncodedBitmapIndex
    from repro.table.catalog import Catalog
    from repro.table.table import Table

    table = Table("T", ["A"])
    for value in ["a", "b", "c", "b", "a", "c"]:
        table.append({"A": value})
    catalog = Catalog()
    catalog.register_table(table)
    catalog.register_index(EncodedBitmapIndex(table, "A"))
    return catalog, table


class TestQueryMetrics:
    def test_query_result_carries_metric_delta(self):
        from repro.query.executor import Executor
        from repro.query.predicates import InList

        catalog, table = _abc_catalog()
        with use_registry(MetricsRegistry()) as registry:
            result = Executor(catalog).select(
                table, InList("A", ["a", "b"])
            )
            # query.queries is counted outside the per-query scope
            assert registry.value("query.queries") == 1
        assert result.metrics["index.lookups"] == 1
        assert result.metrics["evaluator.distinct_vectors"] == 2
        assert (
            result.metrics["index.vectors_accessed"]
            == result.cost.vectors_accessed
        )

    def test_metrics_reset_between_queries(self):
        """The per-query delta does not accumulate across queries —
        the counter-scoping bug this PR fixes."""
        from repro.query.executor import Executor
        from repro.query.predicates import InList

        catalog, table = _abc_catalog()
        with use_registry(MetricsRegistry()) as registry:
            executor = Executor(catalog)
            first = executor.select(table, InList("A", ["a", "b"]))
            second = executor.select(table, InList("A", ["a", "b"]))
            # per-query deltas match even though totals accumulate
            assert first.metrics["index.lookups"] == 1
            assert second.metrics["index.lookups"] == 1
            assert (
                first.metrics["index.vectors_accessed"]
                == second.metrics["index.vectors_accessed"]
            )
            assert registry.value("query.queries") == 2

    def test_buffer_pool_stats_reach_query_result(self):
        """Paged index I/O shows up in QueryResult.metrics."""
        from repro.index.paged import PagedEncodedBitmapIndex
        from repro.query.executor import Executor
        from repro.query.predicates import InList
        from repro.table.catalog import Catalog
        from repro.workload.generators import build_table, uniform_column

        n = 2000
        table = build_table(
            "t", n, {"v": uniform_column(n, 16, seed=5)}
        )
        with use_registry(MetricsRegistry()):
            index = PagedEncodedBitmapIndex(
                table, "v", page_size=256, pool_capacity=8
            )
            catalog = Catalog()
            catalog.register_table(table)
            catalog.register_index(index)
            result = Executor(catalog).select(
                table, InList("v", [0, 1])
            )
        logical = result.metrics.get("storage.logical_reads", 0)
        assert logical > 0

    def test_scan_fallback_metrics(self):
        from repro.query.executor import Executor
        from repro.query.predicates import InList
        from repro.table.catalog import Catalog
        from repro.table.table import Table

        table = Table("noidx", ["A"])
        for value in [1, 2, 3]:
            table.append({"A": value})
        catalog = Catalog()
        catalog.register_table(table)
        with use_registry(MetricsRegistry()):
            result = Executor(catalog).select(table, InList("A", [2]))
        assert result.used_scan
        assert result.metrics["query.scans"] == 1
        assert result.metrics["query.scan_rows_checked"] == 3


# ----------------------------------------------------------------------
# overhead contract
# ----------------------------------------------------------------------
class TestOverheadContract:
    def test_evaluator_publishes_once_per_evaluation(self):
        """The hot loop is never instrumented: an evaluation touching
        many vectors performs exactly one publish (two counter
        updates), independent of vector count."""
        from repro.query.predicates import InList

        catalog, table = _abc_catalog()
        (index,) = catalog.indexes_on("T", "A")

        class CountingRegistry(MetricsRegistry):
            def __init__(self) -> None:
                super().__init__()
                self.instrument_calls = 0

            def counter(self, name):
                self.instrument_calls += 1
                return super().counter(name)

        registry = CountingRegistry()
        with use_registry(registry):
            index.lookup(InList("A", ["a"]))
            one_value = registry.instrument_calls
            registry.instrument_calls = 0
            index.lookup(InList("A", ["a", "b", "c"]))
            three_values = registry.instrument_calls
        # evaluator publish (2) + index accounting: a small constant,
        # identical no matter how many vectors the lookup touched.
        assert one_value == three_values
        assert three_values <= 8

    def test_null_registry_keeps_lookup_semantics(self):
        from repro.query.predicates import InList

        catalog, table = _abc_catalog()
        (index,) = catalog.indexes_on("T", "A")
        with use_registry(MetricsRegistry()):
            expected = index.lookup(InList("A", ["a", "b"])).indices()
        with use_registry(NullRegistry()):
            actual = index.lookup(InList("A", ["a", "b"])).indices()
        assert list(expected) == list(actual)


# ----------------------------------------------------------------------
# trace primitives
# ----------------------------------------------------------------------
class TestTracePrimitives:
    def test_stage_timer_appends_timing(self):
        trace = QueryTrace(plan_text="plan")
        with StageTimer(trace, "work"):
            pass
        assert [stage.name for stage in trace.stages] == ["work"]
        assert trace.stages[0].wall_seconds >= 0.0

    def test_stage_timer_tolerates_none(self):
        with StageTimer(None, "work"):
            pass  # must not raise

    def test_vector_reads_sums_accesses(self):
        trace = QueryTrace(plan_text="p")
        trace.accesses.append(
            VectorAccess(
                index_kind="encoded-bitmap",
                column="A",
                predicate="A IN {'a'}",
                vectors=(0, 1),
                width=2,
                reduced="B1'B0'",
                cache_hit=False,
                vectors_accessed=2,
                node_accesses=0,
                rows_checked=0,
                estimated_cost=2.0,
                roles={0: ("B1'B0'",), 1: ("B1'B0'",)},
            )
        )
        assert trace.vector_reads() == 2
        rendered = trace.render()
        assert "B1'B0'" in rendered
        assert "encoded-bitmap" in rendered
