"""Unit tests for repro.storage.vector_store and the paged indexes."""

import random

import pytest

from repro.bitmap.bitvector import BitVector
from repro.errors import StorageError
from repro.index.paged import (
    PagedEncodedBitmapIndex,
    PagedSimpleBitmapIndex,
)
from repro.query.predicates import Equals, InList
from repro.storage.vector_store import PagedVectorStore
from repro.table.table import Table
from tests.conftest import matching_rows


class TestPagedVectorStore:
    def test_store_load_roundtrip(self):
        store = PagedVectorStore(page_size=64)
        vector = BitVector.from_indices([1, 100, 500], 1000)
        store.store("x", vector)
        assert store.load("x") == vector

    def test_multi_page_vectors(self):
        store = PagedVectorStore(page_size=16)  # tiny pages
        vector = BitVector.ones(1000)
        handle = store.store("big", vector)
        assert len(handle.page_ids) == store.pages_per_vector(1000)
        assert len(handle.page_ids) > 1
        assert store.load("big") == vector

    def test_unknown_name(self):
        store = PagedVectorStore()
        with pytest.raises(StorageError):
            store.load("missing")

    def test_replace_existing(self):
        store = PagedVectorStore(page_size=64)
        store.store("x", BitVector.ones(100))
        pages_before = store.total_pages()
        store.store("x", BitVector(100))
        assert store.total_pages() == pages_before
        assert store.load("x").count() == 0

    def test_update_in_place(self):
        store = PagedVectorStore(page_size=64)
        store.store("x", BitVector(100))
        vector = BitVector.from_indices([5], 100)
        store.update("x", vector)
        assert store.load("x") == vector

    def test_delete(self):
        store = PagedVectorStore(page_size=64)
        store.store("x", BitVector(100))
        store.delete("x")
        assert "x" not in store
        assert store.total_pages() == 0

    def test_buffer_pool_absorbs_repeats(self):
        store = PagedVectorStore(page_size=64, pool_capacity=8)
        store.store("x", BitVector.ones(100))
        store.stats.reset()
        store.load("x")
        store.load("x")
        assert store.stats.logical_reads > 0
        assert store.stats.physical_reads == 0  # resident since store

    def test_eviction_causes_physical_reads(self):
        store = PagedVectorStore(page_size=64, pool_capacity=1)
        store.store("a", BitVector.ones(100))
        store.store("b", BitVector(100))
        store.stats.reset()
        store.load("a")  # must come from 'disk'
        assert store.stats.physical_reads > 0

    def test_pages_per_vector(self):
        store = PagedVectorStore(page_size=4096)
        assert store.pages_per_vector(8 * 4096) == 1
        assert store.pages_per_vector(8 * 4096 + 1) == 2
        assert store.pages_per_vector(1) == 1


@pytest.fixture
def value_table():
    table = Table("t", ["v"])
    rng = random.Random(31)
    for _ in range(300):
        table.append({"v": rng.randrange(40)})
    return table


class TestPagedIndexes:
    def test_paged_encoded_matches_plain(self, value_table):
        paged = PagedEncodedBitmapIndex(
            value_table, "v", page_size=64, pool_capacity=4
        )
        for pred in (Equals("v", 7), InList("v", [0, 1, 2, 3])):
            got = sorted(paged.lookup(pred).indices().tolist())
            assert got == matching_rows(value_table, pred)

    def test_paged_encoded_counts_page_io(self, value_table):
        paged = PagedEncodedBitmapIndex(
            value_table, "v", page_size=64, pool_capacity=2
        )
        paged.store.stats.reset()
        paged.lookup(InList("v", [0, 1, 2, 3]))
        assert paged.store.stats.logical_reads > 0

    def test_paged_encoded_maintenance(self, value_table):
        paged = PagedEncodedBitmapIndex(
            value_table, "v", page_size=64
        )
        value_table.attach(paged)
        row_id = value_table.append({"v": 5})
        assert row_id in paged.lookup(Equals("v", 5)).indices().tolist()
        value_table.delete(row_id)
        assert row_id not in (
            paged.lookup(Equals("v", 5)).indices().tolist()
        )
        value_table.detach(paged)

    def test_paged_simple_matches_plain(self, value_table):
        paged = PagedSimpleBitmapIndex(
            value_table, "v", page_size=64, pool_capacity=4
        )
        for pred in (Equals("v", 7), InList("v", [0, 1, 2, 3])):
            got = sorted(paged.lookup(pred).indices().tolist())
            assert got == matching_rows(value_table, pred)

    def test_simple_reads_more_pages_on_ranges(self, value_table):
        """The page-level version of the paper's claim: a delta-wide
        range search touches delta vectors' pages on the simple index
        but at most k vectors' pages on the encoded one."""
        simple = PagedSimpleBitmapIndex(
            value_table, "v", page_size=64, pool_capacity=2
        )
        encoded = PagedEncodedBitmapIndex(
            value_table, "v", page_size=64, pool_capacity=2
        )
        predicate = InList("v", list(range(0, 24)))

        simple.store.stats.reset()
        simple.lookup(predicate)
        simple_reads = simple.store.stats.logical_reads

        encoded.store.stats.reset()
        encoded.lookup(predicate)
        encoded_reads = encoded.store.stats.logical_reads

        assert encoded_reads < simple_reads
