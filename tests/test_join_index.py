"""Unit tests for repro.index.join_index (bitmapped join index)."""

import random

import pytest

from repro.encoding.hierarchy import Hierarchy, hierarchy_encoding
from repro.errors import SchemaError
from repro.index.join_index import BitmapJoinIndex
from repro.query.predicates import Equals, InList
from repro.table.table import Table


@pytest.fixture
def star():
    dimension = Table("products", ["pid", "category", "price_band"])
    categories = ["food", "tools", "toys"]
    for pid in range(20):
        dimension.append(
            {
                "pid": pid,
                "category": categories[pid % 3],
                "price_band": "high" if pid >= 10 else "low",
            }
        )
    fact = Table("sales", ["pid", "amount"])
    rng = random.Random(23)
    for _ in range(400):
        fact.append(
            {"pid": rng.randrange(20), "amount": rng.randint(1, 100)}
        )
    return fact, dimension


def _expected_fact_rows(fact, dimension, dim_pred):
    keys = {
        row["pid"] for row in dimension.scan() if dim_pred.matches(row)
    }
    return sorted(
        row_id
        for row_id in range(len(fact))
        if not fact.is_void(row_id) and fact.row(row_id)["pid"] in keys
    )


class TestJoinKeys:
    def test_keys_match_dimension_scan(self, star):
        fact, dimension = star
        join = BitmapJoinIndex(fact, "pid", dimension, "pid")
        keys = join.join_keys(Equals("category", "food"))
        assert sorted(keys) == [p for p in range(20) if p % 3 == 0]

    def test_dimension_scan_cost_recorded(self, star):
        fact, dimension = star
        join = BitmapJoinIndex(fact, "pid", dimension, "pid")
        join.join_keys(Equals("category", "food"))
        assert join.last_cost.rows_checked == len(dimension)

    def test_bad_dimension_key(self, star):
        fact, dimension = star
        with pytest.raises(SchemaError):
            BitmapJoinIndex(fact, "pid", dimension, "nope")


class TestLookup:
    def test_star_selection_matches_scan(self, star):
        fact, dimension = star
        join = BitmapJoinIndex(fact, "pid", dimension, "pid")
        for dim_pred in (
            Equals("category", "tools"),
            Equals("price_band", "high"),
            Equals("category", "toys") & Equals("price_band", "low"),
        ):
            got = sorted(join.lookup(dim_pred).indices().tolist())
            assert got == _expected_fact_rows(fact, dimension, dim_pred)

    def test_empty_dimension_selection(self, star):
        fact, dimension = star
        join = BitmapJoinIndex(fact, "pid", dimension, "pid")
        result = join.lookup(Equals("category", "nonexistent"))
        assert result.count() == 0

    def test_fact_side_cost_is_encoded(self, star):
        """The fact side pays encoded-bitmap cost: at most
        ceil(log2 m) vectors however many keys qualify."""
        fact, dimension = star
        join = BitmapJoinIndex(fact, "pid", dimension, "pid")
        join.lookup(Equals("price_band", "low"))  # 10 of 20 keys
        assert (
            join.last_cost.vectors_accessed <= join.fact_index.width
        )

    def test_custom_mapping(self, star):
        fact, dimension = star
        hierarchy = Hierarchy(
            range(20),
            {"band": {"low": list(range(10)),
                      "high": list(range(10, 20))}},
        )
        mapping = hierarchy_encoding(
            hierarchy, reserve_void_zero=True, seed=0
        )
        join = BitmapJoinIndex(
            fact, "pid", dimension, "pid", encoding=mapping
        )
        pred = Equals("price_band", "high")
        got = sorted(join.lookup(pred).indices().tolist())
        assert got == _expected_fact_rows(fact, dimension, pred)


class TestJoinRows:
    def test_materialised_join(self, star):
        fact, dimension = star
        join = BitmapJoinIndex(fact, "pid", dimension, "pid")
        rows = join.join_rows(Equals("category", "food"))
        assert rows
        for row in rows:
            assert row["products.category"] == "food"
            assert row["pid"] % 3 == 0
            assert "amount" in row

    def test_join_row_count_matches_lookup(self, star):
        fact, dimension = star
        join = BitmapJoinIndex(fact, "pid", dimension, "pid")
        pred = Equals("price_band", "high")
        assert len(join.join_rows(pred)) == join.lookup(pred).count()
