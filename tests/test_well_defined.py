"""Unit tests for repro.encoding.well_defined (Definition 2.5,
Theorems 2.2/2.3)."""

import pytest

from repro.boolean.reduction import reduce_values
from repro.encoding.mapping import MappingTable
from repro.encoding.well_defined import (
    is_well_defined,
    subcube_mask,
    verify_well_defined_cost,
)

# The paper's Figure 3 mappings over domain {a..h} (3 bits).
FIG3A = [("a", 0b000), ("c", 0b001), ("g", 0b010), ("e", 0b011),
         ("b", 0b100), ("d", 0b101), ("h", 0b110), ("f", 0b111)]
FIG3A_PRIME = [("a", 0b000), ("b", 0b001), ("c", 0b010), ("d", 0b011),
               ("g", 0b100), ("h", 0b101), ("e", 0b110), ("f", 0b111)]
FIG3B = [("a", 0b000), ("c", 0b001), ("g", 0b010), ("b", 0b011),
         ("e", 0b100), ("d", 0b101), ("h", 0b110), ("f", 0b111)]


def _mapping(pairs):
    return MappingTable.from_pairs(pairs, width=3)


class TestSubcubeMask:
    def test_full_subcube(self):
        result = subcube_mask([0b000, 0b001, 0b100, 0b101])
        assert result is not None
        bits, care = result
        assert bits == 0
        # free dims are bits 0 and 2 -> care has bit 1 only
        assert care & 0b010

    def test_not_a_subcube(self):
        assert subcube_mask([0b000, 0b011]) is None

    def test_wrong_size(self):
        assert subcube_mask([0, 1, 2]) is None

    def test_single_code(self):
        result = subcube_mask([0b101])
        assert result is not None

    def test_empty(self):
        assert subcube_mask([]) is None


class TestIsWellDefined:
    def test_figure3a_both_selections(self):
        """Figure 3(a) is well-defined for both paper selections."""
        mapping = _mapping(FIG3A)
        assert is_well_defined(mapping, ["a", "b", "c", "d"])
        assert is_well_defined(mapping, ["c", "d", "e", "f"])

    def test_figure3a_prime_both_selections(self):
        """Figure 3(a') is also optimal (paper, Section 2.2)."""
        mapping = _mapping(FIG3A_PRIME)
        assert is_well_defined(mapping, ["a", "b", "c", "d"])
        assert is_well_defined(mapping, ["c", "d", "e", "f"])

    def test_figure3b_improper(self):
        """Figure 3(b) is NOT well-defined for either selection."""
        mapping = _mapping(FIG3B)
        assert not is_well_defined(mapping, ["a", "b", "c", "d"])
        assert not is_well_defined(mapping, ["c", "d", "e", "f"])

    def test_requires_two_values(self):
        mapping = _mapping(FIG3A)
        with pytest.raises(ValueError):
            is_well_defined(mapping, ["a"])

    def test_case_ii_even_non_power(self):
        """|s| = 6 (even, between 4 and 8): prime chain on 4 + chain
        on 6 + pairwise <= 3."""
        # codes 0..5: {000..101}; subcube {000,001,010,011} has prime
        # chain; chain on all six: 000-001-011-010-110? 110 not in set.
        # Use a known-good set: the Gray layout 000,001,011,010,110,100
        pairs = [("v0", 0b000), ("v1", 0b001), ("v2", 0b011),
                 ("v3", 0b010), ("v4", 0b110), ("v5", 0b100),
                 ("v6", 0b101), ("v7", 0b111)]
        mapping = MappingTable.from_pairs(pairs, width=3)
        assert is_well_defined(
            mapping, ["v0", "v1", "v2", "v3", "v4", "v5"]
        )

    def test_case_iii_odd(self):
        """|s| = 3 (odd): prime chain on a 2-subset plus a borrowed w."""
        pairs = [("x", 0b00), ("y", 0b01), ("z", 0b11), ("w", 0b10)]
        mapping = MappingTable.from_pairs(pairs, width=2)
        # {x,y,z} = {00,01,11}: subset {00,01} prime chain; adding w=10
        # closes the chain 00-01-11-10.
        assert is_well_defined(mapping, ["x", "y", "z"])

    def test_case_iii_fails_without_completion(self):
        """Odd subdomain with no completing code is not well-defined."""
        pairs = [("x", 0b000), ("y", 0b011), ("z", 0b101),
                 ("w", 0b110)]
        mapping = MappingTable.from_pairs(pairs, width=3)
        # {x,y,z}: no 2^1 subset at distance 1 (all pairwise dist 2)
        assert not is_well_defined(mapping, ["x", "y", "z"])


class TestTheorem22:
    """Well-defined encodings minimise vectors accessed."""

    def test_figure3a_costs_one_vector(self):
        mapping = _mapping(FIG3A)
        assert verify_well_defined_cost(mapping, ["a", "b", "c", "d"]) == 1
        assert verify_well_defined_cost(mapping, ["c", "d", "e", "f"]) == 1

    def test_figure3b_costs_three_vectors(self):
        """The paper: 'three bitmap vectors must be read instead of
        one' under the improper mapping."""
        mapping = _mapping(FIG3B)
        assert verify_well_defined_cost(mapping, ["a", "b", "c", "d"]) == 3
        assert verify_well_defined_cost(mapping, ["c", "d", "e", "f"]) == 3

    def test_figure3b_expressions_match_paper(self):
        """Exact expressions from the paper's Section 2.2."""
        mapping = _mapping(FIG3B)
        codes = [mapping.encode(v) for v in "abcd"]
        reduced = reduce_values(codes, 3)
        # B2'B1' + B2'B0 + B1'B0 (any order)
        assert reduced.vector_count() == 3
        assert len(reduced.terms) == 3
        for term in reduced.terms:
            assert term.literal_count() == 2

    def test_well_defined_never_worse(self):
        """Theorem 2.2/2.3 sanity: the Fig 3(a) cost <= Fig 3(b) cost
        for the paper's predicate set."""
        good = _mapping(FIG3A)
        bad = _mapping(FIG3B)
        for subdomain in (["a", "b", "c", "d"], ["c", "d", "e", "f"]):
            assert verify_well_defined_cost(
                good, subdomain
            ) <= verify_well_defined_cost(bad, subdomain)
