"""Unit tests for repro.boolean.intervals (binary interval covers)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boolean.intervals import interval_cubes, reduce_interval
from repro.boolean.reduction import reduce_values


class TestIntervalCubes:
    def test_empty_interval(self):
        assert interval_cubes(5, 4, 4) == []

    def test_single_point(self):
        cubes = interval_cubes(5, 5, 3)
        assert len(cubes) == 1
        assert cubes[0].covers(5)
        assert cubes[0].literal_count() == 3

    def test_full_cube(self):
        cubes = interval_cubes(0, 7, 3)
        assert len(cubes) == 1
        assert cubes[0].is_constant_true()

    def test_aligned_half(self):
        cubes = interval_cubes(0, 31, 6)
        assert len(cubes) == 1
        assert cubes[0].to_string() == "B5'"

    def test_cube_count_bounded(self):
        for width in (4, 6, 8):
            for lo in range(0, 1 << width, 7):
                for hi in range(lo, 1 << width, 5):
                    cubes = interval_cubes(lo, hi, width)
                    assert len(cubes) <= 2 * width

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            interval_cubes(0, 8, 3)
        with pytest.raises(ValueError):
            interval_cubes(-1, 3, 3)


class TestReduceInterval:
    def test_exact_semantics(self):
        for width in (3, 5):
            for lo in range(1 << width):
                for hi in range(lo, 1 << width):
                    reduced = reduce_interval(lo, hi, width)
                    for value in range(1 << width):
                        assert reduced.evaluate_value(value) == (
                            lo <= value <= hi
                        ), (lo, hi, value)

    def test_matches_qm_vector_count_on_prefixes(self):
        """For [0, delta) intervals the binary decomposition uses the
        same variables as the QM reduction."""
        width = 6
        for delta in (1, 2, 4, 8, 16, 32, 48, 63):
            fast = reduce_interval(0, delta - 1, width)
            exact = reduce_values(range(delta), width)
            assert fast.vector_count() == exact.vector_count()

    @given(
        st.integers(0, 255),
        st.integers(0, 255),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_semantics_width8(self, a, b):
        lo, hi = min(a, b), max(a, b)
        reduced = reduce_interval(lo, hi, 8)
        # spot-check boundaries and a few interior/exterior points
        probes = {lo, hi, max(0, lo - 1), min(255, hi + 1),
                  (lo + hi) // 2, 0, 255}
        for value in probes:
            assert reduced.evaluate_value(value) == (lo <= value <= hi)

    def test_cheap_for_wide_widths(self):
        """The whole point: works instantly at widths where QM cannot."""
        reduced = reduce_interval(12345, 8_000_000, 24)
        assert reduced.vector_count() <= 24
        assert reduced.evaluate_value(12345)
        assert reduced.evaluate_value(8_000_000)
        assert not reduced.evaluate_value(12344)
        assert not reduced.evaluate_value(8_000_001)
