"""Unit tests for repro.boolean.reduction."""

import pytest

from repro.boolean.reduction import (
    ReducedFunction,
    distinct_variables,
    minterm_dnf,
    reduce_values,
)


class TestReduceValues:
    def test_empty_is_false(self):
        reduced = reduce_values([], 3)
        assert reduced.is_false
        assert reduced.vector_count() == 0
        assert reduced.to_string() == "0"

    def test_full_cube_is_true(self):
        reduced = reduce_values(range(8), 3)
        assert reduced.is_true
        assert reduced.vector_count() == 0

    def test_single_value_is_minterm(self):
        reduced = reduce_values([0b101], 3)
        assert reduced.vector_count() == 3
        assert reduced.to_string() == "B2B1'B0"

    def test_paper_figure1_reduction(self):
        # a=00, b=01: f_a + f_b = B1'B0' + B1'B0 = B1'
        reduced = reduce_values([0b00, 0b01], 2)
        assert reduced.to_string() == "B1'"
        assert reduced.vector_count() == 1

    def test_semantics_match_truth_table(self):
        codes = [1, 3, 4, 6]
        reduced = reduce_values(codes, 3)
        for value in range(8):
            assert reduced.evaluate_value(value) == (value in codes)

    def test_dont_cares_may_enlarge_coverage(self):
        reduced = reduce_values([0, 1, 2], 2, dont_cares=[3])
        assert reduced.is_true  # don't-care 3 completes the cube
        # but dc must not be required: ON set still covered
        for value in (0, 1, 2):
            assert reduced.evaluate_value(value)

    def test_dont_cares_never_reduce_on_coverage(self):
        codes = [2, 5]
        reduced = reduce_values(codes, 3, dont_cares=[0, 7])
        for value in codes:
            assert reduced.evaluate_value(value)

    def test_off_values_excluded(self):
        codes = [1, 2]
        reduced = reduce_values(codes, 3, dont_cares=[4])
        for value in (0, 3, 5, 6, 7):
            assert not reduced.evaluate_value(value)

    def test_aligned_interval_uses_few_vectors(self):
        # [0, 32) in a 6-cube: one variable (B5')
        reduced = reduce_values(range(32), 6)
        assert reduced.vector_count() == 1
        assert reduced.to_string() == "B5'"

    def test_greedy_mode(self):
        reduced = reduce_values(range(6), 3, exact=False)
        for value in range(8):
            assert reduced.evaluate_value(value) == (value < 6)


class TestReducedFunction:
    def test_variables_sorted(self):
        reduced = reduce_values([0b001, 0b100], 3)
        assert reduced.variables() == (0, 1, 2)

    def test_string_rendering(self):
        reduced = reduce_values([0b01, 0b10], 2)
        rendered = reduced.to_string()
        assert "+" in rendered
        assert "B1" in rendered and "B0" in rendered


class TestMintermDnf:
    def test_unreduced_touches_all_variables(self):
        function = minterm_dnf([0, 3], 3)
        assert function.vector_count() == 3
        assert len(function.terms) == 2

    def test_semantics(self):
        function = minterm_dnf([2, 5], 3)
        for value in range(8):
            assert function.evaluate_value(value) == (value in (2, 5))


class TestDistinctVariables:
    def test_counts_union(self):
        reduced = reduce_values([0b001, 0b010], 3)
        assert distinct_variables(reduced.terms) == reduced.vector_count()

    def test_empty(self):
        assert distinct_variables([]) == 0
