"""Unit tests for repro.workload.olap (roll-up/drill-down sessions)."""

import pytest

from repro.encoding.hierarchy import Hierarchy
from repro.query.predicates import InList
from repro.workload.olap import (
    OlapStep,
    generate_session,
    level_visit_counts,
    session_predicates,
)


@pytest.fixture
def hierarchy():
    return Hierarchy(
        range(1, 13),
        {
            "company": {
                "a": [1, 2, 3, 4], "b": [5, 6], "c": [7, 8],
                "d": [3, 4, 9, 10], "e": [9, 10, 11, 12],
            },
            "alliance": {"X": ["a", "b", "c"], "Y": ["c", "d"],
                         "Z": ["d", "e"]},
        },
    )


class TestGenerateSession:
    def test_length(self, hierarchy):
        session = generate_session(hierarchy, "branch", length=12)
        assert len(session) == 12

    def test_starts_at_top_level(self, hierarchy):
        session = generate_session(hierarchy, "branch", seed=4)
        assert session[0].level == "alliance"
        assert session[0].operation == "select"

    def test_deterministic(self, hierarchy):
        a = generate_session(hierarchy, "branch", length=8, seed=5)
        b = generate_session(hierarchy, "branch", length=8, seed=5)
        assert a == b

    def test_predicates_are_base_in_lists(self, hierarchy):
        session = generate_session(hierarchy, "branch", length=15,
                                   seed=2)
        for step in session:
            assert isinstance(step.predicate, InList)
            members = hierarchy.base_members(step.level, step.element)
            assert set(step.predicate.values) == members

    def test_moves_stay_in_hierarchy(self, hierarchy):
        session = generate_session(hierarchy, "branch", length=30,
                                   seed=7)
        for step in session:
            assert step.level in hierarchy.level_names
            assert step.element in hierarchy.elements(step.level)

    def test_drilldown_goes_down_rollup_up(self, hierarchy):
        session = generate_session(hierarchy, "branch", length=40,
                                   seed=9)
        levels = hierarchy.level_names
        for previous, current in zip(session, session[1:]):
            if current.operation == "drilldown":
                assert levels.index(current.level) == levels.index(
                    previous.level
                ) - 1
            elif current.operation == "rollup":
                assert levels.index(current.level) == levels.index(
                    previous.level
                ) + 1
            elif current.operation == "sibling":
                assert current.level == previous.level

    def test_invalid_length(self, hierarchy):
        with pytest.raises(ValueError):
            generate_session(hierarchy, "branch", length=0)


class TestHelpers:
    def test_session_predicates(self, hierarchy):
        session = generate_session(hierarchy, "branch", length=6,
                                   seed=1)
        predicates = session_predicates(session)
        assert len(predicates) == 6
        assert all(isinstance(p, InList) for p in predicates)

    def test_level_visit_counts(self, hierarchy):
        session = generate_session(hierarchy, "branch", length=20,
                                   seed=3)
        counts = level_visit_counts(session)
        assert sum(counts.values()) == 20
        assert set(counts) <= {"company", "alliance"}


class TestSessionAgainstIndexes:
    def test_hierarchy_encoding_wins_session(self, hierarchy):
        """A hierarchy-encoded index serves a whole OLAP session with
        fewer vector reads than a random encoding."""
        import random as _random

        from repro.encoding.heuristics import random_encoding
        from repro.encoding.hierarchy import hierarchy_encoding
        from repro.index.encoded_bitmap import EncodedBitmapIndex
        from repro.table.table import Table

        table = Table("sales", ["branch"])
        rng = _random.Random(0)
        for _ in range(400):
            table.append({"branch": rng.randint(1, 12)})

        tuned = EncodedBitmapIndex(
            table, "branch",
            encoding=hierarchy_encoding(hierarchy, seed=0),
            void_mode="vector",
        )
        untuned = EncodedBitmapIndex(
            table, "branch",
            encoding=random_encoding(
                range(1, 13), seed=99, reserve_void_zero=False
            ),
            void_mode="vector",
        )
        session = generate_session(hierarchy, "branch", length=20,
                                   seed=11)
        tuned_cost = untuned_cost = 0
        for predicate in session_predicates(session):
            result_a = tuned.lookup(predicate)
            tuned_cost += tuned.last_cost.vectors_accessed
            result_b = untuned.lookup(predicate)
            untuned_cost += untuned.last_cost.vectors_accessed
            assert result_a == result_b
        assert tuned_cost <= untuned_cost
