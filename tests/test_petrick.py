"""Unit tests for repro.boolean.petrick."""

import pytest

from repro.boolean.minterm import Implicant
from repro.boolean.petrick import _absorb, _greedy, minimal_cover
from repro.boolean.quine_mccluskey import prime_implicants


def _is_cover(cover, on_set):
    return all(any(p.covers(v) for p in cover) for v in on_set)


class TestMinimalCover:
    def test_empty_on_set(self):
        assert minimal_cover([], []) == []

    def test_no_primes_for_nonempty_raises(self):
        with pytest.raises(ValueError):
            minimal_cover([], [1])

    def test_essential_primes_selected(self):
        on = [0, 1, 2, 5, 6, 7]
        primes = prime_implicants(on, 3)
        cover = minimal_cover(primes, on)
        assert _is_cover(cover, on)

    def test_cover_is_minimal_for_interval(self):
        # [0, 6) over 3 vars: minimal DNF has 2 terms
        on = list(range(6))
        primes = prime_implicants(on, 3)
        cover = minimal_cover(primes, on)
        assert _is_cover(cover, on)
        assert len(cover) == 2

    def test_cyclic_core(self):
        # Classic cyclic cover: ON = {0,1,2,5,6,7} needs 3 of 6 primes.
        on = [0, 1, 2, 5, 6, 7]
        primes = prime_implicants(on, 3)
        cover = minimal_cover(primes, on)
        assert _is_cover(cover, on)
        assert len(cover) == 3

    def test_exact_vs_greedy_both_cover(self):
        on = [0, 2, 3, 4, 5, 7, 8, 9, 13, 15]
        primes = prime_implicants(on, 4)
        exact = minimal_cover(primes, on, exact=True)
        greedy = minimal_cover(primes, on, exact=False)
        assert _is_cover(exact, on)
        assert _is_cover(greedy, on)
        assert len(exact) <= len(greedy)

    def test_duplicate_minterms_handled(self):
        on = [1, 1, 3, 3]
        primes = prime_implicants(on, 2)
        cover = minimal_cover(primes, on)
        assert _is_cover(cover, {1, 3})

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_random_functions_covered(self, width):
        import random

        rng = random.Random(99)
        for _ in range(20):
            size = rng.randint(1, 1 << width)
            on = rng.sample(range(1 << width), size)
            primes = prime_implicants(on, width)
            cover = minimal_cover(primes, on)
            assert _is_cover(cover, on)
            # cover must not hit OFF minterms
            off = set(range(1 << width)) - set(on)
            for value in off:
                assert not any(p.covers(value) for p in cover)


class TestHelpers:
    def test_absorb_drops_supersets(self):
        products = {
            frozenset({1}),
            frozenset({1, 2}),
            frozenset({2, 3}),
        }
        kept = _absorb(products)
        assert frozenset({1}) in kept
        assert frozenset({1, 2}) not in kept
        assert frozenset({2, 3}) in kept

    def test_greedy_covers(self):
        on = [0, 1, 2, 3]
        primes = prime_implicants(on, 2)
        chosen = _greedy(primes, set(on))
        cover = [primes[i] for i in chosen]
        assert _is_cover(cover, on)
