"""Unit tests for repro.query.predicates."""

import pytest

from repro.query.predicates import (
    AndPredicate,
    Equals,
    InList,
    IsNull,
    NotPredicate,
    OrPredicate,
    Range,
)


class TestEquals:
    def test_matches(self):
        pred = Equals("a", 5)
        assert pred.matches({"a": 5})
        assert not pred.matches({"a": 6})
        assert not pred.matches({})

    def test_columns(self):
        assert Equals("a", 1).columns() == frozenset({"a"})

    def test_str(self):
        assert str(Equals("a", 5)) == "a = 5"


class TestInList:
    def test_matches(self):
        pred = InList("a", [1, 2, 3])
        assert pred.matches({"a": 2})
        assert not pred.matches({"a": 9})

    def test_dedup_preserves_order(self):
        pred = InList("a", [3, 1, 3, 2, 1])
        assert pred.values == (3, 1, 2)

    def test_str(self):
        assert "IN" in str(InList("a", [1]))


class TestRange:
    def test_inclusive_default(self):
        pred = Range("a", 2, 5)
        assert pred.matches({"a": 2})
        assert pred.matches({"a": 5})
        assert not pred.matches({"a": 1})
        assert not pred.matches({"a": 6})

    def test_exclusive(self):
        pred = Range("a", 2, 5, low_inclusive=False, high_inclusive=False)
        assert not pred.matches({"a": 2})
        assert not pred.matches({"a": 5})
        assert pred.matches({"a": 3})

    def test_unbounded_sides(self):
        assert Range("a", None, 5).matches({"a": -100})
        assert Range("a", 5, None).matches({"a": 100})

    def test_null_never_matches(self):
        assert not Range("a", 0, 10).matches({"a": None})

    def test_str_forms(self):
        assert "<=" in str(Range("a", 1, 2))
        assert "<" in str(Range("a", 1, 2, low_inclusive=False))


class TestIsNull:
    def test_matches(self):
        assert IsNull("a").matches({"a": None})
        assert IsNull("a").matches({})
        assert not IsNull("a").matches({"a": 0})


class TestCombinators:
    def test_and(self):
        pred = Equals("a", 1) & Equals("b", 2)
        assert isinstance(pred, AndPredicate)
        assert pred.matches({"a": 1, "b": 2})
        assert not pred.matches({"a": 1, "b": 3})
        assert pred.columns() == frozenset({"a", "b"})

    def test_or(self):
        pred = Equals("a", 1) | Equals("a", 2)
        assert isinstance(pred, OrPredicate)
        assert pred.matches({"a": 2})
        assert not pred.matches({"a": 3})

    def test_not(self):
        pred = ~Equals("a", 1)
        assert isinstance(pred, NotPredicate)
        assert pred.matches({"a": 2})
        assert not pred.matches({"a": 1})

    def test_nested(self):
        pred = (Equals("a", 1) | Equals("a", 2)) & ~Equals("b", "x")
        assert pred.matches({"a": 1, "b": "y"})
        assert not pred.matches({"a": 1, "b": "x"})
        assert not pred.matches({"a": 3, "b": "y"})

    def test_str_renders_tree(self):
        pred = (Equals("a", 1) & Equals("b", 2)) | ~Equals("c", 3)
        text = str(pred)
        assert "AND" in text
        assert "OR" in text
        assert "NOT" in text
