"""Unit tests for repro.boolean.quine_mccluskey."""

import pytest

from repro.boolean.minterm import Implicant
from repro.boolean.quine_mccluskey import coverage_table, prime_implicants


def _covers_exactly(primes, on_set, width, dont_cares=()):
    """Check the prime set covers the ON set and nothing in OFF."""
    dc = set(dont_cares)
    on = set(on_set)
    for value in range(1 << width):
        covered = any(p.covers(value) for p in primes)
        if value in on:
            assert covered, f"minterm {value} uncovered"
        elif value not in dc and covered:
            # primes may only cover ON or DC values
            raise AssertionError(f"OFF minterm {value} covered")


class TestPrimeImplicants:
    def test_empty_on_set(self):
        assert prime_implicants([], 3) == []

    def test_single_minterm(self):
        primes = prime_implicants([5], 3)
        assert primes == [Implicant.minterm(5, 3)]

    def test_full_cube_collapses_to_true(self):
        primes = prime_implicants(range(8), 3)
        assert len(primes) == 1
        assert primes[0].is_constant_true()

    def test_full_cube_via_dont_cares(self):
        primes = prime_implicants([0, 1], 2, dont_cares=[2, 3])
        assert len(primes) == 1
        assert primes[0].is_constant_true()

    def test_adjacent_pair_merges(self):
        primes = prime_implicants([0, 1], 2)
        assert len(primes) == 1
        assert primes[0].care == 0b10
        assert primes[0].bits == 0b00

    def test_classic_example(self):
        # f(x2,x1,x0) with ON = {0,1,2,5,6,7}: primes are
        # x2'x1', x2'x0', x1x0'? ... verify coverage instead of shape.
        on = [0, 1, 2, 5, 6, 7]
        primes = prime_implicants(on, 3)
        _covers_exactly(primes, on, 3)
        # each prime must be prime: no single-literal drop stays valid
        on_set = set(on)
        for prime in primes:
            for var in prime.variables():
                widened_care = prime.care & ~(1 << var)
                widened = Implicant(
                    bits=prime.bits & widened_care,
                    care=widened_care,
                    width=3,
                )
                assert not all(
                    value in on_set for value in widened.minterms()
                )

    def test_dont_cares_extend_merging(self):
        # ON = {1}, DC = {0}: merged into x1' cube (k=2)
        primes = prime_implicants([1], 2, dont_cares=[0])
        assert any(p.care == 0b10 and p.bits == 0 for p in primes)

    def test_value_exceeds_width(self):
        with pytest.raises(ValueError):
            prime_implicants([8], 3)

    def test_deterministic_order(self):
        a = prime_implicants([0, 1, 2, 5, 6, 7], 3)
        b = prime_implicants([0, 1, 2, 5, 6, 7], 3)
        assert a == b

    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_interval_coverage(self, width):
        """[0, d) intervals are always covered correctly."""
        for d in range(1, (1 << width) + 1):
            on = list(range(d))
            primes = prime_implicants(on, width)
            _covers_exactly(primes, on, width)


class TestCoverageTable:
    def test_maps_each_minterm(self):
        on = [0, 1, 5]
        primes = prime_implicants(on, 3)
        table = coverage_table(primes, on)
        assert set(table) == set(on)
        for value, covering in table.items():
            assert covering
            for i in covering:
                assert primes[i].covers(value)

    def test_uncovered_minterm_raises(self):
        primes = prime_implicants([0], 3)
        with pytest.raises(ValueError):
            coverage_table(primes, [7])
