"""EXPLAIN / tracing tests, anchored on the paper's worked example.

The load-bearing acceptance check lives here: on the Figure 1 mapping
(domain {a,b,c}, a=00, b=01, c=10) the traced execution of
``A IN ('a','b')`` must read exactly the ``c_e_best(2, 3) = 1``
vector that the Section 3 cost model predicts — the reduced
expression is ``B1'``.
"""

from __future__ import annotations

import pytest

from repro.analysis.cost_models import c_e_best, c_e_worst
from repro.obs.demo import (
    SCENARIOS,
    demo3_scenario,
    model_comparison,
    table1_scenario,
)
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.query.executor import Executor
from repro.query.planner import Planner


def _run(scenario):
    with use_registry(MetricsRegistry()):
        executor = Executor(scenario.catalog)
        plan = Planner(scenario.catalog).plan(
            scenario.table, scenario.predicate
        )
        result = executor.select(
            scenario.table, scenario.predicate, trace=True
        )
    return plan, result


# ----------------------------------------------------------------------
# golden EXPLAIN output
# ----------------------------------------------------------------------
TABLE1_EXPLAIN = """\
QUERY PLAN
  table: SALES
  predicate: A IN {'a', 'b'}
  step 1: encoded-bitmap(A) <- A IN {'a', 'b'} [est 1.0]
    reduced expression: B1'
    vectors: B1 — 1 of k=2"""


class TestExplainGolden:
    def test_table1_explain_text(self):
        scenario = table1_scenario()
        plan = Planner(scenario.catalog).plan(
            scenario.table, scenario.predicate
        )
        assert plan.explain() == TABLE1_EXPLAIN

    def test_explain_reads_no_vectors(self):
        """EXPLAIN is metadata-only: no index lookup, no vector I/O."""
        scenario = table1_scenario()
        with use_registry(MetricsRegistry()) as registry:
            plan = Planner(scenario.catalog).plan(
                scenario.table, scenario.predicate
            )
            plan.explain()
            assert registry.value("index.lookups") == 0
            assert registry.value("evaluator.vector_reads") == 0

    def test_scan_fallback_explain(self):
        from repro.query.predicates import InList
        from repro.table.catalog import Catalog
        from repro.table.table import Table

        table = Table("noidx", ["A"])
        table.append({"A": 1})
        catalog = Catalog()
        catalog.register_table(table)
        plan = Planner(catalog).plan(table, InList("A", [1]))
        text = plan.explain()
        assert plan.fallback_scan
        assert "TABLE SCAN — no applicable index" in text


# ----------------------------------------------------------------------
# the Figure 1 ("Table 1") acceptance check
# ----------------------------------------------------------------------
class TestTable1Acceptance:
    def test_traced_reads_match_model_c_e(self):
        scenario = table1_scenario()
        plan, result = _run(scenario)
        trace = result.trace
        assert trace is not None
        assert len(trace.accesses) == 1
        access = trace.accesses[0]
        # the reduced expression touches exactly c_e_best(2, 3) vectors
        assert access.reduced == "B1'"
        assert len(access.vectors) == c_e_best(2, 3) == 1
        assert access.vectors == (1,)
        # B1 is read because it appears in the (single) reduced term
        assert access.roles[1] == ("B1'",)
        assert result.count() == 4

    def test_existence_vector_accounted_separately(self):
        """void_mode='vector' adds one existence-vector read on top of
        the reduced expression — visible in vectors_accessed, never in
        the reduced-expression vector list."""
        scenario = table1_scenario()
        _, result = _run(scenario)
        access = result.trace.accesses[0]
        assert access.vectors_accessed == len(access.vectors) + 1

    def test_model_comparison_status_ok(self):
        scenario = table1_scenario()
        plan, result = _run(scenario)
        rows = model_comparison(plan, result.trace)
        assert len(rows) == 1
        row = rows[0]
        assert row["status"] == "OK"
        assert row["measured"] == 1
        assert row["c_e_best"] == 1
        assert row["m"] == 3
        assert row["delta"] == 2


# ----------------------------------------------------------------------
# the three-predicate demo
# ----------------------------------------------------------------------
class TestDemo3:
    def test_trace_has_three_access_steps(self):
        scenario = demo3_scenario()
        plan, result = _run(scenario)
        assert len(plan.steps) == 3
        trace = result.trace
        assert trace is not None
        assert len(trace.accesses) == 3
        for access in trace.accesses:
            assert access.index_kind == "encoded-bitmap"
            assert access.reduced  # every step explains its reduction
            assert 1 <= len(access.vectors) <= access.width

    def test_model_comparison_all_within_envelope(self):
        scenario = demo3_scenario()
        plan, result = _run(scenario)
        rows = model_comparison(plan, result.trace)
        assert len(rows) == 3
        for row in rows:
            assert row["status"] == "OK"
            assert row["c_e_best"] <= row["measured"]
            assert row["measured"] <= max(
                c_e_worst(row["m"]), row["k"]
            )

    def test_trace_reports_stage_timings(self):
        scenario = demo3_scenario()
        _, result = _run(scenario)
        names = [stage.name for stage in result.trace.stages]
        assert names == ["plan", "execute"]
        assert all(
            stage.wall_seconds >= 0.0 for stage in result.trace.stages
        )


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------
class TestExplainCli:
    def test_cli_explain_table1(self, capsys):
        from repro.cli import main

        exit_code = main(["explain", "table1"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "QUERY PLAN" in out
        assert "reduced expression: B1'" in out
        assert "TRACE" in out
        assert "status" in out  # model-comparison table

    def test_cli_explain_no_run(self, capsys):
        from repro.cli import main

        exit_code = main(["explain", "table1", "--no-run"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "QUERY PLAN" in out
        assert "TRACE" not in out

    def test_cli_unknown_scenario_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["explain", "nonsense"])

    def test_scenario_registry(self):
        assert set(SCENARIOS) == {"table1", "demo3"}
        for builder in SCENARIOS.values():
            scenario = builder()
            assert scenario.catalog.indexes_on(
                scenario.table.name,
                next(iter(scenario.predicate.columns())),
            )
