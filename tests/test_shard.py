"""Tests for repro.shard: partition layout, the partitioned index,
and the partition-parallel executor's determinism guarantees."""

import random

import pytest

from repro.errors import InvalidArgumentError, TableError
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.query.executor import Executor
from repro.query.options import QueryOptions
from repro.query.predicates import Equals, InList, Range
from repro.shard import (
    ParallelExecutor,
    PartitionedIndex,
    PartitionedTable,
    partition_bounds,
)
from repro.table.catalog import Catalog
from repro.table.table import Table
from tests.conftest import matching_rows

WORD_BITS = 64


def make_tables(nrows=500, partitions=4, seed=7):
    """A plain table and its partition-split twin, same data."""
    rng = random.Random(seed)
    columns = {
        "product": [rng.randrange(20) for _ in range(nrows)],
        "qty": [rng.randrange(100) for _ in range(nrows)],
    }
    plain = Table.from_columns("sales", dict(columns))
    parted = PartitionedTable.from_columns(
        "sales", columns, partitions=partitions
    )
    return plain, parted


class TestPartitionBounds:
    def test_word_aligned_except_last(self):
        for nrows in (1, 63, 64, 65, 200, 1000, 4096, 4097):
            for parts in (1, 2, 3, 4, 7):
                bounds = partition_bounds(nrows, parts)
                assert bounds[0] == 0
                assert bounds[-1] == nrows
                assert bounds == sorted(set(bounds))
                for bound in bounds[1:-1]:
                    assert bound % WORD_BITS == 0

    def test_small_table_drops_empty_partitions(self):
        assert partition_bounds(10, 4) == [0, 10]

    def test_extra_words_go_to_trailing_partitions(self):
        # 3 words over 2 partitions: the *second* partition gets two.
        assert partition_bounds(192, 2) == [0, 64, 192]

    def test_invalid_partition_count(self):
        with pytest.raises(TableError):
            partition_bounds(100, 0)


class TestPartitionedTable:
    def test_round_trip_columns_and_rows(self):
        plain, parted = make_tables()
        assert len(parted) == len(plain)
        assert parted.column_names == plain.column_names
        assert (
            parted.column("qty").values() == plain.column("qty").values()
        )
        for row_id in (0, 63, 64, len(plain) - 1):
            assert parted.row(row_id) == plain.row(row_id)

    def test_partition_for_maps_global_to_local(self):
        _, parted = make_tables(nrows=200, partitions=3)
        for row_id in range(len(parted)):
            partition, local = parted.partition_for(row_id)
            assert partition.offset + local == row_id

    def test_append_goes_to_last_partition(self):
        _, parted = make_tables(nrows=130, partitions=2)
        before = [len(p) for p in parted.partitions]
        row_id = parted.append({"product": 3, "qty": 9})
        assert row_id == 130
        after = [len(p) for p in parted.partitions]
        assert after[:-1] == before[:-1]
        assert after[-1] == before[-1] + 1
        assert parted.row(row_id) == {"product": 3, "qty": 9}

    def test_delete_is_void_across_partitions(self):
        _, parted = make_tables(nrows=130, partitions=2)
        parted.delete(70)
        assert parted.is_void(70)
        assert 70 in parted.void_rows()
        assert parted.live_count() == 129


class TestPartitionedIndex:
    def test_lookup_matches_reference_scan(self):
        plain, parted = make_tables()
        index = PartitionedIndex(parted, "product")
        for predicate in (
            Equals("product", 3),
            InList("product", [1, 5, 19]),
            Range("product", 4, 11),
        ):
            got = sorted(index.lookup(predicate).indices().tolist())
            assert got == matching_rows(plain, predicate)

    def test_maintains_itself_on_append(self):
        _, parted = make_tables(nrows=130, partitions=2)
        index = PartitionedIndex(parted, "product")
        row_id = parted.append({"product": 99, "qty": 1})
        got = index.lookup(Equals("product", 99)).indices().tolist()
        assert got == [row_id]

    def test_degraded_aggregates_over_children(self):
        _, parted = make_tables()
        index = PartitionedIndex(parted, "product")
        assert not index.degraded
        index.children[2].degraded = True
        assert index.degraded
        index.children[2].degraded = False
        assert not index.degraded


class TestParallelExecutor:
    def test_worker_count_validation(self):
        _, parted = make_tables()
        with pytest.raises(InvalidArgumentError):
            ParallelExecutor(parted, workers=0)
        executor = ParallelExecutor(parted)
        with pytest.raises(InvalidArgumentError):
            executor.execute(Equals("product", 1), QueryOptions(workers=0))

    def test_indexed_rows_match_reference(self):
        plain, parted = make_tables()
        PartitionedIndex(parted, "product")
        executor = ParallelExecutor(parted)
        predicate = InList("product", [2, 7])
        result = executor.execute(predicate)
        assert result.row_ids() == matching_rows(plain, predicate)
        assert not result.used_scan
        assert len(result.partitions) == len(parted.partitions)

    def test_scan_fallback_matches_reference(self):
        # No index on qty: every partition falls back to a scan.
        plain, parted = make_tables()
        executor = ParallelExecutor(parted)
        predicate = Range("qty", 20, 60)
        result = executor.execute(predicate)
        assert result.row_ids() == matching_rows(plain, predicate)
        assert result.used_scan

    def test_explain_reads_nothing(self):
        _, parted = make_tables()
        PartitionedIndex(parted, "product")
        executor = ParallelExecutor(parted)
        text = executor.explain(Equals("product", 1))
        assert "PARTITIONED QUERY PLAN" in text
        assert text.count("partition ") == len(parted.partitions)


class TestDeterminism:
    """1 worker and N workers must be bitwise-indistinguishable."""

    PREDICATES = (
        Equals("product", 3),
        InList("product", [1, 5, 19]),
        Range("qty", 10, 50),
    )

    def _run(self, executor, workers):
        registry = MetricsRegistry()
        with use_registry(registry):
            results = executor.execute_many(
                list(self.PREDICATES), QueryOptions(workers=workers)
            )
        return results, registry.collect()

    def test_rows_counts_and_metrics_identical(self):
        _, parted = make_tables()
        PartitionedIndex(parted, "product")
        executor = ParallelExecutor(parted)
        # Warm the reduction caches first: the very first lookup per
        # child records cache misses, every later one records hits.
        executor.execute_many(list(self.PREDICATES))

        base_results, base_metrics = self._run(executor, workers=1)
        for workers in (2, 4):
            results, metrics = self._run(executor, workers=workers)
            assert metrics == base_metrics
            for got, expected in zip(results, base_results):
                assert got.vector == expected.vector
                assert got.count() == expected.count()
                assert got.metrics == expected.metrics
                assert [s.rows for s in got.partitions] == [
                    s.rows for s in expected.partitions
                ]

    def test_vector_scan_equals_python_reference(self):
        # The numpy fallback scan must agree with the classic
        # row-by-row executor on the identical plain table.
        plain, parted = make_tables()
        executor = ParallelExecutor(parted)
        classic = Executor(Catalog())
        for predicate in (
            Range("qty", 5, 95),
            Equals("qty", 42),
            InList("qty", [0, 1, 99]),
        ):
            parallel = executor.execute(predicate)
            reference = classic.select(plain, predicate)
            assert parallel.row_ids() == reference.row_ids()
            assert any(s.vector_scan for s in parallel.partitions)


class TestBatchExecution:
    def test_batch_matches_individual_runs(self):
        plain, parted = make_tables()
        PartitionedIndex(parted, "product")
        executor = ParallelExecutor(parted)
        predicates = [
            Equals("product", 3),
            Range("product", 4, 11),
            Equals("product", 3),  # duplicated on purpose
        ]
        batch = executor.execute_many(predicates)
        for predicate, result in zip(predicates, batch):
            solo = executor.execute(predicate)
            assert result.row_ids() == solo.row_ids()

    def test_duplicate_leaves_share_index_reads(self):
        _, parted = make_tables()
        PartitionedIndex(parted, "product")
        executor = ParallelExecutor(parted)
        predicate = Equals("product", 3)
        executor.execute(predicate)  # warm caches

        def lookups(predicates):
            registry = MetricsRegistry()
            with use_registry(registry):
                executor.execute_many(predicates, QueryOptions(workers=1))
            return registry.collect().get("index.lookups", 0)

        once = lookups([predicate])
        # The duplicate hits the batch's per-partition leaf cache, so
        # the second query adds no index lookups at all.
        assert lookups([predicate, predicate]) == once

    def test_empty_batch(self):
        _, parted = make_tables()
        executor = ParallelExecutor(parted)
        assert executor.execute_many([]) == []
