"""Unit tests for repro.bitmap.rle."""

import pytest

from repro.bitmap.bitvector import BitVector
from repro.bitmap.rle import RunLengthBitmap
from repro.errors import LengthMismatchError


class TestConstruction:
    def test_empty(self):
        bitmap = RunLengthBitmap(0)
        assert len(bitmap) == 0
        assert bitmap.run_count() == 0

    def test_zeroed(self):
        bitmap = RunLengthBitmap(100)
        assert len(bitmap) == 100
        assert bitmap.run_count() == 1
        assert bitmap.count() == 0

    def test_from_runs_canonicalises(self):
        bitmap = RunLengthBitmap.from_runs(
            [(True, 2), (True, 3), (False, 0), (False, 1)]
        )
        assert bitmap.runs == [(True, 5), (False, 1)]
        assert len(bitmap) == 6

    def test_from_runs_negative_rejected(self):
        with pytest.raises(ValueError):
            RunLengthBitmap.from_runs([(True, -1)])

    def test_from_bitvector(self):
        vec = BitVector.from_bools([1, 1, 0, 0, 0, 1])
        bitmap = RunLengthBitmap.from_bitvector(vec)
        assert bitmap.runs == [(True, 2), (False, 3), (True, 1)]

    def test_from_bools(self):
        bitmap = RunLengthBitmap.from_bools([0, 0, 1])
        assert bitmap.runs == [(False, 2), (True, 1)]


class TestRoundtrip:
    @pytest.mark.parametrize(
        "bits",
        [
            [],
            [True],
            [False],
            [True] * 100,
            [False] * 100,
            [True, False] * 50,
            [False, False, True, True, True, False],
        ],
    )
    def test_roundtrip(self, bits):
        vec = BitVector.from_bools(bits)
        assert RunLengthBitmap.from_bitvector(vec).to_bitvector() == vec


class TestLogicalOps:
    def _pair(self):
        a = RunLengthBitmap.from_bools([1, 1, 0, 0, 1, 0])
        b = RunLengthBitmap.from_bools([1, 0, 1, 0, 1, 1])
        return a, b

    def test_and(self):
        a, b = self._pair()
        assert (a & b).to_bitvector().to_bitstring() == "100010"

    def test_or(self):
        a, b = self._pair()
        assert (a | b).to_bitvector().to_bitstring() == "111011"

    def test_xor(self):
        a, b = self._pair()
        assert (a ^ b).to_bitvector().to_bitstring() == "011001"

    def test_invert(self):
        a, _ = self._pair()
        assert (~a).to_bitvector().to_bitstring() == "001101"
        assert (~~a) == a

    def test_ops_match_bitvector_semantics(self):
        a, b = self._pair()
        av, bv = a.to_bitvector(), b.to_bitvector()
        assert (a & b).to_bitvector() == (av & bv)
        assert (a | b).to_bitvector() == (av | bv)
        assert (a ^ b).to_bitvector() == (av ^ bv)

    def test_length_mismatch(self):
        with pytest.raises(LengthMismatchError):
            RunLengthBitmap(3) & RunLengthBitmap(4)

    def test_result_is_canonical(self):
        a = RunLengthBitmap.from_bools([1, 1, 1, 1])
        b = RunLengthBitmap.from_bools([1, 1, 1, 1])
        assert (a & b).run_count() == 1


class TestCompression:
    def test_sparse_bitmap_compresses_well(self):
        bits = [False] * 1000
        bits[500] = True
        bitmap = RunLengthBitmap.from_bools(bits)
        assert bitmap.run_count() == 3
        assert bitmap.nbytes() == 24
        # uncompressed would be 1000/8 = 125 bytes rounded to words
        assert bitmap.nbytes() < BitVector.from_bools(bits).nbytes()

    def test_dense_alternating_does_not_compress(self):
        bits = [True, False] * 500
        bitmap = RunLengthBitmap.from_bools(bits)
        assert bitmap.run_count() == 1000
        assert bitmap.nbytes() > BitVector.from_bools(bits).nbytes()

    def test_count(self):
        bitmap = RunLengthBitmap.from_bools([1, 0, 1, 1])
        assert bitmap.count() == 3


class TestMutation:
    def test_append_merges_runs(self):
        bitmap = RunLengthBitmap(0)
        for bit in [True, True, False, True]:
            bitmap.append(bit)
        assert bitmap.runs == [(True, 2), (False, 1), (True, 1)]
        assert len(bitmap) == 4

    def test_equality_and_hash(self):
        a = RunLengthBitmap.from_bools([1, 0])
        b = RunLengthBitmap.from_bools([1, 0])
        assert a == b
        assert hash(a) == hash(b)
