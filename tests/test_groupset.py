"""Unit tests for repro.index.groupset (Section 4 of the paper)."""

import pytest

from repro.errors import IndexBuildError
from repro.index.groupset import GroupSetIndex
from repro.table.table import Table


@pytest.fixture
def fact_table():
    table = Table("fact", ["a", "b", "amount"])
    rows = [
        ("x", 1, 10.0), ("x", 2, 20.0), ("y", 1, 5.0),
        ("y", 2, 2.0), ("x", 1, 1.0), ("z", 3, 7.0),
    ]
    for a, b, amount in rows:
        table.append({"a": a, "b": b, "amount": amount})
    return table


class TestVectorCounts:
    def test_paper_example_counts(self):
        """Section 4: cardinalities 100/200/500 -> 10^7 simple vectors
        vs sum of ceil(log2 m_i) encoded vectors."""
        assert GroupSetIndex.simple_vector_count([100, 200, 500]) == 10**7

    def test_encoded_count_is_sum_of_widths(self, fact_table):
        index = GroupSetIndex(fact_table, ["a", "b"])
        assert index.vector_count == sum(
            member.width for member in index.members.values()
        )

    def test_requires_columns(self, fact_table):
        with pytest.raises(IndexBuildError):
            GroupSetIndex(fact_table, [])


class TestGroupVector:
    def test_single_combination(self, fact_table):
        index = GroupSetIndex(fact_table, ["a", "b"])
        vector = index.group_vector({"a": "x", "b": 1})
        assert vector.indices().tolist() == [0, 4]

    def test_cost_accumulates_members(self, fact_table):
        index = GroupSetIndex(fact_table, ["a", "b"])
        index.group_vector({"a": "x", "b": 1})
        assert index.last_cost.vectors_accessed >= 2

    def test_empty_combination(self, fact_table):
        index = GroupSetIndex(fact_table, ["a"])
        assert index.group_vector({}).count() == 0


class TestGroupBy:
    def test_groups_enumerates_occurring_only(self, fact_table):
        """Only combinations present in the data are yielded (the
        paper's density remark)."""
        index = GroupSetIndex(fact_table, ["a", "b"])
        keys = [key for key, _ in index.groups()]
        assert ("x", 1) in keys
        assert ("z", 3) in keys
        assert ("z", 1) not in keys
        assert len(keys) == 5

    def test_count_star(self, fact_table):
        index = GroupSetIndex(fact_table, ["a", "b"])
        counts = index.group_by()
        assert counts[("x", 1)] == 2.0
        assert counts[("z", 3)] == 1.0
        assert sum(counts.values()) == 6.0

    def test_sum_aggregate(self, fact_table):
        index = GroupSetIndex(fact_table, ["a", "b"])
        sums = index.group_by("amount")
        assert sums[("x", 1)] == 11.0
        assert sums[("y", 2)] == 2.0

    def test_skips_void_rows(self, fact_table):
        index = GroupSetIndex(fact_table, ["a", "b"])
        fact_table.delete(5)
        counts = index.group_by()
        assert ("z", 3) not in counts

    def test_single_column_groupby(self, fact_table):
        index = GroupSetIndex(fact_table, ["a"])
        counts = index.group_by()
        assert counts[("x",)] == 3.0
        assert counts[("y",)] == 2.0


class TestRollupGroupBy:
    """Dynamic group-set over hierarchy levels (Section 4)."""

    def _setup(self):
        import random

        from repro.encoding.hierarchy import Hierarchy, hierarchy_encoding
        from repro.encoding.mapping import MappingTable

        hierarchy = Hierarchy(
            range(1, 13),
            {
                "company": {
                    "a": [1, 2, 3, 4], "b": [5, 6], "c": [7, 8],
                    "d": [3, 4, 9, 10], "e": [9, 10, 11, 12],
                },
                "alliance": {"X": ["a", "b", "c"], "Y": ["c", "d"],
                             "Z": ["d", "e"]},
            },
        )
        table = Table("sales", ["branch", "amount"])
        rng = random.Random(9)
        for _ in range(300):
            table.append(
                {"branch": rng.randint(1, 12),
                 "amount": rng.randint(1, 10)}
            )
        mapping = hierarchy_encoding(
            hierarchy, reserve_void_zero=True, seed=0
        )
        mappings = {"branch": mapping}
        index = GroupSetIndex(table, ["branch"], encodings=mappings)
        return hierarchy, table, index

    def test_company_counts_match_scan(self):
        hierarchy, table, index = self._setup()
        counts = index.rollup_group_by("branch", hierarchy, "company")
        for company in "abcde":
            members = hierarchy.base_members("company", company)
            expected = sum(
                1 for row in table.scan() if row["branch"] in members
            )
            assert counts[company] == expected

    def test_alliance_sums_match_scan(self):
        hierarchy, table, index = self._setup()
        sums = index.rollup_group_by(
            "branch", hierarchy, "alliance", aggregate_column="amount"
        )
        for alliance in "XYZ":
            members = hierarchy.base_members("alliance", alliance)
            expected = sum(
                row["amount"]
                for row in table.scan()
                if row["branch"] in members
            )
            assert sums[alliance] == expected

    def test_mn_overlap_can_exceed_total(self):
        """m:N membership means per-company counts may double-count
        shared branches (3, 4 belong to a and d)."""
        hierarchy, table, index = self._setup()
        counts = index.rollup_group_by("branch", hierarchy, "company")
        assert sum(counts.values()) >= len(table)
