"""Differential tests for the compiled retrieval kernels.

The contract under test (ISSUE 5): for any reduced function and any
plane contents, the compiled kernel, the tree-walking ``evaluate_dnf``
and a per-row Python reference must produce identical result vectors
AND identical access accounting (``distinct_accesses`` — the paper's
``c_e`` — and raw ``reads``).  Plus: LRU eviction behaviour of the
cache stack and invalidation of the per-index kernel/plane caches on
mapping changes and data writes.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap.bitvector import BitVector
from repro.boolean.evaluator import AccessCounter, evaluate_dnf
from repro.boolean.reduction import (
    ReducedFunction,
    clear_reduction_cache,
    minterm_dnf,
    reduce_values,
    reduce_values_cached,
    reduction_cache,
    reduction_cache_stats,
)
from repro.cache import LRUCache
from repro.errors import InvalidArgumentError
from repro.kernels import (
    GATHER_MAX_WORDS,
    CompiledKernel,
    PlaneSet,
    clear_compile_cache,
    compile_function,
)
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.query.predicates import Equals, InList
from repro.table.table import Table


def random_planes(rng, width, nbits):
    return [
        BitVector.from_bools(rng.random() < 0.5 for _ in range(nbits))
        for _ in range(width)
    ]


def per_row_reference(function, planes, nbits):
    """Evaluate by reconstructing each row's code — O(n·k) Python."""
    out = BitVector(nbits)
    for row in range(nbits):
        code = 0
        for i, plane in enumerate(planes):
            if plane[row]:
                code |= 1 << i
        if function.evaluate_value(code):
            out[row] = True
    return out


# ----------------------------------------------------------------------
# randomized differential suite: kernel == tree walk == per-row
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_kernel_matches_tree_walk_and_reference(data):
    width = data.draw(st.integers(min_value=1, max_value=6))
    nbits = data.draw(
        st.sampled_from([0, 1, 7, 63, 64, 65, 130, 513])
    )
    m = 1 << width
    codes = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=m - 1),
            max_size=m,
            unique=True,
        )
    )
    rest = sorted(set(range(m)) - set(codes))
    dont_cares = (
        data.draw(st.lists(st.sampled_from(rest), unique=True))
        if rest
        else []
    )
    seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)

    function = reduce_values(codes, width, dont_cares=dont_cares)
    planes = random_planes(rng, width, nbits)

    tree_counter = AccessCounter()
    expected = evaluate_dnf(
        function, lambda i: planes[i], nbits, tree_counter
    )

    kernel_counter = AccessCounter()
    kernel = compile_function(function)
    got = kernel.evaluate(
        PlaneSet.from_vectors(planes, nbits), kernel_counter
    )

    assert got == expected
    # Access accounting must be bit-identical: same distinct set AND
    # the same raw read count (reads, not just len(touched)).
    assert kernel_counter.touched == tree_counter.touched
    assert kernel_counter.reads == tree_counter.reads
    assert kernel_counter.distinct_accesses == tree_counter.distinct_accesses

    # Rows covered by a don't-care code may legitimately differ from
    # the unreduced semantics, so the per-row reference uses the
    # *reduced* function — all three implementations must agree on it.
    assert got == per_row_reference(function, planes, nbits)


def test_kernel_constant_folding_matches_early_exits():
    # Constant-false: no terms.
    false_fn = ReducedFunction(terms=(), width=3)
    # Constant-true: don't-cares collapse everything.
    true_fn = reduce_values(
        list(range(4)), 2, dont_cares=[]
    )
    assert true_fn.is_true

    rng = random.Random(1)
    for function, expected_ctor in (
        (false_fn, BitVector),
        (true_fn, BitVector.ones),
    ):
        planes = random_planes(rng, function.width, 100)
        tree_counter = AccessCounter()
        tree = evaluate_dnf(
            function, lambda i: planes[i], 100, tree_counter
        )
        kernel_counter = AccessCounter()
        kernel = compile_function(function)
        assert kernel.is_constant
        got = kernel.evaluate(
            PlaneSet.from_vectors(planes, 100), kernel_counter
        )
        assert got == tree == expected_ctor(100)
        # The early exits touch nothing — and so must the kernel.
        assert tree_counter.reads == 0
        assert kernel_counter.reads == 0


def test_kernel_strategies_agree_across_the_crossover():
    """Loop and gather strategies split at GATHER_MAX_WORDS words;
    results must be identical on both sides of the threshold."""
    rng = random.Random(3)
    width = 5
    function = reduce_values([3, 5, 9, 17, 29], width, dont_cares=[31])
    assert len(function.terms) >= 2  # both strategies exercised
    kernel = compile_function(function)
    for nwords in (1, GATHER_MAX_WORDS, GATHER_MAX_WORDS + 1, 300):
        nbits = nwords * 64 - 3
        planes = random_planes(rng, width, nbits)
        expected = evaluate_dnf(function, lambda i: planes[i], nbits)
        got = kernel.evaluate(PlaneSet.from_vectors(planes, nbits))
        assert got == expected, f"mismatch at {nwords} words"


def test_kernel_common_literal_factoring_single_term():
    # One term: every literal is "common"; the residue OR is constant
    # true and the kernel reduces to an AND chain.
    function = minterm_dnf([5], 3)
    kernel = compile_function(function)
    rng = random.Random(9)
    planes = random_planes(rng, 3, 200)
    expected = evaluate_dnf(function, lambda i: planes[i], 200)
    assert kernel.evaluate(PlaneSet.from_vectors(planes, 200)) == expected


def test_kernel_width_mismatch_rejected():
    function = minterm_dnf([1], 2)
    kernel = compile_function(function)
    planes = PlaneSet.from_vectors(random_planes(random.Random(0), 3, 10), 10)
    with pytest.raises(InvalidArgumentError):
        kernel.evaluate(planes)


# ----------------------------------------------------------------------
# LRU cache behaviour
# ----------------------------------------------------------------------
def test_lru_cache_eviction_order_and_stats():
    cache = LRUCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes "a"
    cache.put("c", 3)  # evicts "b" (least recently used)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.evictions == 1
    assert cache.hits == 3
    assert cache.misses == 1
    assert len(cache) == 2


def test_lru_cache_get_or_create_builds_once():
    cache = LRUCache(maxsize=4)
    calls = []
    value = cache.get_or_create("k", lambda: calls.append(1) or 42)
    again = cache.get_or_create("k", lambda: calls.append(1) or 42)
    assert value == again == 42
    assert len(calls) == 1


def test_lru_cache_rejects_bad_maxsize():
    with pytest.raises(InvalidArgumentError):
        LRUCache(maxsize=0)


def test_reduction_cache_shares_work_and_evicts():
    clear_reduction_cache()
    before_hits, before_misses, _ = reduction_cache_stats()
    first = reduce_values_cached([1, 2], 3, dont_cares=[7])
    second = reduce_values_cached([2, 1], 3, dont_cares=[7])
    assert first is second  # canonical key: order does not matter
    hits, misses, size = reduction_cache_stats()
    assert hits == before_hits + 1
    assert misses == before_misses + 1
    assert size >= 1
    # Different don't-cares are a different predicate shape.
    third = reduce_values_cached([1, 2], 3)
    assert third is not second

    # Fill beyond capacity with distinct keys: the cache must bound
    # itself and evict.
    for code in range(reduction_cache.maxsize + 8):
        reduce_values_cached([code], 10)
    assert len(reduction_cache) <= reduction_cache.maxsize
    assert reduction_cache.evictions > 0
    clear_reduction_cache()


def test_compile_cache_reuses_kernels():
    clear_compile_cache()
    function = reduce_values([1, 3], 2)
    k1 = compile_function(function)
    k2 = compile_function(
        reduce_values([1, 3], 2)
    )  # equal (frozen) function -> same kernel object
    assert k1 is k2
    clear_compile_cache()


# ----------------------------------------------------------------------
# index integration: kernel path vs tree path, invalidation
# ----------------------------------------------------------------------
def _table(values):
    table = Table("T", ["A"])
    for value in values:
        table.append({"A": value})
    return table


def test_index_kernel_and_tree_paths_agree_with_same_cost():
    values = [f"v{i % 7}" for i in range(500)]
    kernel_index = EncodedBitmapIndex(_table(values), "A")
    tree_index = EncodedBitmapIndex(
        _table(values), "A", use_kernels=False
    )
    assert kernel_index.use_kernels and not tree_index.use_kernels
    for predicate in (
        Equals("A", "v3"),
        InList("A", ["v0", "v5"]),
        InList("A", [f"v{i}" for i in range(7)]),
    ):
        got = kernel_index.lookup(predicate)
        expected = tree_index.lookup(predicate)
        assert got == expected
        assert (
            kernel_index.last_cost.vectors_accessed
            == tree_index.last_cost.vectors_accessed
        )
        assert kernel_index.last_touched == tree_index.last_touched


def test_index_plane_snapshot_invalidated_on_writes():
    table = _table(["a", "b", "c", "a"])
    index = EncodedBitmapIndex(table, "A")
    table.attach(index)
    predicate = Equals("A", "a")
    assert index.lookup(predicate).indices().tolist() == [0, 3]
    rebuilds = index.plane_rebuilds
    assert index.lookup(predicate).indices().tolist() == [0, 3]
    assert index.plane_rebuilds == rebuilds  # steady state: no rebuild

    # A write must invalidate the snapshot and change the answer.
    table.update(1, "A", "a")
    assert index.lookup(predicate).indices().tolist() == [0, 1, 3]
    assert index.plane_rebuilds == rebuilds + 1

    table.delete(0)
    assert index.lookup(predicate).indices().tolist() == [1, 3]

    row = table.append({"A": "a"})
    assert index.lookup(predicate).indices().tolist() == [1, 3, row]


def test_index_kernel_cache_invalidated_on_remap():
    table = _table(["a", "b", "a"])
    index = EncodedBitmapIndex(table, "A")
    table.attach(index)
    index.lookup(Equals("A", "a"))
    assert index._kernel_cache  # populated by the first lookup
    old_width = index.width

    # Appending an unseen value forces a mapping change (and here a
    # width expansion: domain 2(+void) -> 3 values + void needs k=3).
    table.append({"A": "z"})
    table.append({"A": "y"})
    table.append({"A": "x"})
    assert index.width > old_width
    assert not index._reduction_cache or index.width == old_width
    # Post-remap lookups recompile against the new width and stay
    # correct for both old and new values.
    assert index.lookup(Equals("A", "a")).indices().tolist() == [0, 2]
    assert index.lookup(Equals("A", "z")).indices().tolist() == [3]
    for function in index._kernel_cache:
        assert function.width == index.width


def test_serialized_index_roundtrip_keeps_kernel_path():
    from repro.index.serialization import dumps, loads

    table = _table(["a", "b", "c", "b"])
    index = EncodedBitmapIndex(table, "A")
    restored = loads(dumps(index), table)
    assert restored.use_kernels
    predicate = InList("A", ["a", "b"])
    assert restored.lookup(predicate) == index.lookup(predicate)
    assert (
        restored.last_cost.vectors_accessed
        == index.last_cost.vectors_accessed
    )
