"""Unit tests for repro.index.simple_bitmap."""

import pytest

from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.query.predicates import Equals, InList, IsNull, Range
from tests.conftest import matching_rows


class TestBuild:
    def test_one_vector_per_value(self, abc_table):
        index = SimpleBitmapIndex(abc_table, "A")
        assert index.vector_count == 3

    def test_figure1_vectors(self, abc_table):
        """Figure 1: rows a,b,c,b,a,c give B_a=100010, B_b=010100,
        B_c=001001."""
        index = SimpleBitmapIndex(abc_table, "A")
        assert index.vector_for("a").to_bitstring() == "100010"
        assert index.vector_for("b").to_bitstring() == "010100"
        assert index.vector_for("c").to_bitstring() == "001001"

    def test_nulls_get_dedicated_vector(self):
        from repro.table.table import Table

        table = Table("t", ["A"])
        for value in ["x", None, "y", None]:
            table.append({"A": value})
        index = SimpleBitmapIndex(table, "A")
        result = index.lookup(IsNull("A"))
        assert result.indices().tolist() == [1, 3]


class TestLookup:
    def test_equals_cost_is_one(self, abc_table):
        """Q1-style single-value selection reads exactly one vector."""
        index = SimpleBitmapIndex(abc_table, "A")
        result = index.lookup(Equals("A", "a"))
        assert result.indices().tolist() == [0, 4]
        assert index.last_cost.vectors_accessed == 1

    def test_in_list_cost_is_delta(self, abc_table):
        """Q2-style: c_s = delta (one vector per selected value)."""
        index = SimpleBitmapIndex(abc_table, "A")
        result = index.lookup(InList("A", ["a", "b"]))
        assert result.indices().tolist() == [0, 1, 3, 4]
        assert index.last_cost.vectors_accessed == 2

    def test_unknown_value_free(self, abc_table):
        index = SimpleBitmapIndex(abc_table, "A")
        result = index.lookup(Equals("A", "zzz"))
        assert result.count() == 0
        assert index.last_cost.vectors_accessed == 0

    def test_range_on_numeric(self, sales_table):
        index = SimpleBitmapIndex(sales_table, "qty")
        pred = Range("qty", 10, 20)
        result = index.lookup(pred)
        assert sorted(result.indices().tolist()) == matching_rows(
            sales_table, pred
        )
        assert index.last_cost.vectors_accessed == len(
            [v for v in sales_table.column("qty").distinct_values()
             if 10 <= v <= 20]
        )

    def test_boolean_combination(self, sales_table):
        index = SimpleBitmapIndex(sales_table, "region")
        pred = Equals("region", "N") | Equals("region", "S")
        result = index.lookup(pred)
        assert sorted(result.indices().tolist()) == matching_rows(
            sales_table, pred
        )

    def test_negation_excludes_void(self, abc_table):
        index = SimpleBitmapIndex(abc_table, "A")
        abc_table.attach(index)
        abc_table.delete(0)
        result = index.lookup(~Equals("A", "b"))
        assert 0 not in result.indices().tolist()


class TestSparsity:
    def test_average_sparsity_formula(self):
        """Section 3.1: simple bitmap sparsity ~ (m-1)/m under a
        uniform distribution."""
        import random

        from repro.table.table import Table

        rng = random.Random(0)
        table = Table("t", ["A"])
        m = 20
        for _ in range(2000):
            table.append({"A": rng.randrange(m)})
        index = SimpleBitmapIndex(table, "A")
        assert index.average_sparsity() == pytest.approx(
            (m - 1) / m, abs=0.01
        )


class TestMaintenance:
    def test_append_existing_value(self, abc_table):
        index = SimpleBitmapIndex(abc_table, "A")
        abc_table.attach(index)
        abc_table.append({"A": "b"})
        assert index.vector_for("b")[6]
        assert len(index.vector_for("a")) == 7

    def test_append_new_value_expands(self, abc_table):
        index = SimpleBitmapIndex(abc_table, "A")
        abc_table.attach(index)
        before_ops = index.stats.maintenance_ops
        abc_table.append({"A": "zzz"})
        # O(|T|) cost recorded for the new full-length vector
        assert index.stats.maintenance_ops - before_ops >= len(abc_table)
        assert index.vector_count == 4

    def test_update(self, abc_table):
        index = SimpleBitmapIndex(abc_table, "A")
        abc_table.attach(index)
        abc_table.update(0, "A", "c")
        assert not index.vector_for("a")[0]
        assert index.vector_for("c")[0]

    def test_delete(self, abc_table):
        index = SimpleBitmapIndex(abc_table, "A")
        abc_table.attach(index)
        abc_table.delete(1)
        assert not index.vector_for("b")[1]
        assert not index.existence_vector()[1]

    def test_nbytes_linear_in_m(self, sales_table):
        index = SimpleBitmapIndex(sales_table, "product")
        m = sales_table.column("product").cardinality()
        per_vec = (len(sales_table) + 63) // 64 * 8
        assert index.nbytes() == per_vec * (m + 2)
