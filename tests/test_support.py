"""Unit tests for repro.boolean.support (minimal variable support)."""

import pytest

from repro.boolean.support import (
    is_valid_support,
    minimal_support,
    minimal_support_size,
)


class TestIsValidSupport:
    def test_full_mask_always_valid(self):
        assert is_valid_support(0b111, {1, 2}, {0, 3})

    def test_projection_conflict_invalid(self):
        # 0b01 and 0b11 agree on bit 0; one ON one OFF
        assert not is_valid_support(0b01, {0b01}, {0b11})

    def test_empty_off_valid_with_empty_mask(self):
        assert is_valid_support(0, {1, 2}, set())


class TestMinimalSupport:
    def test_constant_function(self):
        assert minimal_support(range(8), 3) == ()
        assert minimal_support([], 3) == ()

    def test_single_variable_function(self):
        # ON = odd values: depends only on bit 0
        on = [v for v in range(8) if v & 1]
        assert minimal_support(on, 3) == (0,)

    def test_aligned_interval(self):
        # [0, 32) in a 6-cube depends only on bit 5
        assert minimal_support(range(32), 6) == (5,)

    def test_odd_interval_needs_all(self):
        # [0, 3) in a 3-cube: |f| = 3 not divisible by 2 -> all 3 vars
        assert minimal_support_size(range(3), 3) == 3

    def test_divisibility_lower_bound(self):
        # |f| = 6 = 2 * 3: at most one variable can be dropped
        assert minimal_support_size(range(6), 3) >= 2

    def test_dont_cares_can_reduce_support(self):
        # ON = {0..5}, DC = {6,7}: completable to constant true
        assert minimal_support(range(6), 3, dont_cares=[6, 7]) == ()

    def test_dont_cares_partial(self):
        # ON = [0, 6), DC = {7}: g can be "not 6" ... still needs vars;
        # with DC {6}: g = [0,6) u {6} = [0,7) -> needs all 3? no:
        # [0,8) minus {7}: that's "not all ones" = 3 vars.  With DC {6,7}
        # constant works (previous test).  Here check DC {6} helps vs none.
        base = minimal_support_size(range(6), 3)
        with_dc = minimal_support_size(range(6), 3, dont_cares=[6])
        assert with_dc <= base

    def test_width_cap(self):
        with pytest.raises(ValueError):
            minimal_support([1], 20)

    def test_matches_paper_best_case_model(self):
        """Property 3.1 check: support of an optimally placed interval
        of width delta equals k - tz(delta)."""
        k = 5
        for t in range(k + 1):
            delta = 1 << t
            assert minimal_support_size(range(delta), k) == k - t

    def test_returns_actual_separating_set(self):
        on = {0b000, 0b001}
        support = minimal_support(on, 3)
        mask = 0
        for var in support:
            mask |= 1 << var
        off = set(range(8)) - on
        assert is_valid_support(mask, on, off)
