"""Tests for the ``repro bench`` harness (``repro.bench``).

Covers the comparator semantics, the versioned ``BENCH_*.json``
schema (validation catches every corruption CI cares about), and the
end-to-end round trip: run the quick suite, reload the file it wrote,
and re-validate.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import Comparison, all_ok, compare, divergence
from repro.bench.runner import run_case, run_suite
from repro.bench.schema import (
    COMPARISON_MODES,
    SCHEMA_VERSION,
    assert_valid,
    validate_payload,
)
from repro.errors import BenchSchemaError, InvalidArgumentError


# ----------------------------------------------------------------------
# comparator semantics
# ----------------------------------------------------------------------
class TestCompare:
    def test_eq_exact(self):
        assert compare("x", 8, 8).ok
        assert not compare("x", 8, 9).ok

    def test_le_bound(self):
        assert compare("x", 3, 6, mode="le").ok
        assert compare("x", 6, 6, mode="le").ok
        assert not compare("x", 7, 6, mode="le").ok

    def test_ge_bound(self):
        assert compare("x", 0.9, 0.83, mode="ge").ok
        assert not compare("x", 0.5, 0.83, mode="ge").ok

    def test_approx_within_tolerance(self):
        assert compare("x", 21, 20, mode="approx", tolerance=0.25).ok
        assert not compare(
            "x", 30, 20, mode="approx", tolerance=0.25
        ).ok

    def test_approx_tolerance_zero_means_exact(self):
        assert compare("x", 20, 20, mode="approx", tolerance=0.0).ok
        assert not compare(
            "x", 21, 20, mode="approx", tolerance=0.0
        ).ok

    def test_divergence_is_relative(self):
        assert divergence(30, 20) == pytest.approx(0.5)
        assert divergence(20, 20) == 0.0
        # predictions under 1 are compared on an absolute scale
        assert divergence(0.5, 0.0) == pytest.approx(0.5)

    def test_invalid_mode_rejected(self):
        with pytest.raises(InvalidArgumentError):
            compare("x", 1, 1, mode="almost")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(InvalidArgumentError):
            compare("x", 1, 1, tolerance=-0.1)

    def test_describe_mentions_both_sides(self):
        text = compare("c_s", 8, 8, unit="vectors").describe()
        assert "8" in text
        assert "vectors" in text
        assert "ok" in text

    def test_all_ok(self):
        good = compare("a", 1, 1)
        bad = compare("b", 2, 1)
        assert all_ok([good])
        assert not all_ok([good, bad])

    def test_as_dict_matches_schema_keys(self):
        entry = compare("a", 1, 2, mode="le").as_dict()
        assert set(entry) == {
            "label",
            "unit",
            "measured",
            "predicted",
            "mode",
            "divergence",
            "ok",
        }


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------
def _valid_payload() -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "smoke",
        "quick": True,
        "tolerance": 0.25,
        "ok": True,
        "cases": [
            {
                "name": "t",
                "description": "d",
                "wall_seconds": 0.01,
                "cpu_seconds": 0.01,
                "ok": True,
                "metrics": {"evaluator.vector_reads": 3},
                "results": [
                    {
                        "label": "l",
                        "unit": "vectors",
                        "measured": 1,
                        "predicted": 1,
                        "mode": "eq",
                        "divergence": 0.0,
                        "ok": True,
                    }
                ],
            }
        ],
    }


class TestSchema:
    def test_valid_payload_has_no_violations(self):
        assert validate_payload(_valid_payload()) == []
        assert_valid(_valid_payload())  # must not raise

    def test_non_object_payload(self):
        assert validate_payload([1, 2]) != []

    def test_missing_top_level_key(self):
        payload = _valid_payload()
        del payload["tolerance"]
        assert any(
            "missing key 'tolerance'" in p
            for p in validate_payload(payload)
        )

    def test_unknown_key_flagged(self):
        payload = _valid_payload()
        payload["extra"] = 1
        assert any(
            "unknown key 'extra'" in p
            for p in validate_payload(payload)
        )

    def test_version_mismatch(self):
        payload = _valid_payload()
        payload["schema_version"] = SCHEMA_VERSION + 1
        assert any(
            "schema_version" in p for p in validate_payload(payload)
        )

    def test_empty_cases_rejected(self):
        payload = _valid_payload()
        payload["cases"] = []
        assert any("at least one" in p for p in validate_payload(payload))

    def test_empty_results_rejected(self):
        payload = _valid_payload()
        payload["cases"][0]["results"] = []
        assert any(
            "must not be empty" in p for p in validate_payload(payload)
        )

    def test_bool_does_not_satisfy_number(self):
        payload = _valid_payload()
        payload["cases"][0]["results"][0]["measured"] = True
        assert any(
            "got bool" in p for p in validate_payload(payload)
        )

    def test_non_numeric_metric_rejected(self):
        payload = _valid_payload()
        payload["cases"][0]["metrics"]["bad"] = "three"
        assert any(
            "expected number" in p for p in validate_payload(payload)
        )

    def test_unknown_mode_rejected(self):
        payload = _valid_payload()
        payload["cases"][0]["results"][0]["mode"] = "fuzzy"
        assert any("'fuzzy'" in p for p in validate_payload(payload))

    def test_assert_valid_raises_with_violations(self):
        payload = _valid_payload()
        del payload["ok"]
        payload["cases"][0]["results"][0]["mode"] = "fuzzy"
        with pytest.raises(BenchSchemaError) as excinfo:
            assert_valid(payload)
        assert len(excinfo.value.violations) == 2

    def test_modes_cover_comparator(self):
        for mode in COMPARISON_MODES:
            assert compare("x", 1, 1, mode=mode) is not None


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
class TestRunner:
    def test_run_case_captures_error(self):
        from repro.bench.cases import BenchCase

        def explode(tolerance: float):
            raise ValueError("boom")

        report = run_case(
            BenchCase(name="bad", description="x", run=explode),
            tolerance=0.25,
        )
        assert not report.ok
        assert report.error == "ValueError: boom"

    def test_run_case_collects_private_metrics(self):
        from repro.bench.cases import QUICK_CASES

        table1 = next(
            case
            for case in QUICK_CASES
            if case.name == "table1_example"
        )
        report = run_case(table1, tolerance=0.25)
        assert report.ok
        assert report.metrics.get("index.lookups", 0) >= 1

    def test_quick_suite_round_trip(self, tmp_path):
        report = run_suite(quick=True, out_dir=str(tmp_path))
        assert report.ok
        assert report.path == str(tmp_path / "BENCH_smoke.json")
        # ISSUE acceptance: the smoke suite carries >= 2 benchmarks
        assert len(report.cases) >= 2
        with open(report.path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert validate_payload(payload) == []
        assert payload["suite"] == "smoke"
        assert payload["quick"] is True
        names = [case["name"] for case in payload["cases"]]
        assert "table1_example" in names

    def test_suite_name_override(self, tmp_path):
        report = run_suite(
            quick=True, out_dir=str(tmp_path), suite="custom"
        )
        assert report.path == str(tmp_path / "BENCH_custom.json")

    def test_render_mentions_every_case(self, tmp_path):
        report = run_suite(quick=True, out_dir=str(tmp_path))
        text = report.render()
        for case in report.cases:
            assert case.name in text
        assert f"{len(report.cases)}/{len(report.cases)} cases" in text


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------
class TestBenchCli:
    def test_cli_bench_quick(self, tmp_path, capsys):
        from repro.cli import main

        exit_code = main(
            ["bench", "--quick", "--out", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "BENCH_smoke.json" in out
        payload = json.loads(
            (tmp_path / "BENCH_smoke.json").read_text()
        )
        assert validate_payload(payload) == []


def test_comparison_is_immutable():
    entry = Comparison(
        label="x",
        measured=1,
        predicted=1,
        mode="eq",
        unit="u",
        divergence=0.0,
        ok=True,
    )
    with pytest.raises(AttributeError):
        entry.ok = False  # type: ignore[misc]
