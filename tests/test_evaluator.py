"""Unit tests for repro.boolean.evaluator."""

import pytest

from repro.bitmap.bitvector import BitVector
from repro.boolean.evaluator import (
    AccessCounter,
    evaluate_dnf,
    evaluate_expression,
)
from repro.boolean.expr import And, Const, Not, Or, Var, Xor, dnf_expression
from repro.boolean.reduction import minterm_dnf, reduce_values


def _vectors_for_codes(codes, width, nbits=None):
    """Bitmap vectors B_i for a column whose row j holds codes[j]."""
    nbits = nbits or len(codes)
    vectors = []
    for i in range(width):
        vectors.append(
            BitVector.from_bools(
                [(code >> i) & 1 for code in codes]
            )
        )
    return vectors


class TestAccessCounter:
    def test_distinct_accesses(self):
        counter = AccessCounter()
        counter.record(0)
        counter.record(1)
        counter.record(0)
        assert counter.distinct_accesses == 2
        assert counter.reads == 3

    def test_merge(self):
        a, b = AccessCounter(), AccessCounter()
        a.record(0)
        b.record(1)
        a.merge(b)
        assert a.distinct_accesses == 2


class TestEvaluateDnf:
    def setup_method(self):
        self.codes = [0b00, 0b01, 0b10, 0b01, 0b00, 0b10]
        self.vectors = _vectors_for_codes(self.codes, 2)

    def _fetch(self, i):
        return self.vectors[i]

    def test_selects_matching_rows(self):
        function = reduce_values([0b00], 2)
        result = evaluate_dnf(function, self._fetch, 6)
        assert result.indices().tolist() == [0, 4]

    def test_reduced_function_touches_fewer_vectors(self):
        counter = AccessCounter()
        function = reduce_values([0b00, 0b01], 2)  # -> B1'
        result = evaluate_dnf(function, self._fetch, 6, counter)
        assert counter.distinct_accesses == 1
        assert result.indices().tolist() == [0, 1, 3, 4]

    def test_unreduced_touches_all(self):
        counter = AccessCounter()
        function = minterm_dnf([0b00, 0b01], 2)
        evaluate_dnf(function, self._fetch, 6, counter)
        assert counter.distinct_accesses == 2

    def test_false_function(self):
        function = reduce_values([], 2)
        result = evaluate_dnf(function, self._fetch, 6)
        assert result.count() == 0

    def test_true_function(self):
        function = reduce_values(range(4), 2)
        result = evaluate_dnf(function, self._fetch, 6)
        assert result.count() == 6

    def test_matches_per_row_semantics(self):
        function = reduce_values([0b01, 0b10], 2)
        result = evaluate_dnf(function, self._fetch, 6)
        for row, code in enumerate(self.codes):
            assert result[row] == function.evaluate_value(code)


class TestEvaluateExpression:
    def setup_method(self):
        self.codes = [0b000, 0b001, 0b011, 0b111, 0b101, 0b010]
        self.vectors = _vectors_for_codes(self.codes, 3)

    def _fetch(self, i):
        return self.vectors[i]

    @pytest.mark.parametrize(
        "expr",
        [
            Var(0),
            Not(Var(1)),
            And((Var(0), Var(1))),
            Or((Var(0), Not(Var(2)))),
            Xor((Var(0), Var(1), Var(2))),
            Const(True),
            Const(False),
            And((Or((Var(0), Var(1))), Not(Var(2)))),
        ],
    )
    def test_expression_matches_value_semantics(self, expr):
        result = evaluate_expression(expr, self._fetch, 6)
        for row, code in enumerate(self.codes):
            assert result[row] == expr.evaluate_value(code)

    def test_counter_tracks_variables(self):
        counter = AccessCounter()
        expr = And((Var(0), Var(2)))
        evaluate_expression(expr, self._fetch, 6, counter)
        assert counter.touched == {0, 2}

    def test_dnf_and_expression_agree(self):
        function = reduce_values([1, 3, 5], 3)
        via_dnf = evaluate_dnf(function, self._fetch, 6)
        via_expr = evaluate_expression(
            dnf_expression(function), self._fetch, 6
        )
        assert via_dnf == via_expr
