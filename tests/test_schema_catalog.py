"""Unit tests for repro.table.schema and repro.table.catalog."""

import pytest

from repro.encoding.hierarchy import Hierarchy
from repro.errors import SchemaError, TableError
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.table.catalog import Catalog
from repro.table.schema import Dimension, FactTable, StarSchema
from repro.table.table import Table


@pytest.fixture
def star():
    """A small sales star: fact SALES -> dimension SALESPOINT."""
    salespoint = Table("salespoint", ["branch", "city"])
    for branch in range(1, 13):
        salespoint.append({"branch": branch, "city": f"c{branch % 3}"})
    hierarchy = Hierarchy(
        range(1, 13),
        {
            "company": {
                "a": [1, 2, 3, 4], "b": [5, 6], "c": [7, 8],
                "d": [3, 4, 9, 10], "e": [9, 10, 11, 12],
            },
            "alliance": {"X": ["a", "b", "c"], "Y": ["c", "d"],
                         "Z": ["d", "e"]},
        },
    )
    dim = Dimension(salespoint, key="branch", hierarchy=hierarchy)

    sales = Table("sales", ["branch", "amount"])
    for i in range(60):
        sales.append({"branch": (i % 12) + 1, "amount": i})
    fact = FactTable(sales, {"branch": dim})
    return StarSchema(fact)


class TestDimension:
    def test_key_column_required(self):
        table = Table("d", ["k"])
        with pytest.raises(SchemaError):
            Dimension(table, key="missing")

    def test_key_values(self, star):
        dim = star.dimension("salespoint")
        assert dim.key_values() == set(range(1, 13))

    def test_members_requires_hierarchy(self):
        table = Table("d", ["k"])
        table.append({"k": 1})
        dim = Dimension(table, key="k")
        with pytest.raises(SchemaError):
            dim.members_of("level", "x")


class TestFactTable:
    def test_foreign_key_column_must_exist(self):
        dim_table = Table("d", ["k"])
        dim = Dimension(dim_table, key="k")
        fact_table = Table("f", ["x"])
        with pytest.raises(SchemaError):
            FactTable(fact_table, {"missing": dim})

    def test_dimension_for(self, star):
        dim = star.fact.dimension_for("branch")
        assert dim.name == "salespoint"
        with pytest.raises(SchemaError):
            star.fact.dimension_for("amount")


class TestStarSchema:
    def test_dimension_lookup(self, star):
        assert star.dimension("salespoint").key == "branch"
        with pytest.raises(SchemaError):
            star.dimension("nope")

    def test_fact_column_for(self, star):
        assert star.fact_column_for("salespoint") == "branch"
        with pytest.raises(SchemaError):
            star.fact_column_for("nope")

    def test_rollup_in_list(self, star):
        """Alliance X -> branches 1..8 (through companies a, b, c)."""
        in_list = star.rollup_in_list("salespoint", "alliance", "X")
        assert in_list == list(range(1, 9))

    def test_hierarchy_predicates(self, star):
        predicates = star.hierarchy_predicates("salespoint")
        assert len(predicates) == 8  # 5 companies + 3 alliances

    def test_hierarchy_predicates_require_hierarchy(self):
        table = Table("d", ["k"])
        table.append({"k": 1})
        dim = Dimension(table, key="k")
        fact_table = Table("f", ["k"])
        fact = FactTable(fact_table, {"k": dim})
        schema = StarSchema(fact)
        with pytest.raises(SchemaError):
            schema.hierarchy_predicates("d")


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        table = Table("t", ["a"])
        catalog.register_table(table)
        assert catalog.table("t") is table
        assert catalog.tables() == [table]

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.register_table(Table("t", ["a"]))
        with pytest.raises(TableError):
            catalog.register_table(Table("t", ["b"]))

    def test_unknown_table(self):
        with pytest.raises(TableError):
            Catalog().table("zzz")

    def test_register_index_attaches(self):
        catalog = Catalog()
        table = Table("t", ["a"])
        table.append({"a": 1})
        catalog.register_table(table)
        index = SimpleBitmapIndex(table, "a")
        catalog.register_index(index)
        assert catalog.indexes_on("t", "a") == [index]
        # attached: appends flow through
        table.append({"a": 2})
        assert index.vector_for(2) is not None

    def test_register_index_without_attach(self):
        catalog = Catalog()
        table = Table("t", ["a"])
        table.append({"a": 1})
        index = SimpleBitmapIndex(table, "a")
        catalog.register_index(index, attach=False)
        table.append({"a": 9})
        assert index.vector_for(9) is None

    def test_all_indexes(self):
        catalog = Catalog()
        table = Table("t", ["a", "b"])
        table.append({"a": 1, "b": 2})
        catalog.register_index(SimpleBitmapIndex(table, "a"))
        catalog.register_index(SimpleBitmapIndex(table, "b"))
        assert len(catalog.all_indexes()) == 2
