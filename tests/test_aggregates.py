"""Unit tests for repro.aggregate (Section 5's aggregate algorithms)."""

import random

import pytest

from repro.aggregate.counts import count, count_distinct, group_counts
from repro.aggregate.quantiles import median, ntile_boundaries
from repro.aggregate.sums import (
    average_bitsliced,
    average_encoded,
    sum_bitsliced,
    sum_encoded,
)
from repro.index.bitsliced import BitSlicedIndex
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.query.predicates import InList, Range
from repro.table.table import Table


@pytest.fixture
def numeric_table():
    table = Table("t", ["v"])
    rng = random.Random(17)
    for _ in range(500):
        table.append({"v": rng.randint(0, 40)})
    return table


def _live_values(table, predicate=None):
    return [
        row["v"]
        for row in table.scan()
        if predicate is None or predicate.matches(row)
    ]


class TestCount:
    def test_count_all(self, numeric_table):
        index = EncodedBitmapIndex(numeric_table, "v")
        assert count(index) == 500

    def test_count_with_predicate(self, numeric_table):
        index = EncodedBitmapIndex(numeric_table, "v")
        pred = Range("v", 10, 20)
        assert count(index, pred) == len(
            _live_values(numeric_table, pred)
        )

    def test_count_after_deletions(self, numeric_table):
        index = EncodedBitmapIndex(numeric_table, "v")
        numeric_table.attach(index)
        for victim in (0, 5, 9):
            numeric_table.delete(victim)
        assert count(index) == 497

    def test_count_distinct(self, numeric_table):
        index = EncodedBitmapIndex(numeric_table, "v")
        expected = len(set(_live_values(numeric_table)))
        assert count_distinct(index) == expected

    def test_count_distinct_under_selection(self, numeric_table):
        index = EncodedBitmapIndex(numeric_table, "v")
        pred = Range("v", 0, 10)
        expected = len(set(_live_values(numeric_table, pred)))
        assert count_distinct(index, pred) == expected

    def test_group_counts(self, numeric_table):
        index = EncodedBitmapIndex(numeric_table, "v")
        groups = group_counts(index)
        values = _live_values(numeric_table)
        for value, group_count in groups.items():
            assert group_count == values.count(value)
        assert sum(groups.values()) == len(values)


class TestSum:
    def test_sum_encoded_matches_scan(self, numeric_table):
        index = EncodedBitmapIndex(numeric_table, "v")
        assert sum_encoded(index) == sum(_live_values(numeric_table))

    def test_sum_bitsliced_matches_scan(self, numeric_table):
        index = BitSlicedIndex(numeric_table, "v")
        assert sum_bitsliced(index) == sum(_live_values(numeric_table))

    def test_sum_with_selection(self, numeric_table):
        encoded = EncodedBitmapIndex(numeric_table, "v")
        sliced = BitSlicedIndex(numeric_table, "v")
        pred = Range("v", 5, 25)
        selection = encoded.lookup(pred)
        expected = sum(_live_values(numeric_table, pred))
        assert sum_encoded(encoded, selection) == expected
        assert sum_bitsliced(sliced, selection) == expected

    def test_sum_respects_deletions(self, numeric_table):
        index = BitSlicedIndex(numeric_table, "v")
        numeric_table.attach(index)
        removed = numeric_table.row(3)["v"]
        before = sum_bitsliced(index)
        numeric_table.delete(3)
        assert sum_bitsliced(index) == before - removed

    def test_averages(self, numeric_table):
        encoded = EncodedBitmapIndex(numeric_table, "v")
        sliced = BitSlicedIndex(numeric_table, "v")
        values = _live_values(numeric_table)
        expected = sum(values) / len(values)
        assert average_encoded(encoded) == pytest.approx(expected)
        assert average_bitsliced(sliced) == pytest.approx(expected)

    def test_average_empty_selection(self, numeric_table):
        encoded = EncodedBitmapIndex(numeric_table, "v")
        from repro.bitmap.bitvector import BitVector

        empty = BitVector(len(numeric_table))
        with pytest.raises(ZeroDivisionError):
            average_encoded(encoded, empty)


class TestQuantiles:
    def test_median_matches_sorted(self, numeric_table):
        index = EncodedBitmapIndex(numeric_table, "v")
        values = sorted(_live_values(numeric_table))
        expected = values[(len(values) - 1) // 2]
        assert median(index) == expected

    def test_median_with_selection(self, numeric_table):
        index = EncodedBitmapIndex(numeric_table, "v")
        pred = InList("v", list(range(0, 41, 2)))
        selection = index.lookup(pred)
        values = sorted(_live_values(numeric_table, pred))
        expected = values[(len(values) - 1) // 2]
        assert median(index, selection) == expected

    def test_median_empty(self, numeric_table):
        index = EncodedBitmapIndex(numeric_table, "v")
        from repro.bitmap.bitvector import BitVector

        with pytest.raises(ValueError):
            median(index, BitVector(len(numeric_table)))

    def test_quartiles(self, numeric_table):
        index = EncodedBitmapIndex(numeric_table, "v")
        boundaries = ntile_boundaries(index, 4)
        assert len(boundaries) == 3
        assert boundaries == sorted(boundaries)
        values = sorted(_live_values(numeric_table))
        # each boundary splits within one value of the exact quartile
        for i, boundary in enumerate(boundaries, start=1):
            below = sum(1 for v in values if v <= boundary)
            assert below >= i * len(values) / 4 - len(values) * 0.08

    def test_ntile_validation(self, numeric_table):
        index = EncodedBitmapIndex(numeric_table, "v")
        with pytest.raises(ValueError):
            ntile_boundaries(index, 1)
