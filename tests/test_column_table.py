"""Unit tests for repro.table.column and repro.table.table."""

import pytest

from repro.errors import TableError
from repro.table.column import Column
from repro.table.table import Table


class TestColumn:
    def test_append_returns_row_id(self):
        col = Column("a")
        assert col.append(10) == 0
        assert col.append(20) == 1

    def test_cardinality_tracks_distinct(self):
        col = Column("a", [1, 1, 2, 3, 3, 3])
        assert col.cardinality() == 3
        assert col.distinct_values() == {1, 2, 3}

    def test_nulls(self):
        col = Column("a", [1, None, 2, None])
        assert col.null_count == 2
        assert col.has_nulls()
        assert col.cardinality() == 2

    def test_update(self):
        col = Column("a", [1, 2])
        old = col.update(0, 9)
        assert old == 1
        assert col[0] == 9
        assert 9 in col.distinct_values()

    def test_update_null_transitions(self):
        col = Column("a", [1])
        col.update(0, None)
        assert col.null_count == 1
        col.update(0, 5)
        assert col.null_count == 0

    def test_getitem_out_of_range(self):
        col = Column("a", [1])
        with pytest.raises(TableError):
            col[5]

    def test_value_positions(self):
        col = Column("a", [1, 2, 1, None])
        positions = col.value_positions()
        assert positions[1] == [0, 2]
        assert positions[None] == [3]

    def test_empty_name_rejected(self):
        with pytest.raises(TableError):
            Column("")

    def test_values_copy(self):
        col = Column("a", [1, 2])
        values = col.values()
        values.append(3)
        assert len(col) == 2


class TestTable:
    def test_append_dict_and_sequence(self):
        table = Table("t", ["a", "b"])
        table.append({"a": 1, "b": 2})
        table.append([3, 4])
        assert table.row(0) == {"a": 1, "b": 2}
        assert table.row(1) == {"a": 3, "b": 4}

    def test_missing_dict_keys_become_null(self):
        table = Table("t", ["a", "b"])
        table.append({"a": 1})
        assert table.row(0)["b"] is None

    def test_unknown_column_rejected(self):
        table = Table("t", ["a"])
        with pytest.raises(TableError):
            table.append({"z": 1})

    def test_wrong_arity_rejected(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(TableError):
            table.append([1])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(TableError):
            Table("t", ["a", "a"])

    def test_no_columns_rejected(self):
        with pytest.raises(TableError):
            Table("t", [])

    def test_delete_makes_void(self):
        table = Table("t", ["a"])
        table.append({"a": 1})
        table.append({"a": 2})
        table.delete(0)
        assert table.is_void(0)
        assert table.live_count() == 1
        assert len(table) == 2
        with pytest.raises(TableError):
            table.row(0)

    def test_double_delete_rejected(self):
        table = Table("t", ["a"])
        table.append({"a": 1})
        table.delete(0)
        with pytest.raises(TableError):
            table.delete(0)

    def test_delete_out_of_range(self):
        table = Table("t", ["a"])
        with pytest.raises(TableError):
            table.delete(5)

    def test_existence_vector(self):
        table = Table("t", ["a"])
        for i in range(4):
            table.append({"a": i})
        table.delete(2)
        assert table.existence_vector().to_bitstring() == "1101"

    def test_update(self):
        table = Table("t", ["a"])
        table.append({"a": 1})
        table.update(0, "a", 7)
        assert table.row(0)["a"] == 7

    def test_update_void_rejected(self):
        table = Table("t", ["a"])
        table.append({"a": 1})
        table.delete(0)
        with pytest.raises(TableError):
            table.update(0, "a", 2)

    def test_scan_skips_void(self):
        table = Table("t", ["a"])
        for i in range(3):
            table.append({"a": i})
        table.delete(1)
        assert [row["a"] for row in table.scan()] == [0, 2]

    def test_scan_column_subset(self):
        table = Table("t", ["a", "b"])
        table.append({"a": 1, "b": 2})
        rows = list(table.scan(columns=["b"]))
        assert rows == [{"b": 2}]

    def test_observer_notifications(self):
        events = []

        class Spy:
            def on_append(self, row_id, row):
                events.append(("append", row_id))

            def on_update(self, row_id, column, old, new):
                events.append(("update", row_id, old, new))

            def on_delete(self, row_id):
                events.append(("delete", row_id))

        table = Table("t", ["a"])
        spy = Spy()
        table.attach(spy)
        table.append({"a": 1})
        table.update(0, "a", 2)
        table.delete(0)
        assert events == [
            ("append", 0),
            ("update", 0, 1, 2),
            ("delete", 0),
        ]
        table.detach(spy)
        table.append({"a": 3})
        assert len(events) == 3

    def test_unknown_column_lookup(self):
        table = Table("t", ["a"])
        with pytest.raises(TableError):
            table.column("zz")
