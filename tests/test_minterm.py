"""Unit tests for repro.boolean.minterm."""

import pytest

from repro.boolean.minterm import Implicant


class TestConstruction:
    def test_minterm(self):
        term = Implicant.minterm(0b101, 3)
        assert term.bits == 0b101
        assert term.care == 0b111
        assert term.literal_count() == 3

    def test_minterm_value_too_wide(self):
        with pytest.raises(ValueError):
            Implicant.minterm(0b1000, 3)

    def test_care_exceeds_width(self):
        with pytest.raises(ValueError):
            Implicant(bits=0, care=0b1000, width=3)

    def test_bits_outside_care(self):
        with pytest.raises(ValueError):
            Implicant(bits=0b10, care=0b01, width=2)


class TestCovers:
    def test_full_minterm_covers_only_itself(self):
        term = Implicant.minterm(5, 3)
        assert term.covers(5)
        assert not term.covers(4)

    def test_cube_covers_free_dimension(self):
        # x2' x0  (bit 1 free)
        term = Implicant(bits=0b001, care=0b101, width=3)
        assert term.covers(0b001)
        assert term.covers(0b011)
        assert not term.covers(0b000)
        assert not term.covers(0b101)

    def test_constant_true_covers_everything(self):
        term = Implicant(bits=0, care=0, width=3)
        assert term.is_constant_true()
        assert all(term.covers(v) for v in range(8))


class TestMerge:
    def test_adjacent_merge(self):
        a = Implicant.minterm(0b000, 3)
        b = Implicant.minterm(0b001, 3)
        merged = a.merge(b)
        assert merged is not None
        assert merged.care == 0b110
        assert merged.bits == 0b000

    def test_non_adjacent_returns_none(self):
        a = Implicant.minterm(0b000, 3)
        b = Implicant.minterm(0b011, 3)
        assert a.merge(b) is None

    def test_identical_returns_none(self):
        a = Implicant.minterm(0b010, 3)
        assert a.merge(a) is None

    def test_different_care_returns_none(self):
        a = Implicant(bits=0b00, care=0b01, width=2)
        b = Implicant(bits=0b00, care=0b10, width=2)
        assert a.merge(b) is None

    def test_merge_is_symmetric(self):
        a = Implicant.minterm(0b100, 3)
        b = Implicant.minterm(0b101, 3)
        assert a.merge(b) == b.merge(a)


class TestEnumeration:
    def test_minterms_of_cube(self):
        term = Implicant(bits=0b100, care=0b100, width=3)
        assert sorted(term.minterms()) == [0b100, 0b101, 0b110, 0b111]

    def test_minterms_of_full_minterm(self):
        term = Implicant.minterm(6, 3)
        assert list(term.minterms()) == [6]

    def test_variables(self):
        term = Implicant(bits=0b001, care=0b101, width=3)
        assert term.variables() == (0, 2)


class TestRendering:
    def test_paper_notation(self):
        # B2'B1B0' as in the paper
        term = Implicant(bits=0b010, care=0b111, width=3)
        assert term.to_string() == "B2'B1B0'"

    def test_partial_term(self):
        term = Implicant(bits=0b000, care=0b010, width=3)
        assert term.to_string() == "B1'"

    def test_constant(self):
        term = Implicant(bits=0, care=0, width=3)
        assert term.to_string() == "1"

    def test_custom_prefix(self):
        term = Implicant(bits=0b1, care=0b1, width=1)
        assert term.to_string(prefix="x") == "x0"
