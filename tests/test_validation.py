"""Unit tests for repro.analysis.validation — every paper claim."""

import pytest

from repro.analysis.validation import (
    CheckResult,
    all_passed,
    run_all_checks,
)


class TestValidation:
    def test_every_claim_passes(self):
        results = run_all_checks()
        failing = [r.claim for r in results if not r.passed]
        assert not failing, f"paper claims failing: {failing}"

    def test_all_passed_helper(self):
        assert all_passed()

    def test_check_count(self):
        assert len(run_all_checks()) == 16

    def test_results_carry_provenance(self):
        for result in run_all_checks():
            assert isinstance(result, CheckResult)
            assert result.claim
            assert result.paper_value
            assert result.our_value
            assert "Section" in result.source

    def test_sections_covered(self):
        """The checks span every section with quantitative claims."""
        sources = {r.source for r in run_all_checks()}
        for section in ("2.1", "2.2", "2.3", "3.1", "3.2", "4"):
            assert any(section in s for s in sources), section

    def test_cli_validate_exit_code(self, capsys):
        from repro.cli import main

        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "16/16 paper claims reproduced" in out
        assert "FAIL" not in out
