"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.table.table import Table
from repro.workload.generators import uniform_column, zipf_column


@pytest.fixture
def rng():
    """Deterministic RNG for tests."""
    return random.Random(1234)


@pytest.fixture
def abc_table():
    """The paper's running example table: attribute A over {a, b, c}.

    Six rows matching Figure 1's layout: a, b, c, b, a, c.
    """
    table = Table("T", ["A"])
    for value in ["a", "b", "c", "b", "a", "c"]:
        table.append({"A": value})
    return table


@pytest.fixture
def sales_table():
    """A small fact table with a couple of attribute types."""
    table = Table("sales", ["product", "qty", "region"])
    rng = random.Random(7)
    products = list(range(100, 130))
    for _ in range(300):
        table.append(
            {
                "product": rng.choice(products),
                "qty": rng.randint(1, 50),
                "region": rng.choice(["N", "S", "E", "W"]),
            }
        )
    return table


@pytest.fixture
def skewed_table():
    """A table with a Zipf-skewed high-cardinality column."""
    n = 400
    values = zipf_column(n, 80, skew=1.3, seed=3)
    table = Table("skewed", ["v"])
    for value in values:
        table.append({"v": value})
    return table


def matching_rows(table: Table, predicate) -> list:
    """Reference result: scan-based row ids for a predicate."""
    return sorted(
        row_id
        for row_id in range(len(table))
        if not table.is_void(row_id)
        and predicate.matches(table.row(row_id))
    )
