"""Write-ahead log: frame codec, both log devices, corruption safety.

The WAL's contract is the inverse of serialization's: instead of
rejecting a whole damaged container, replay keeps the longest clean
*prefix* and truncates at the first bad frame.  The property test at
the bottom drives that contract bit by bit: a single flipped bit
anywhere in the stream is always detected — the damaged record (and
everything after it) is dropped, never replayed as data.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.errors import CorruptIndexError, InvalidArgumentError
from repro.faults import FaultPolicy, FaultRule, FaultyPager
from repro.storage.wal import (
    FileWriteAheadLog,
    PagedWriteAheadLog,
    WalRecord,
    decode_wal,
    encode_record,
    wal_header,
)

RECORDS = [
    WalRecord("append", {"table": "t", "base": 0, "rows": [{"v": 1}]}),
    WalRecord("update", {"table": "t", "row": 0, "column": "v", "value": 2}),
    WalRecord("delete", {"table": "t", "row": 0}),
    WalRecord("checkpoint", {"generation": 3}),
]


def stream(records=RECORDS) -> bytes:
    return wal_header() + b"".join(encode_record(r) for r in records)


# ----------------------------------------------------------------------
# frame codec
# ----------------------------------------------------------------------
class TestCodec:
    def test_roundtrip_all_kinds(self):
        decoded, clean = decode_wal(stream())
        assert [r.kind for r in decoded] == [r.kind for r in RECORDS]
        assert [r.data for r in decoded] == [r.data for r in RECORDS]
        assert clean == len(stream())

    def test_bad_kind_rejected_at_construction(self):
        with pytest.raises(InvalidArgumentError, match="kind"):
            WalRecord("compact", {})

    def test_bad_header_decodes_nothing(self):
        body = stream()[len(wal_header()):]
        records, clean = decode_wal(b"NOPE" + b"\x01\x00" + body)
        assert records == []
        assert clean == 0

    def test_truncated_tail_keeps_prefix(self):
        buffer = stream()
        # Cut inside the last frame: first three records survive.
        records, clean = decode_wal(buffer[:-3])
        assert [r.kind for r in records] == [
            "append", "update", "delete",
        ]
        assert clean < len(buffer) - 3

    def test_garbage_after_clean_prefix_stops_decode(self):
        buffer = stream(RECORDS[:2]) + b"\xff" * 32
        records, clean = decode_wal(buffer)
        assert len(records) == 2
        assert clean == len(stream(RECORDS[:2]))


# ----------------------------------------------------------------------
# file device
# ----------------------------------------------------------------------
class TestFileWal:
    def test_append_replay_roundtrip(self, tmp_path):
        log = FileWriteAheadLog(str(tmp_path / "wal.log"))
        for record in RECORDS:
            log.append(record)
        assert [r.kind for r in log.replay()] == [
            r.kind for r in RECORDS
        ]
        log.close()

    def test_missing_file_replays_empty(self, tmp_path):
        log = FileWriteAheadLog(str(tmp_path / "absent.log"))
        assert log.replay() == []

    def test_damaged_tail_truncated_then_appendable(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = FileWriteAheadLog(path)
        for record in RECORDS[:3]:
            log.append(record)
        log.close()
        clean_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef")
        assert len(log.replay()) == 3  # damaged tail dropped...
        assert os.path.getsize(path) == clean_size  # ...and cut
        log.append(RECORDS[3])  # new records extend a clean stream
        assert [r.kind for r in log.replay()][-1] == "checkpoint"
        log.close()

    def test_reset_leaves_single_checkpoint(self, tmp_path):
        log = FileWriteAheadLog(str(tmp_path / "wal.log"))
        for record in RECORDS[:3]:
            log.append(record)
        log.reset(generation=7)
        records = log.replay()
        assert [r.kind for r in records] == ["checkpoint"]
        assert records[0].data["generation"] == 7
        log.close()

    def test_corrupt_header_raises(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with open(path, "wb") as handle:
            handle.write(b"JUNKJUNKJUNK")
        with pytest.raises(CorruptIndexError, match="header"):
            FileWriteAheadLog(path).replay()


# ----------------------------------------------------------------------
# paged device under the fault matrix
# ----------------------------------------------------------------------
class TestPagedWal:
    def test_roundtrip_across_pages(self):
        log = PagedWriteAheadLog(page_size=64)
        records = [
            WalRecord("append", {"table": "t", "base": i, "rows": [{"v": i}]})
            for i in range(20)
        ]
        for record in records:
            log.append(record)
        replayed = log.records()
        assert [r.data["base"] for r in replayed] == list(range(20))

    def test_torn_page_write_truncates_at_bad_frame(self):
        policy = FaultPolicy(
            seed=11,
            rules=(FaultRule(operation="write", kind="torn", skip_first=2),),
        )
        log = PagedWriteAheadLog(
            pager=FaultyPager(page_size=64, policy=policy), page_size=64
        )
        written = 0
        try:
            for i in range(20):
                log.append(
                    WalRecord(
                        "append",
                        {"table": "t", "base": i, "rows": [{"v": i}]},
                    )
                )
                written += 1
        except Exception:
            pass
        replayed = log.records()
        # Only a clean prefix comes back, in order, no damaged frame.
        assert [r.data["base"] for r in replayed] == list(
            range(len(replayed))
        )
        assert len(replayed) <= written

    def test_bitrot_read_truncates_at_bad_frame(self):
        policy = FaultPolicy.single("read", "bitrot", skip_first=1)
        log = PagedWriteAheadLog(
            pager=FaultyPager(page_size=64, policy=policy), page_size=64
        )
        for i in range(20):
            log.append(
                WalRecord(
                    "append", {"table": "t", "base": i, "rows": [{"v": i}]}
                )
            )
        replayed = log.records()
        assert [r.data["base"] for r in replayed] == list(
            range(len(replayed))
        )
        assert len(replayed) < 20


# ----------------------------------------------------------------------
# property: single-bit corruption is detected, never replayed
# ----------------------------------------------------------------------
def test_single_bit_corruption_never_replays_damage():
    """Flip one bit anywhere in the stream: decode returns only intact
    records, bit-identical to originals, and never fabricates data."""
    rng = random.Random(20260808)
    buffer = bytearray(stream())
    originals = [(r.kind, r.data) for r in RECORDS]
    header = len(wal_header())
    positions = rng.sample(range(len(buffer) * 8), 400)
    for bitpos in positions:
        byte, bit = divmod(bitpos, 8)
        buffer[byte] ^= 1 << bit
        records, clean = decode_wal(bytes(buffer))
        assert clean <= len(buffer)
        # Every decoded record matches the original at its position:
        # damage is detected and truncated, never silently altered.
        if byte < header:
            assert records == []
        else:
            for i, record in enumerate(records):
                assert (record.kind, record.data) == originals[i]
        buffer[byte] ^= 1 << bit  # restore
    assert decode_wal(bytes(buffer))[0] == decode_wal(stream())[0]
