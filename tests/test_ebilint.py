"""Tests for ebilint itself: one positive + one negative fixture per
rule, plus the suppression pragmas, the baseline mechanism, and the
CLI exit codes the CI gate relies on."""

import json
import textwrap
from collections import Counter
from pathlib import Path

import pytest

from repro.lint import all_rules, get_rule, lint_paths, lint_source
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cli import main as lint_main
from repro.lint.core import Severity
from repro.lint.runner import PARSE_ERROR_RULE, Report, module_name_for


def findings_for(rule_id, source, module):
    """Run a single rule over a dedented fixture."""
    return [
        f
        for f in lint_source(
            textwrap.dedent(source), path="<fixture>", module=module
        )
        if f.rule == rule_id
    ]


# ----------------------------------------------------------------------
# registry sanity
# ----------------------------------------------------------------------
def test_registry_ships_at_least_eight_rules():
    rules = all_rules()
    ids = [rule.id for rule in rules]
    assert len(ids) == len(set(ids))
    assert len(ids) >= 8
    for expected in (
        "EBI101", "EBI102", "EBI103", "EBI104",
        "EBI201", "EBI202", "EBI203", "EBI204",
    ):
        assert expected in ids


def test_every_rule_documents_itself():
    for rule in all_rules():
        assert rule.description
        assert rule.rationale
        assert rule.severity is Severity.ERROR


def test_get_rule_unknown_id():
    with pytest.raises(KeyError):
        get_rule("EBI999")


# ----------------------------------------------------------------------
# EBI101 — per-bit loops in word-packed hot paths
# ----------------------------------------------------------------------
def test_ebi101_flags_per_bit_for_loop():
    bad = """
        def scan(self):
            out = []
            for j in range(self._nbits):
                if self[j]:
                    out.append(j)
            return out
    """
    found = findings_for("EBI101", bad, module="repro.bitmap.fake")
    assert len(found) == 1
    assert "per-bit" in found[0].message


def test_ebi101_flags_while_over_bit_index():
    bad = """
        def scan(nbits):
            j = 0
            while j < nbits:
                j += 1
    """
    assert findings_for("EBI101", bad, module="repro.boolean.evaluator")


def test_ebi101_accepts_word_level_loop():
    good = """
        def scan(self):
            for word_index in np.nonzero(self._words)[0]:
                word = int(self._words[word_index])
                while word:
                    word &= word - 1
    """
    assert not findings_for("EBI101", good, module="repro.bitmap.fake")


def test_ebi101_out_of_scope_module_is_ignored():
    bad = """
        def scan(nbits):
            for j in range(nbits):
                pass
    """
    assert not findings_for("EBI101", bad, module="repro.table.fake")
    assert not findings_for("EBI101", bad, module=None)


# ----------------------------------------------------------------------
# EBI102 — BitVector allocation inside hot-path loops
# ----------------------------------------------------------------------
def test_ebi102_flags_allocation_in_loop():
    bad = """
        def evaluate(terms, nbits):
            result = BitVector.zeros(nbits)
            for term in terms:
                result |= BitVector.ones(nbits)
            return result
    """
    found = findings_for("EBI102", bad, module="repro.boolean.evaluator")
    assert len(found) == 1


def test_ebi102_accepts_hoisted_allocation():
    good = """
        def evaluate(terms, nbits):
            result = BitVector.zeros(nbits)
            for term in terms:
                result |= term.vector
            return result
    """
    assert not findings_for("EBI102", good, module="repro.boolean.evaluator")


def test_ebi102_ignores_nested_function_bodies():
    good = """
        def evaluate(terms, nbits):
            for term in terms:
                def fetch():
                    return BitVector.zeros(nbits)
                register(fetch)
    """
    assert not findings_for("EBI102", good, module="repro.query.executor")


def test_ebi102_only_hot_path_modules():
    bad = """
        def build(rows, nbits):
            vectors = []
            for _ in range(8):
                vectors.append(BitVector.zeros(nbits))
            return vectors
    """
    # Index *construction* loops legitimately allocate per iteration.
    assert not findings_for("EBI102", bad, module="repro.index.builder")


# ----------------------------------------------------------------------
# EBI103 — evaluator calls must pass an AccessCounter
# ----------------------------------------------------------------------
def test_ebi103_flags_uncounted_call():
    bad = """
        def run(function, source, nbits):
            return evaluate_dnf(function, source, nbits)
    """
    found = findings_for("EBI103", bad, module="repro.query.fake")
    assert len(found) == 1
    assert "AccessCounter" in found[0].message


def test_ebi103_accepts_counter_keyword_and_positional():
    good = """
        def run(function, source, nbits, counter):
            a = evaluate_dnf(function, source, nbits, counter)
            b = evaluate_expression(expr, source, nbits, counter=counter)
            return a, b
    """
    assert not findings_for("EBI103", good, module="repro.index.fake")


def test_ebi103_scope_is_index_and_query_only():
    bad = """
        def run(function, source, nbits):
            return evaluate_dnf(function, source, nbits)
    """
    assert not findings_for("EBI103", bad, module="repro.analysis.fake")


# ----------------------------------------------------------------------
# EBI104 — slow string-based popcount
# ----------------------------------------------------------------------
def test_ebi104_flags_bin_count_popcount():
    bad = """
        def distance(x, y):
            return bin(x ^ y).count("1")
    """
    found = findings_for("EBI104", bad, module="repro.encoding.distance")
    assert len(found) == 1
    assert "bit_count" in found[0].message


def test_ebi104_accepts_native_bit_count():
    good = """
        def distance(x, y):
            return (x ^ y).bit_count()
    """
    assert not findings_for("EBI104", good, module="repro.encoding.distance")


def test_ebi104_ignores_other_count_calls():
    good = """
        def zeros(text):
            return bin(7).count("0") + text.count("1")
    """
    # counting "0" digits or counting on a non-bin() receiver is not
    # the popcount idiom.
    assert not findings_for("EBI104", good, module=None)


# ----------------------------------------------------------------------
# EBI105 — bit-at-a-time BitVector use in src/repro loops
# ----------------------------------------------------------------------
def test_ebi105_flags_direct_vector_iteration():
    bad = """
        def collect(vector):
            out = []
            for bit in vector:
                out.append(bit)
            return out
    """
    found = findings_for("EBI105", bad, module="repro.aggregate.fake")
    assert len(found) == 1
    assert "per-bit iteration" in found[0].message


def test_ebi105_flags_range_len_vector_loop():
    bad = """
        def collect(result_vector):
            for j in range(len(result_vector)):
                use(result_vector[j])
    """
    found = findings_for("EBI105", bad, module="repro.query.fake")
    assert len(found) == 1
    assert "index loop" in found[0].message


def test_ebi105_flags_rebinding_temporary_in_loop():
    bad = """
        def combine(vectors, selection):
            for vector in vectors:
                vector = vector & selection
                yield vector.count()
    """
    found = findings_for("EBI105", bad, module="repro.aggregate.fake")
    assert len(found) == 1
    assert "&=" in found[0].message


def test_ebi105_accepts_inplace_and_word_level_forms():
    good = """
        def combine(vectors, selection):
            for vector in vectors:
                vector &= selection
                yield vector.count()

        def positions(vector):
            for j in vector.iter_set_bits():
                yield j

        def fresh(vectors, other):
            for vector in vectors:
                merged = vector & other
                yield merged
    """
    assert not findings_for("EBI105", good, module="repro.aggregate.fake")


def test_ebi105_exempt_outside_repro_package():
    bad = """
        def collect(vector):
            for bit in vector:
                pass
    """
    assert not findings_for("EBI105", bad, module=None)


def test_ebi105_ignores_nested_function_bodies():
    good = """
        def plans(vectors, selection):
            for vector in vectors:
                def thunk(vector=vector):
                    vector = vector & selection
                    return vector
                yield thunk
    """
    assert not findings_for("EBI105", good, module="repro.aggregate.fake")


# ----------------------------------------------------------------------
# EBI106 — run-compressed bitmap decompressed inside a loop
# ----------------------------------------------------------------------
def test_ebi106_flags_decompress_in_loop():
    bad = """
        def total(compressed_planes):
            total = 0
            for compressed in compressed_planes:
                total += compressed.to_bitvector().count()
            return total
    """
    found = findings_for("EBI106", bad, module="repro.aggregate.fake")
    assert len(found) == 1
    assert "decompressed inside a loop" in found[0].message


def test_ebi106_flags_to_words_on_wah_receiver():
    bad = """
        def scan(index, queries):
            while queries:
                queries.pop()
                use(index.wah_plane.to_words())
    """
    assert findings_for("EBI106", bad, module="repro.kernels.fake")


def test_ebi106_flags_chained_plane_call():
    bad = """
        def pages(runs, touched):
            for i in touched:
                yield runs.plane(i).to_bitvector()
    """
    # receiver is the ``runs.plane(i)`` call — named by the callee.
    assert not findings_for("EBI106", bad, module="repro.bench.fake")
    bad_runs = """
        def pages(snapshot, touched):
            for i in touched:
                yield snapshot.runs(i).to_bitvector()
    """
    assert findings_for("EBI106", bad_runs, module="repro.bench.fake")


def test_ebi106_accepts_run_level_work_and_hoisting():
    good = """
        def merge(compressed_planes, selection):
            result = selection
            for compressed in compressed_planes:
                result = result & compressed
            return result.to_bitvector()

        def runwise(rle):
            for bit, length in rle.runs:
                yield bit, length

        def hoisted(compressed, positions):
            vector = compressed.to_bitvector()
            for j in positions:
                yield vector[j]
    """
    assert not findings_for("EBI106", good, module="repro.aggregate.fake")


def test_ebi106_ignores_non_runnish_receivers():
    good = """
        def prune(pruned_set, trunk):
            for entry in trunk:
                use(pruned_set.to_bitvector())
                use(entry.page.to_words())
    """
    # substring "run" inside prune/trunk must not count; only whole
    # tokens and the compressed/wah/rle fragments do.
    assert not findings_for("EBI106", good, module="repro.aggregate.fake")


def test_ebi106_exempt_outside_repro_package():
    bad = """
        def total(compressed_planes):
            for compressed in compressed_planes:
                use(compressed.to_bitvector())
    """
    assert not findings_for("EBI106", bad, module=None)


# ----------------------------------------------------------------------
# EBI108 — mapped planes fully materialised inside a loop
# ----------------------------------------------------------------------
def test_ebi108_flags_materialize_in_loop():
    bad = """
        def scan(mapped_planes, queries):
            for q in queries:
                dense = mapped_planes.materialize()
                use(dense, q)
    """
    found = findings_for("EBI108", bad, module="repro.query.fake")
    assert len(found) == 1
    assert "materialised inside a loop" in found[0].message


def test_ebi108_flags_copy_and_asarray_densify():
    bad_copy = """
        def pages(snapshot, touched):
            for i in touched:
                yield snapshot.mapped.matrix.copy()[i]
    """
    assert findings_for("EBI108", bad_copy, module="repro.kernels.fake")
    bad_asarray = """
        import numpy as np

        def rows(mapped_planes, indices):
            while indices:
                indices.pop()
                use(np.asarray(mapped_planes.matrix))
    """
    assert findings_for(
        "EBI108", bad_asarray, module="repro.kernels.fake"
    )


def test_ebi108_accepts_hoisted_and_mapped_row_access():
    good = """
        import numpy as np

        def hoisted(mapped_planes, queries):
            dense = mapped_planes.materialize()
            for q in queries:
                use(dense, q)

        def rowwise(mapped, rows):
            for i in rows:
                yield mapped.matrix[mapped.row(i, True)]

        def dense_copy(planes, rows):
            for i in rows:
                use(np.asarray(planes.matrix))
    """
    assert not findings_for("EBI108", good, module="repro.query.fake")


def test_ebi108_ignores_nested_function_bodies():
    good = """
        def build(mapped_planes, queries):
            thunks = []
            for q in queries:
                thunks.append(lambda: mapped_planes.materialize())
            return thunks
    """
    assert not findings_for("EBI108", good, module="repro.query.fake")


def test_ebi108_exempt_outside_repro_package():
    bad = """
        def scan(mapped_planes, queries):
            for q in queries:
                use(mapped_planes.materialize())
    """
    assert not findings_for("EBI108", bad, module=None)


# ----------------------------------------------------------------------
# EBI201 — code 0 is reserved for the VOID sentinel (Theorem 2.1)
# ----------------------------------------------------------------------
def test_ebi201_flags_assign_zero_to_real_value():
    bad = """
        def build(table):
            table.assign("red", 0)
    """
    assert findings_for("EBI201", bad, module=None)


def test_ebi201_accepts_void_on_zero():
    good = """
        def build(table):
            table.assign(VOID, 0)
            table.assign("red", 1)
    """
    assert not findings_for("EBI201", good, module=None)


def test_ebi201_flags_from_pairs_literal():
    bad = """
        table = MappingTable.from_pairs(
            [("red", 0), ("blue", 1)], reserve_void_zero=True
        )
    """
    found = findings_for("EBI201", bad, module=None)
    assert len(found) == 1
    assert "Theorem 2.1" in found[0].message


def test_ebi201_from_pairs_without_void_reservation_ok():
    good = """
        table = MappingTable.from_pairs([("red", 0), ("blue", 1)])
    """
    assert not findings_for("EBI201", good, module=None)


# ----------------------------------------------------------------------
# EBI202 — encoding constructors must run check_mapping
# ----------------------------------------------------------------------
def test_ebi202_flags_unchecked_constructor():
    bad = """
        def my_encoding(values) -> MappingTable:
            return MappingTable.from_values(values)
    """
    found = findings_for("EBI202", bad, module="repro.encoding.fake")
    assert len(found) == 1
    assert "check_mapping" in found[0].message


def test_ebi202_accepts_checked_constructor():
    good = """
        def my_encoding(values) -> MappingTable:
            table = MappingTable.from_values(values)
            return check_mapping(table)
    """
    assert not findings_for("EBI202", good, module="repro.encoding.fake")


def test_ebi202_ignores_private_and_non_mapping_functions():
    good = """
        def _helper(values) -> MappingTable:
            return MappingTable.from_values(values)

        def width_of(values) -> int:
            return len(values)
    """
    assert not findings_for("EBI202", good, module="repro.encoding.fake")


def test_ebi202_primitive_modules_exempt():
    bad = """
        def from_values(values) -> MappingTable:
            return MappingTable(values)
    """
    assert not findings_for("EBI202", bad, module="repro.encoding.mapping")


# ----------------------------------------------------------------------
# EBI203 — expression factories, not raw operand tuples
# ----------------------------------------------------------------------
def test_ebi203_flags_raw_tuple_construction():
    bad = """
        def plan(a, b):
            return And((Var(0), Var(1)))
    """
    assert findings_for("EBI203", bad, module="repro.query.planner")


def test_ebi203_accepts_factories_and_operators():
    good = """
        def plan(a, b):
            return and_(var(0), var(1)) | or_(var(2))
    """
    assert not findings_for("EBI203", good, module="repro.query.planner")


def test_ebi203_boolean_package_itself_exempt():
    internal = """
        def dnf(terms):
            return Or(tuple(terms)) if terms else And((Const(True),))
    """
    assert not findings_for("EBI203", internal, module="repro.boolean.expr")
    # Tests/examples (module=None) may also build raw nodes freely.
    assert not findings_for("EBI203", internal, module=None)


# ----------------------------------------------------------------------
# EBI204 — mutable default arguments
# ----------------------------------------------------------------------
def test_ebi204_flags_mutable_defaults():
    bad = """
        def record(accesses=[], stats={}, *, seen=set()):
            accesses.append(1)
    """
    found = findings_for("EBI204", bad, module=None)
    assert len(found) == 3


def test_ebi204_flags_factory_call_default():
    bad = """
        def record(stats=dict()):
            pass
    """
    assert findings_for("EBI204", bad, module="repro.query.fake")


def test_ebi204_accepts_none_and_immutable_defaults():
    good = """
        def record(accesses=None, width=0, names=(), label="x"):
            if accesses is None:
                accesses = []
    """
    assert not findings_for("EBI204", good, module=None)


# ----------------------------------------------------------------------
# EBI000 — parse failures are findings, not crashes
# ----------------------------------------------------------------------
def test_syntax_error_reported_as_finding():
    findings = lint_source("def broken(:\n", path="<fixture>")
    assert len(findings) == 1
    assert findings[0].rule == PARSE_ERROR_RULE
    assert findings[0].severity is Severity.ERROR


# ----------------------------------------------------------------------
# suppression pragmas
# ----------------------------------------------------------------------
def test_line_suppression():
    source = """
        def record(stats={}):  # ebilint: disable=EBI204
            pass
    """
    assert not findings_for("EBI204", source, module=None)


def test_line_suppression_is_rule_specific():
    source = """
        def record(stats={}):  # ebilint: disable=EBI101
            pass
    """
    assert findings_for("EBI204", source, module=None)


def test_file_suppression():
    source = """
        # ebilint: disable-file=EBI204
        def record(stats={}):
            pass

        def record2(stats={}):
            pass
    """
    assert not findings_for("EBI204", source, module=None)


def test_all_wildcard_suppression():
    source = """
        def record(stats={}):  # ebilint: disable=all
            pass
    """
    assert not findings_for("EBI204", source, module=None)


def test_pragma_inside_string_not_honoured():
    source = '''
        PRAGMA = "# ebilint: disable-file=EBI204"

        def record(stats={}):
            pass
    '''
    assert findings_for("EBI204", source, module=None)


# ----------------------------------------------------------------------
# baseline mechanism
# ----------------------------------------------------------------------
BAD_MODULE = textwrap.dedent(
    """
    def record(stats={}):
        pass
    """
)


def test_baseline_absorbs_known_findings(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(BAD_MODULE)
    baseline_file = tmp_path / "baseline.json"

    report = lint_paths([target])
    assert len(report.findings) == 1
    write_baseline(baseline_file, report.findings)

    rerun = lint_paths([target], baseline_path=baseline_file)
    assert rerun.findings == []
    assert rerun.stale_baseline == []
    assert rerun.exit_code == 0


def test_baseline_survives_line_drift(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(BAD_MODULE)
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, lint_paths([target]).findings)

    # Shift the offending line down; the fingerprint keys on the
    # source text, so the entry still absorbs it.
    target.write_text("\n\n# moved\n" + BAD_MODULE)
    rerun = lint_paths([target], baseline_path=baseline_file)
    assert rerun.findings == []
    assert rerun.exit_code == 0


def test_baseline_reports_stale_entries(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(BAD_MODULE)
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, lint_paths([target]).findings)

    target.write_text("def record(stats=None):\n    pass\n")
    rerun = lint_paths([target], baseline_path=baseline_file)
    assert rerun.findings == []
    assert len(rerun.stale_baseline) == 1
    assert rerun.exit_code == 1  # stale entries must be ratcheted out


def test_baseline_does_not_absorb_new_findings(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(BAD_MODULE)
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, lint_paths([target]).findings)

    target.write_text(BAD_MODULE + "\ndef extra(seen=set()):\n    pass\n")
    rerun = lint_paths([target], baseline_path=baseline_file)
    assert len(rerun.findings) == 1
    assert "seen" in rerun.findings[0].source_line
    assert rerun.exit_code == 1


def test_baseline_counts_duplicate_fingerprints():
    twin = Counter({"EBI204::<fixture>::x": 1})
    # Two findings with the identical source text (a redefinition) share
    # a fingerprint; the count bounds how many the baseline absorbs.
    findings = lint_source(
        "def f(a={}):\n    pass\n\ndef f(a={}):\n    pass\n",
        path="p.py",
    )
    assert len(findings) == 2
    fp = findings[0].fingerprint()
    assert findings[1].fingerprint() == fp
    fresh, stale = apply_baseline(findings, Counter({fp: 1}))
    assert len(fresh) == 1  # one absorbed, the twin is fresh
    assert stale == []
    fresh, stale = apply_baseline(findings, twin)
    assert len(fresh) == 2


def test_load_baseline_rejects_unknown_version(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": 99, "findings": {}}))
    with pytest.raises(ValueError):
        load_baseline(bad)
    assert load_baseline(tmp_path / "missing.json") == Counter()


# ----------------------------------------------------------------------
# module scoping + CLI
# ----------------------------------------------------------------------
def test_module_name_for_maps_src_layout():
    assert (
        module_name_for(Path("src/repro/bitmap/bitvector.py"))
        == "repro.bitmap.bitvector"
    )
    assert module_name_for(Path("src/repro/lint/__init__.py")) == "repro.lint"
    assert module_name_for(Path("tests/test_ebilint.py")) is None


def test_report_exit_code_clean():
    assert Report().exit_code == 0


def test_cli_exits_nonzero_on_violating_tree(tmp_path, capsys):
    # A fixture tree violating every shipped rule family must fail the
    # run even though module-scoped rules don't apply outside src/repro:
    # EBI204/EBI201 are everywhere-scoped, and a src/repro layout under
    # tmp_path exercises the scoped ones.
    pkg = tmp_path / "src" / "repro" / "bitmap"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "def scan(nbits):\n"
        "    for j in range(nbits):\n"
        "        pass\n"
    )
    exit_code = lint_main([str(tmp_path), "--no-baseline"])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "EBI101" in out


def test_cli_exits_zero_on_clean_tree(tmp_path, capsys):
    (tmp_path / "clean.py").write_text("def f(x=None):\n    return x\n")
    assert lint_main([str(tmp_path), "--no-baseline"]) == 0


def test_cli_select_and_ignore(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(BAD_MODULE)
    assert lint_main([str(target), "--select", "EBI204"]) == 1
    assert lint_main([str(target), "--ignore", "EBI204"]) == 0


def test_cli_write_baseline_roundtrip(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    target = tmp_path / "mod.py"
    target.write_text(BAD_MODULE)
    assert lint_main(["mod.py", "--write-baseline"]) == 0
    assert (tmp_path / ".ebilint-baseline.json").exists()
    # With the baseline in place the same tree is clean...
    assert lint_main(["mod.py"]) == 0
    # ...and fixing the violation flags the baseline as stale.
    target.write_text("def record(stats=None):\n    pass\n")
    assert lint_main(["mod.py"]) == 1
    assert "stale" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "EBI101" in out and "EBI204" in out


# ----------------------------------------------------------------------
# EBI206 — deprecated index constructor forms
# ----------------------------------------------------------------------
def test_ebi206_flags_extra_positional_arguments():
    bad = """
        from repro.index import EncodedBitmapIndex

        index = EncodedBitmapIndex(table, "v", mapping_table)
    """
    found = findings_for("EBI206", bad, module="repro.demo")
    assert len(found) == 1
    assert "positional" in found[0].message


def test_ebi206_flags_mapping_keyword():
    bad = """
        index = EncodedBitmapIndex(table, "v", mapping=mapping_table)
    """
    found = findings_for("EBI206", bad, module="repro.demo")
    assert len(found) == 1
    assert "mapping=" in found[0].message
    assert "encoding=" in found[0].message


def test_ebi206_flags_mappings_keyword_on_groupset():
    bad = """
        index = GroupSetIndex(table, ["a", "b"], mappings=tables)
    """
    found = findings_for("EBI206", bad, module="tests.test_demo")
    assert len(found) == 1
    assert "encodings=" in found[0].message


def test_ebi206_join_index_keeps_four_anchors():
    good = """
        index = BitmapJoinIndex(fact, "fk", dim, "k", encoding=m)
    """
    assert not findings_for("EBI206", good, module="repro.demo")
    bad = """
        index = BitmapJoinIndex(fact, "fk", dim, "k", m)
    """
    assert len(findings_for("EBI206", bad, module="repro.demo")) == 1


def test_ebi206_checks_attribute_calls():
    bad = """
        import repro.index as ix

        index = ix.BPlusTreeIndex(table, "v", 4096)
    """
    assert len(findings_for("EBI206", bad, module="repro.demo")) == 1


def test_ebi206_accepts_normalized_forms():
    good = """
        a = EncodedBitmapIndex(table, "v", encoding=mapping_table)
        b = BPlusTreeIndex(table, "v", page_size=4096)
        c = PagedEncodedBitmapIndex(table, "v", store=pager)
        d = GroupSetIndex(table, ["a", "b"], encodings=tables)
        e = SimpleBitmapIndex(table, "v", registry=registry)
    """
    assert not findings_for("EBI206", good, module="repro.demo")


def test_ebi206_inline_disable():
    source = """
        index = EncodedBitmapIndex(  # ebilint: disable=EBI206
            table, "v", mapping=m
        )
    """
    assert not findings_for("EBI206", source, module="tests.test_x")


# ----------------------------------------------------------------------
# EBI301 — shared-state discipline on worker-reachable paths
# ----------------------------------------------------------------------
def test_ebi301_flags_unguarded_write_on_worker_path():
    bad = """
        class C:
            def __init__(self):
                self.n = 0

            def work(self):  # ebi: worker-entry
                self.n += 1
    """
    found = findings_for("EBI301", bad, module="repro.shard.fake")
    assert len(found) == 1
    assert "'n'" in found[0].message
    assert found[0].line == 7  # the += line inside work()


def test_ebi301_accepts_lock_guarded_write():
    good = """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()
                self.n = 0

            def work(self):  # ebi: worker-entry
                with self._lock:
                    self.n += 1
    """
    assert not findings_for("EBI301", good, module="repro.shard.fake")


def test_ebi301_worker_entry_via_pool_submit():
    bad = """
        from concurrent.futures import ThreadPoolExecutor

        class C:
            def __init__(self):
                self.n = 0

            def run(self):
                with ThreadPoolExecutor() as pool:
                    pool.submit(self._task)

            def _task(self):
                self.n += 1
    """
    found = findings_for("EBI301", bad, module="repro.shard.fake")
    assert len(found) == 1
    assert "_task" in found[0].message


def test_ebi301_shared_readonly_violation_any_method():
    # a shared-readonly attribute must never be written after
    # construction, worker-reachable or not
    bad = """
        class C:
            def __init__(self):
                self.table = object()  # ebi: shared-readonly

            def rebind(self, t):
                self.table = t
    """
    found = findings_for("EBI301", bad, module="repro.index.fake")
    assert len(found) == 1
    assert "shared-readonly" in found[0].message


def test_ebi301_init_helpers_are_construction():
    good = """
        class C:
            def __init__(self):
                self.table = object()  # ebi: shared-readonly
                self._init_rest()

            def _init_rest(self):
                self.table = object()

            def work(self):  # ebi: worker-entry
                return self.table
    """
    assert not findings_for("EBI301", good, module="repro.index.fake")


def test_ebi301_thread_local_state_is_exempt():
    good = """
        class C:
            def __init__(self):
                self.scratch = []  # ebi: thread-local

            def work(self):  # ebi: worker-entry
                self.scratch = []
    """
    assert not findings_for("EBI301", good, module="repro.shard.fake")


def test_ebi301_worker_constructed_instances_are_private():
    good = """
        class Scratch:
            def __init__(self):
                self.items = []

            def add(self, x):
                self.items.append(x)

        class C:
            def work(self):  # ebi: worker-entry
                s = Scratch()
                s.add(1)
    """
    assert not findings_for("EBI301", good, module="repro.shard.fake")


def test_ebi301_inline_disable():
    source = """
        class C:
            def __init__(self):
                self.n = 0

            def work(self):  # ebi: worker-entry
                self.n += 1  # ebilint: disable=EBI301
    """
    assert not findings_for("EBI301", source, module="repro.shard.fake")


# ----------------------------------------------------------------------
# EBI302 — invalidation protocol around _data_version
# ----------------------------------------------------------------------
def test_ebi302_flags_missing_bump_on_early_return():
    bad = """
        class C:
            def __init__(self):
                self._data_version = 0
                self._rows = []  # ebi: versioned

            def add(self, x):
                self._rows.append(x)
                if x < 0:
                    return
                self._data_version += 1
    """
    found = findings_for("EBI302", bad, module="repro.index.fake")
    assert len(found) == 1
    assert found[0].line == 10  # the dirty early return


def test_ebi302_flags_missing_bump_at_fall_off_end():
    bad = """
        class C:
            def __init__(self):
                self._data_version = 0
                self._rows = []  # ebi: versioned

            def add(self, x):
                self._rows.append(x)
    """
    found = findings_for("EBI302", bad, module="repro.index.fake")
    assert len(found) == 1


def test_ebi302_try_finally_bump_covers_exception_paths():
    good = """
        class C:
            def __init__(self):
                self._data_version = 0
                self._rows = []  # ebi: versioned

            def add(self, x):
                try:
                    self._rows.append(x)
                    if x < 0:
                        raise ValueError(x)
                finally:
                    self._data_version += 1
    """
    assert not findings_for("EBI302", good, module="repro.index.fake")


def test_ebi302_flags_foreign_version_write():
    bad = """
        class Helper:
            def poke(self, index):
                index._data_version += 1
    """
    found = findings_for("EBI302", bad, module="repro.encoding.fake")
    assert len(found) == 1
    assert "another object" in found[0].message


def test_ebi302_flags_unlocked_version_read_in_locked_class():
    bad = """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()
                self._data_version = 0

            def snapshot(self):
                return self._data_version
    """
    found = findings_for("EBI302", bad, module="repro.index.fake")
    assert len(found) == 1
    assert "lock" in found[0].message.lower()


def test_ebi302_locked_version_read_is_clean():
    good = """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()
                self._data_version = 0

            def snapshot(self):
                with self._lock:
                    return self._data_version
    """
    assert not findings_for("EBI302", good, module="repro.index.fake")


# ----------------------------------------------------------------------
# EBI303 — lock hygiene
# ----------------------------------------------------------------------
def test_ebi303_flags_nonreentrant_reacquire():
    bad = """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()

            def f(self):
                with self._lock:
                    with self._lock:
                        pass
    """
    found = findings_for("EBI303", bad, module="repro.cache.fake")
    assert len(found) == 1
    assert "re-acquisition" in found[0].message


def test_ebi303_rlock_reacquire_is_clean():
    good = """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.RLock()

            def f(self):
                with self._lock:
                    with self._lock:
                        pass
    """
    assert not findings_for("EBI303", good, module="repro.cache.fake")


def test_ebi303_flags_metrics_callback_under_lock():
    bad = """
        import threading
        from repro.obs.metrics import get_registry

        class C:
            def __init__(self):
                self._lock = threading.Lock()

            def f(self):
                with self._lock:
                    get_registry().counter("x").inc()
    """
    found = findings_for("EBI303", bad, module="repro.cache.fake")
    assert any("metrics" in f.message for f in found)


def test_ebi303_flags_blocking_sleep_under_lock():
    bad = """
        import threading
        import time

        class C:
            def __init__(self):
                self._lock = threading.Lock()

            def f(self):
                with self._lock:
                    time.sleep(0.1)
    """
    found = findings_for("EBI303", bad, module="repro.cache.fake")
    assert len(found) >= 1


def test_ebi303_flags_lock_order_cycle():
    bad = """
        import threading

        class A:
            def __init__(self, other):
                self._lock = threading.Lock()
                self.other: B = other

            def outer_ab(self):
                with self._lock:
                    self.other.inner_b()

            def inner_a(self):
                with self._lock:
                    pass

        class B:
            def __init__(self, other):
                self._lock = threading.Lock()
                self.other: A = other

            def inner_b(self):
                with self._lock:
                    pass

            def outer_ba(self):
                with self._lock:
                    self.other.inner_a()
    """
    found = findings_for("EBI303", bad, module="repro.shard.fake")
    assert any("cycle" in f.message for f in found)


def test_ebi303_consistent_lock_order_is_clean():
    good = """
        import threading

        class A:
            def __init__(self, other):
                self._lock = threading.Lock()
                self.other: B = other

            def outer_ab(self):
                with self._lock:
                    self.other.inner_b()

        class B:
            def __init__(self):
                self._lock = threading.Lock()

            def inner_b(self):
                with self._lock:
                    pass
    """
    assert not findings_for("EBI303", good, module="repro.shard.fake")


# ----------------------------------------------------------------------
# EBI304 — accounting soundness in evaluator/kernel code
# ----------------------------------------------------------------------
def test_ebi304_flags_uncounted_plane_access():
    bad = """
        class K:
            def eval_block(self, matrix):
                return matrix[0]
    """
    found = findings_for("EBI304", bad, module="repro.kernels.fake")
    assert len(found) == 1
    assert "counted" in found[0].message


def test_ebi304_counter_parameter_is_compliant():
    good = """
        class K:
            def eval_block(self, matrix, counter):
                counter.record(0)
                return matrix[0]
    """
    assert not findings_for("EBI304", good, module="repro.kernels.fake")


def test_ebi304_counted_caller_covers_helper():
    good = """
        class K:
            def evaluate(self, matrix, counter):
                counter.record_accesses([0])
                return self._eval_inner(matrix)

            def _eval_inner(self, matrix):
                return matrix[0]
    """
    assert not findings_for("EBI304", good, module="repro.kernels.fake")


def test_ebi304_out_of_scope_module_ignored():
    source = """
        class K:
            def eval_block(self, matrix):
                return matrix[0]
    """
    assert not findings_for("EBI304", source, module="repro.table.fake")


def test_ebi304_flags_raw_vector_call_in_query_layer():
    bad = """
        def pick(index):
            return index.vector(0)
    """
    found = findings_for("EBI304", bad, module="repro.query.fake")
    assert len(found) == 1


# ----------------------------------------------------------------------
# --explain mode
# ----------------------------------------------------------------------
def test_cli_explain_concurrency_rule(capsys):
    assert lint_main(["--explain", "EBI301"]) == 0
    out = capsys.readouterr().out
    assert "EBI301" in out
    assert "shared" in out.lower()


def test_cli_explain_multiple_rules(capsys):
    assert lint_main(["--explain", "EBI302", "EBI303"]) == 0
    out = capsys.readouterr().out
    assert "EBI302" in out and "EBI303" in out


def test_cli_explain_unknown_rule_errors():
    with pytest.raises(SystemExit):
        lint_main(["--explain", "EBI999"])


# ----------------------------------------------------------------------
# EBI401 — durable-write protocol
# ----------------------------------------------------------------------
def test_ebi401_flags_inplace_overwrite_of_final_file():
    bad = """
        def save(path, data):
            with open(path, "w") as handle:
                handle.write(data)
    """
    found = findings_for("EBI401", bad, module="repro.database")
    assert len(found) == 1
    assert "os.replace" in found[0].message


def test_ebi401_flags_mode_keyword_and_binary_modes():
    bad = """
        def save(path, blob):
            with open(path, mode="wb") as handle:
                handle.write(blob)
    """
    found = findings_for("EBI401", bad, module="repro.storage.wal")
    assert len(found) == 1


def test_ebi401_accepts_tmp_fsync_rename_protocol():
    good = """
        import os

        def save(path, data):
            tmp = path + ".tmp"
            with open(tmp, "w") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
    """
    assert findings_for("EBI401", good, module="repro.database") == []


def test_ebi401_accepts_append_mode_and_reads():
    good = """
        def log(path, frame):
            with open(path, "ab") as handle:
                handle.write(frame)

        def read(path):
            with open(path, "rb") as handle:
                return handle.read()
    """
    assert findings_for("EBI401", good, module="repro.storage.wal") == []


def test_ebi401_scope_is_durability_critical_modules_only():
    bad = """
        def dump(path, data):
            with open(path, "w") as handle:
                handle.write(data)
    """
    assert findings_for("EBI401", bad, module="repro.bench.report") == []
