"""``ebi fsck``: invariant verification, repair, and degradation.

Covers the four audited invariants (each demonstrated on a
hand-corrupted index), the repair path (rebuild only the damaged
vectors), the planner/executor degradation loop (corrupt -> scan
fallback with accounting -> repair -> index trusted again), and the
file-level ``repro fsck`` CLI.
"""

from __future__ import annotations

import pytest

from repro.bitmap.bitvector import BitVector
from repro.cli import main as cli_main
from repro.errors import CorruptIndexError
from repro.index import serialization
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.verify import (
    ALL_INVARIANTS,
    INVARIANT_CACHE,
    INVARIANT_MAPPING,
    INVARIANT_PARTITION,
    INVARIANT_VOID,
    repair,
    verify_index,
    verify_payload,
)
from repro.query.executor import Executor
from repro.query.predicates import Equals, InList
from repro.table.catalog import Catalog
from repro.table.table import Table


def build_table(values=("a", "b", "c", "b", "a", "c", "d", "a")):
    table = Table("T", ["A"])
    for value in values:
        table.append({"A": value})
    return table


def flip_bit(index: EncodedBitmapIndex, vector: int, row: int) -> None:
    index._vectors[vector][row] = not index._vectors[vector][row]


# ----------------------------------------------------------------------
# clean indexes pass
# ----------------------------------------------------------------------
@pytest.mark.parametrize("void_mode", ["encode", "vector"])
@pytest.mark.parametrize("null_mode", ["encode", "vector"])
def test_freshly_built_index_passes(void_mode, null_mode):
    table = build_table(("a", "b", None, "b", "a", None, "d", "a"))
    index = EncodedBitmapIndex(
        table, "A", void_mode=void_mode, null_mode=null_mode
    )
    report = verify_index(index)
    assert report.ok, report.render()
    assert not index.degraded
    assert report.checked_rows == len(table)


def test_clean_after_maintenance():
    table = build_table()
    index = EncodedBitmapIndex(table, "A")
    table.attach(index)
    index.lookup(InList("A", ["a", "b"]))  # populate the cache
    table.append({"A": "b"})
    table.delete(2)
    table.update(0, "A", "c")
    report = verify_index(index)
    assert report.ok, report.render()


def test_fixture_tables_pass(abc_table, sales_table):
    for table, column in (
        (abc_table, "A"),
        (sales_table, "region"),
        (sales_table, "product"),
    ):
        index = EncodedBitmapIndex(table, column)
        report = verify_index(index)
        assert report.ok, report.render()


# ----------------------------------------------------------------------
# the four invariants, each on a hand-corrupted index
# ----------------------------------------------------------------------
def test_detects_mapping_inconsistency():
    table = build_table()
    index = EncodedBitmapIndex(table, "A")
    index._vectors.pop()  # width no longer matches the vector count
    report = verify_index(index)
    assert INVARIANT_MAPPING in report.invariants_violated()
    assert index.degraded


def test_detects_wrong_length_vector():
    table = build_table()
    index = EncodedBitmapIndex(table, "A")
    index._vectors[0] = BitVector(len(table) + 5)
    report = verify_index(index)
    assert INVARIANT_MAPPING in report.invariants_violated()


def test_detects_void_code_violation():
    table = build_table()
    index = EncodedBitmapIndex(table, "A", void_mode="encode")
    table.attach(index)
    table.delete(3)
    assert verify_index(index).ok
    # Hand a deleted row a non-zero code: Theorem 2.1 broken.
    flip_bit(index, 0, 3)
    report = verify_index(index)
    assert INVARIANT_VOID in report.invariants_violated()
    assert index.degraded


def test_detects_existence_vector_drift():
    table = build_table()
    index = EncodedBitmapIndex(table, "A", void_mode="vector")
    table.attach(index)
    table.delete(2)
    assert verify_index(index).ok
    exists = index._exists_vector
    exists[2] = True  # resurrect the deleted row in the vector
    report = verify_index(index)
    assert INVARIANT_VOID in report.invariants_violated()


def test_detects_row_partition_violation():
    table = build_table()
    index = EncodedBitmapIndex(table, "A")
    flip_bit(index, 1, 4)  # row 4 now stores the wrong code
    report = verify_index(index)
    assert INVARIANT_PARTITION in report.invariants_violated()
    assert index.degraded


def test_detects_stale_reduction_cache():
    table = build_table()
    index = EncodedBitmapIndex(table, "A")
    index.lookup(InList("A", ["a", "b"]))
    assert index._reduction_cache
    # Re-key a cached reduction under a different code set: the
    # function no longer covers what the key claims.
    ((codes, width), function) = next(
        iter(index._reduction_cache.items())
    )
    other = tuple(
        c for c in index.mapping.codes() if c not in codes
    )[:1]
    index._reduction_cache[(other, width)] = function
    report = verify_index(index)
    assert INVARIANT_CACHE in report.invariants_violated()


def test_all_four_invariants_detectable():
    """Belt and braces: the corruption battery above spans all four."""
    observed = set()
    for corrupt in (
        test_detects_mapping_inconsistency,
        test_detects_void_code_violation,
        test_detects_row_partition_violation,
        test_detects_stale_reduction_cache,
    ):
        corrupt()
    # Each test asserted its own invariant; ALL_INVARIANTS names them.
    observed = {
        INVARIANT_MAPPING,
        INVARIANT_VOID,
        INVARIANT_PARTITION,
        INVARIANT_CACHE,
    }
    assert observed == set(ALL_INVARIANTS)


# ----------------------------------------------------------------------
# repair
# ----------------------------------------------------------------------
def test_repair_rebuilds_only_damaged_vectors():
    table = build_table()
    index = EncodedBitmapIndex(table, "A")
    pristine = [
        index.vector(i).copy() if hasattr(index.vector(i), "copy")
        else index.vector(i)
        for i in range(index.width)
    ]
    untouched = [
        index._vectors[i] for i in range(index.width)
    ]
    flip_bit(index, 1, 4)
    verify_index(index)
    assert index.degraded
    repaired = repair(index)
    assert repaired == [1]
    assert not index.degraded
    assert verify_index(index).ok
    # Vectors that were never damaged are the same objects still.
    for i in (0, 2):
        assert index._vectors[i] is untouched[i]


def test_repair_truncates_extra_vectors():
    table = build_table()
    index = EncodedBitmapIndex(table, "A")
    index._vectors.append(BitVector(len(table)))
    repair(index)
    assert len(index._vectors) == index.width
    assert verify_index(index).ok


def test_repair_prunes_stale_cache_entries():
    table = build_table()
    index = EncodedBitmapIndex(table, "A")
    index.lookup(InList("A", ["a", "b"]))
    ((codes, width), function) = next(
        iter(index._reduction_cache.items())
    )
    bogus_key = ((1 << width) - 1,), width
    index._reduction_cache[bogus_key] = function
    repair(index)
    assert bogus_key not in index._reduction_cache
    assert verify_index(index).ok


def test_repair_refuses_corrupt_mapping():
    table = build_table()
    index = EncodedBitmapIndex(table, "A")
    # A value the mapping has never seen: unrepairable from data.
    table.column("A")._values[0] = "zebra"
    with pytest.raises(CorruptIndexError, match="mapping"):
        repair(index)


# ----------------------------------------------------------------------
# graceful degradation: planner + executor
# ----------------------------------------------------------------------
def _catalog(table, index):
    catalog = Catalog()
    catalog.register_table(table)
    catalog.register_index(index)
    return catalog


def test_degraded_index_falls_back_to_scan_and_recovers():
    table = build_table()
    index = EncodedBitmapIndex(table, "A")
    executor = Executor(_catalog(table, index))
    predicate = Equals("A", "a")
    expected = {0, 4, 7}

    healthy = executor.select(table, predicate)
    assert not healthy.used_scan and not healthy.degraded
    assert set(healthy.row_ids()) == expected

    flip_bit(index, 0, 0)
    verify_index(index)
    degraded = executor.select(table, predicate)
    assert degraded.used_scan and degraded.degraded
    # The scan still answers correctly despite the broken index.
    assert set(degraded.row_ids()) == expected

    repair(index)
    recovered = executor.select(table, predicate)
    assert not recovered.used_scan and not recovered.degraded
    assert set(recovered.row_ids()) == expected


def test_missing_index_scan_is_not_flagged_degraded():
    table = build_table()
    catalog = Catalog()
    catalog.register_table(table)
    executor = Executor(catalog)
    result = executor.select(table, Equals("A", "a"))
    assert result.used_scan
    assert not result.degraded


def test_plan_describe_names_degraded_columns():
    table = build_table()
    index = EncodedBitmapIndex(table, "A")
    index.degraded = True
    executor = Executor(_catalog(table, index))
    plan = executor.planner.plan(table, Equals("A", "a"))
    assert plan.fallback_scan
    assert plan.degraded_columns == ["A"]
    assert "degraded" in plan.describe()


# ----------------------------------------------------------------------
# file-level fsck + CLI
# ----------------------------------------------------------------------
def test_verify_payload_pass_and_fail():
    table = build_table()
    index = EncodedBitmapIndex(table, "A")
    payload = serialization.dumps(index)
    good = verify_payload(payload, path="good")
    assert good.ok
    assert good.rows == len(table)
    assert good.vectors == index.width
    mutated = bytearray(payload)
    mutated[-1] ^= 0x01
    bad = verify_payload(bytes(mutated), path="bad")
    assert not bad.ok
    assert isinstance(bad.error, CorruptIndexError)
    assert "FAIL" in bad.render()


def test_cli_fsck(tmp_path, capsys):
    table = build_table()
    index = EncodedBitmapIndex(table, "A")
    good = tmp_path / "good.ebi"
    serialization.save(index, str(good))
    payload = bytearray(serialization.dumps(index))
    payload[len(payload) // 2] ^= 0x20
    bad = tmp_path / "bad.ebi"
    bad.write_bytes(bytes(payload))

    assert cli_main(["fsck", str(good), "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out and "column: 'A'" in out

    assert cli_main(["fsck", str(good), str(bad)]) == 1
    out = capsys.readouterr().out
    assert "1/2 index file(s) passed fsck" in out

    assert cli_main(["fsck", str(tmp_path / "missing.ebi")]) == 1
    assert "cannot read" in capsys.readouterr().out
