"""Unit tests for repro.query.optimizer (footnote 3 don't-care
optimisation)."""

import pytest

from repro.boolean.reduction import reduce_values
from repro.query.optimizer import (
    cheapest_variant,
    dont_care_variants,
    normalize_predicate,
    operation_count,
)
from repro.query.predicates import (
    AndPredicate,
    Equals,
    InList,
    NotPredicate,
    OrPredicate,
    Range,
)


class TestDontCareVariants:
    def test_empty_subset_first(self):
        variants = list(dont_care_variants([1, 2], 2, [3]))
        assert variants[0][0] == ()

    def test_all_subsets_enumerated(self):
        variants = list(dont_care_variants([1], 2, [2, 3]))
        subsets = {subset for subset, _ in variants}
        assert subsets == {(), (2,), (3,), (2, 3)}

    def test_on_codes_removed_from_dc(self):
        variants = list(dont_care_variants([1, 2], 2, [1, 2, 3]))
        for subset, _ in variants:
            assert 1 not in subset
            assert 2 not in subset

    def test_variants_all_cover_on_set(self):
        for _, function in dont_care_variants([1, 2], 3, [0, 7]):
            assert function.evaluate_value(1)
            assert function.evaluate_value(2)


class TestOperationCount:
    def test_constant(self):
        assert operation_count(reduce_values([], 2)) == 0
        assert operation_count(reduce_values(range(4), 2)) == 0

    def test_counts_literals_and_negations(self):
        # single minterm B1'B0: 1 AND + 1 NOT
        function = reduce_values([0b01], 2)
        assert operation_count(function) == 2

    def test_more_terms_cost_more(self):
        one_term = reduce_values([0b00, 0b01], 2)  # B1'
        two_terms = reduce_values([0b00, 0b11], 2)  # two minterms
        assert operation_count(one_term) < operation_count(two_terms)


class TestCheapestVariant:
    def test_paper_footnote3(self):
        """Selecting b=01, c=10 with don't-care 11: f_b + f_c needs
        both vectors either way, but the don't-care variant (B1 + B0)
        uses fewer operations than the XOR-shaped exact one."""
        exact = reduce_values([0b01, 0b10], 2)
        best = cheapest_variant([0b01, 0b10], 2, [0b11])
        assert best.vector_count() <= exact.vector_count()
        assert operation_count(best) <= operation_count(exact)
        # the cheapest variant is exactly B1 + B0
        assert operation_count(best) == 1
        for value, expected in [(0b00, False), (0b01, True),
                                (0b10, True), (0b11, True)]:
            assert best.evaluate_value(value) == expected

    def test_dont_cares_reduce_vector_count(self):
        # ON {0,1,2}, DC {3}: with DC the function is constant true
        best = cheapest_variant([0, 1, 2], 2, [3])
        assert best.is_true
        assert best.vector_count() == 0

    def test_no_dont_cares(self):
        best = cheapest_variant([0b00, 0b01], 2, [])
        assert best.vector_count() == 1

    def test_never_covers_off_codes(self):
        best = cheapest_variant([1], 3, [0])
        # codes 2..7 are OFF and must stay excluded
        for value in range(2, 8):
            assert not best.evaluate_value(value)


class TestNormalizePredicate:
    def test_or_of_equals_becomes_in_list(self):
        result = normalize_predicate(
            Equals("a", 1) | Equals("a", 2) | Equals("a", 3)
        )
        assert result == InList("a", [1, 2, 3])

    def test_mixed_equals_and_in_list_union(self):
        result = normalize_predicate(
            InList("a", [1, 2]) | Equals("a", 2) | InList("a", [3])
        )
        assert result == InList("a", [1, 2, 3])

    def test_value_order_is_first_occurrence(self):
        left = normalize_predicate(Equals("a", 2) | Equals("a", 1))
        right = normalize_predicate(InList("a", [2, 1]))
        assert left == right == InList("a", [2, 1])

    def test_single_value_union_collapses_to_equals(self):
        result = normalize_predicate(Equals("a", 1) | InList("a", [1]))
        assert result == Equals("a", 1)

    def test_other_columns_kept_as_operands(self):
        result = normalize_predicate(
            Equals("a", 1) | Equals("b", 2) | Equals("a", 3)
        )
        assert isinstance(result, OrPredicate)
        assert set(result.operands) == {
            InList("a", [1, 3]),
            Equals("b", 2),
        }

    def test_non_value_leaves_untouched(self):
        ranged = Range("a", 1, 5)
        result = normalize_predicate(Equals("a", 9) | ranged)
        assert isinstance(result, OrPredicate)
        assert ranged in result.operands

    def test_recurses_through_and_and_not(self):
        inner = Equals("a", 1) | Equals("a", 2)
        result = normalize_predicate(~(inner & Equals("b", 3)))
        assert result == NotPredicate(
            AndPredicate((InList("a", [1, 2]), Equals("b", 3)))
        )

    def test_semantics_preserved(self):
        predicate = (
            Equals("a", 1) | Equals("a", 2) | Range("b", 0, 5)
        ) & ~Equals("c", "x")
        normalized = normalize_predicate(predicate)
        rows = [
            {"a": a, "b": b, "c": c}
            for a in (0, 1, 2)
            for b in (None, 3, 9)
            for c in ("x", "y")
        ]
        for row in rows:
            assert normalized.matches(row) == predicate.matches(row)
