"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath(
        "examples"
    ).glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_example_count():
    """The deliverable requires at least three runnable examples."""
    assert len(EXAMPLES) >= 3
