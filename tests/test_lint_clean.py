"""The CI gate as a test: the committed tree must lint clean.

ebilint always runs (it ships with the repo); ruff and mypy are part
of the ``lint`` optional-dependency group and are skipped when not
installed, so the core suite stays runnable from ``dependencies``
alone.  CI installs the group and runs all three.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import all_rules, lint_paths, lint_source

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
TESTS = REPO_ROOT / "tests"


def test_ebilint_clean_on_committed_tree():
    baseline = REPO_ROOT / ".ebilint-baseline.json"
    report = lint_paths(
        [SRC, TESTS],
        baseline_path=baseline if baseline.exists() else None,
    )
    assert report.files_checked > 0
    details = "\n".join(f.render() for f in report.findings)
    assert report.exit_code == 0, (
        f"ebilint found new violations:\n{details}\n"
        f"stale baseline entries: {report.stale_baseline}"
    )


def test_every_shipped_rule_fails_a_violating_fixture():
    """Guard against rules that silently stop matching anything.

    Each rule must produce at least one finding on its own minimal
    violating fixture (within a module in the rule's scope), so a
    clean run on src/ means the tree is clean — not that the rules
    went blind.
    """
    fixtures = {
        "EBI101": (
            "def scan(nbits):\n    for j in range(nbits):\n        pass\n",
            "repro.bitmap.fake",
        ),
        "EBI102": (
            "def run(terms, nbits):\n"
            "    for t in terms:\n"
            "        v = BitVector.zeros(nbits)\n",
            "repro.boolean.evaluator",
        ),
        "EBI103": (
            "def run(f, s, n):\n    return evaluate_dnf(f, s, n)\n",
            "repro.query.fake",
        ),
        "EBI104": (
            "def pop(x):\n    return bin(x).count(\"1\")\n",
            "repro.encoding.fake",
        ),
        "EBI105": (
            "def scan(vector):\n"
            "    for bit in vector:\n"
            "        pass\n",
            "repro.aggregate.fake",
        ),
        "EBI106": (
            "def scan(runs):\n"
            "    for i in range(4):\n"
            "        v = runs.to_bitvector()\n",
            "repro.kernels.fake",
        ),
        "EBI108": (
            "def scan(mapped_planes, queries):\n"
            "    for q in queries:\n"
            "        use(mapped_planes.materialize(), q)\n",
            "repro.kernels.fake",
        ),
        "EBI201": (
            "def build(t):\n    t.assign(\"red\", 0)\n",
            "repro.encoding.fake",
        ),
        "EBI202": (
            "def enc(v) -> MappingTable:\n"
            "    return MappingTable.from_values(v)\n",
            "repro.encoding.fake",
        ),
        "EBI203": (
            "def plan():\n    return And((Var(0), Var(1)))\n",
            "repro.query.fake",
        ),
        "EBI204": (
            "def f(seen=[]):\n    pass\n",
            "repro.query.fake",
        ),
        "EBI205": (
            "def f(x):\n"
            "    raise ValueError(\"bad argument\")\n",
            "repro.storage.fake",
        ),
        "EBI207": (
            "r = db.query(\"sales\", predicate, workers=2)\n",
            "repro.query.fake",
        ),
        "EBI206": (
            "i = EncodedBitmapIndex(t, \"v\", mapping=m)\n",
            "repro.index.fake",
        ),
        "EBI301": (
            "class C:\n"
            "    def __init__(self):\n"
            "        self.n = 0\n"
            "    def work(self):  # ebi: worker-entry\n"
            "        self.n += 1\n",
            "repro.shard.fake",
        ),
        "EBI302": (
            "class C:\n"
            "    def __init__(self):\n"
            "        self._data_version = 0\n"
            "        self._rows = []  # ebi: versioned\n"
            "    def add(self, x):\n"
            "        self._rows.append(x)\n",
            "repro.index.fake",
        ),
        "EBI303": (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def f(self):\n"
            "        with self._lock:\n"
            "            with self._lock:\n"
            "                pass\n",
            "repro.cache.fake",
        ),
        "EBI304": (
            "class K:\n"
            "    def eval_block(self, matrix):\n"
            "        return matrix[0]\n",
            "repro.kernels.fake",
        ),
        "EBI401": (
            "def save(path, data):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(data)\n",
            "repro.database",
        ),
    }
    missing_fixture = [
        rule.id for rule in all_rules() if rule.id not in fixtures
    ]
    assert not missing_fixture, (
        f"rules without a violation fixture: {missing_fixture}"
    )
    for rule_id, (source, module) in fixtures.items():
        findings = lint_source(source, path="<fixture>", module=module)
        assert any(f.rule == rule_id for f in findings), (
            f"{rule_id} no longer fires on its violating fixture"
        )


def _run(cmd):
    return subprocess.run(
        cmd, cwd=REPO_ROOT, capture_output=True, text=True
    )


def test_ruff_clean():
    if shutil.which("ruff") is None:
        pytest.skip("ruff not installed (pip install -e .[lint])")
    proc = _run(["ruff", "check", "src", "tests"])
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_mypy_clean():
    try:
        import mypy  # noqa: F401
    except ImportError:
        pytest.skip("mypy not installed (pip install -e .[lint])")
    proc = _run([sys.executable, "-m", "mypy", "src/repro"])
    assert proc.returncode == 0, proc.stdout + proc.stderr
