"""Unit tests for repro.encoding.hierarchy (Section 2.3, Figure 5)."""

import pytest

from repro.encoding.heuristics import encoding_cost
from repro.encoding.hierarchy import Hierarchy, hierarchy_encoding
from repro.errors import SchemaError

# The paper's SALESPOINT example (Figure 5a): 12 branches, 5 companies,
# 3 alliances, with m:N memberships.
BRANCHES = list(range(1, 13))
COMPANIES = {
    "a": [1, 2, 3, 4],
    "b": [5, 6],
    "c": [7, 8],
    "d": [3, 4, 9, 10],
    "e": [9, 10, 11, 12],
}
ALLIANCES = {"X": ["a", "b", "c"], "Y": ["c", "d"], "Z": ["d", "e"]}


@pytest.fixture
def salespoint():
    return Hierarchy(
        BRANCHES, {"company": COMPANIES, "alliance": ALLIANCES}
    )


class TestHierarchy:
    def test_levels(self, salespoint):
        assert salespoint.level_names == ["company", "alliance"]
        assert set(salespoint.elements("company")) == set("abcde")
        assert set(salespoint.elements("alliance")) == set("XYZ")

    def test_direct_members(self, salespoint):
        assert salespoint.members("company", "b") == {5, 6}
        assert salespoint.members("alliance", "Y") == {"c", "d"}

    def test_base_members_transitive(self, salespoint):
        """Alliance X = companies {a,b,c} = branches {1..8}."""
        assert salespoint.base_members("alliance", "X") == set(range(1, 9))

    def test_base_members_mn_overlap(self, salespoint):
        """m:N: branches 3,4 belong to both a and d; Z covers d,e."""
        assert salespoint.base_members("alliance", "Z") == {
            3, 4, 9, 10, 11, 12,
        }

    def test_base_members_of_company_level(self, salespoint):
        assert salespoint.base_members("company", "d") == {3, 4, 9, 10}

    def test_unknown_level(self, salespoint):
        with pytest.raises(SchemaError):
            salespoint.members("country", "x")
        with pytest.raises(SchemaError):
            salespoint.base_members("country", "x")

    def test_unknown_element(self, salespoint):
        with pytest.raises(SchemaError):
            salespoint.members("company", "zz")

    def test_bad_member_reference_rejected(self):
        with pytest.raises(SchemaError):
            Hierarchy([1, 2], {"level": {"g": [99]}})

    def test_selection_predicates(self, salespoint):
        predicates = salespoint.selection_predicates()
        # one per company + one per alliance
        assert len(predicates) == 5 + 3
        assert sorted(map(len, predicates)) == sorted(
            [4, 2, 2, 4, 4, 8, 6, 6]
        )


class TestHierarchyEncoding:
    def test_produces_one_to_one_mapping(self, salespoint):
        mapping = hierarchy_encoding(salespoint, seed=0)
        codes = [mapping.encode(b) for b in BRANCHES]
        assert len(set(codes)) == 12
        assert mapping.width == 4  # ceil(log2 12)

    def test_cheaper_than_sequential(self, salespoint):
        """The hierarchy encoding must beat the naive sequential one
        on the hierarchy predicate set."""
        from repro.encoding.heuristics import sequential_encoding

        predicates = salespoint.selection_predicates()
        tuned = hierarchy_encoding(salespoint, seed=0)
        naive = sequential_encoding(BRANCHES, reserve_void_zero=False)
        assert encoding_cost(tuned, predicates) <= encoding_cost(
            naive, predicates
        )

    def test_alliance_selection_cost_reasonable(self, salespoint):
        """Figure 5(b) achieves 1 vector for 'alliance = X'; our
        heuristic must stay within the worst case of 4 and generally
        do much better across the predicate set."""
        mapping = hierarchy_encoding(salespoint, seed=0)
        predicates = salespoint.selection_predicates()
        total = encoding_cost(mapping, predicates)
        worst = 4 * len(predicates)
        assert total < worst * 0.75


class TestPaperFigure5Encoding:
    """Pin the paper's own Figure 5(b) mapping and verify its claim."""

    FIG5B = {
        1: 0b0000, 2: 0b0001, 3: 0b0100, 4: 0b0101,
        5: 0b0010, 6: 0b0011, 7: 0b0110, 8: 0b0111,
        9: 0b1100, 10: 0b1101, 11: 0b1111, 12: 0b1110,
    }

    def test_alliance_x_needs_one_vector(self, salespoint):
        """'For selection alliance = X, only one bit vector is
        accessed' (paper, Section 2.3)."""
        from repro.boolean.reduction import reduce_values

        branches = sorted(salespoint.base_members("alliance", "X"))
        codes = [self.FIG5B[b] for b in branches]
        dont_cares = [
            c for c in range(16) if c not in self.FIG5B.values()
        ]
        reduced = reduce_values(codes, 4, dont_cares=dont_cares)
        assert reduced.vector_count() == 1
        assert reduced.to_string() == "B3'"
