"""Deterministic crash matrix: kill save/ingest/compaction anywhere.

One scripted workload (save, batched appends, an update, a delete, a
compaction, a second save) runs once per registered crash point with a
:class:`~repro.faults.crash.CrashSchedule` armed at that point.  After
the simulated kill, :meth:`repro.database.Database.recover` must bring
the directory back to a consistent state:

* fsck passes on every index;
* every *acknowledged* row (its ingest call returned before the crash)
  is present with its values;
* query results are bit-identical — rows and ``c_e`` — to a fresh
  index built from scratch over the recovered table.

The matrix is exhaustive over crash points and entirely deterministic:
no threads, no timing, each point fires exactly once.
"""

from __future__ import annotations

import pytest

from repro.database import Database
from repro.faults.crash import (
    SimulatedCrash,
    crash_schedule,
    registered_crash_points,
)
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.query.predicates import Equals

PRODUCTS = ["ale", "bock", "cider", "dunkel"]


def build(directory: str) -> Database:
    db = Database()
    db.create_table(
        "sales",
        {
            "product": [PRODUCTS[i % 4] for i in range(40)],
            "qty": list(range(40)),
        },
    )
    db.create_index("sales", "product")
    db.save(directory)
    return db


def workload(db: Database, acked: list) -> None:
    """The scripted mutations; records each ack as it happens."""
    rows_a = [
        {"product": PRODUCTS[i % 4], "qty": 100 + i} for i in range(8)
    ]
    ids = db.append_rows("sales", rows_a)
    acked.extend(zip(ids, rows_a))
    db.update("sales", ids[0], "qty", 999)
    acked[-8] = (ids[0], {**rows_a[0], "qty": 999})
    db.delete("sales", ids[1])
    acked.pop(-7)
    db.compact()
    rows_b = [
        {"product": PRODUCTS[(i + 1) % 4], "qty": 200 + i}
        for i in range(4)
    ]
    ids_b = db.append_rows("sales", rows_b)
    acked.extend(zip(ids_b, rows_b))
    db.save(db._directory)


@pytest.mark.parametrize("point", registered_crash_points())
def test_crash_point_recovers_consistent(point, tmp_path):
    directory = str(tmp_path / "db")
    db = build(directory)
    acked: list = []
    fired = False
    try:
        with crash_schedule(point) as schedule:
            workload(db, acked)
    except SimulatedCrash as crash:
        assert crash.point == point
        fired = True
    # The workload is built to pass through every registered point, so
    # an unfired schedule means matrix coverage silently rotted.
    assert fired and schedule.fired, f"{point} never fired"

    recovered = Database.recover(directory)

    # 1. fsck: every index internally consistent.
    reports = recovered.fsck()
    assert reports, "expected at least one audited index"
    for label, report in reports.items():
        assert report.ok, f"fsck failed for {label}: {report}"

    # 2. zero acknowledged-row loss, with the acknowledged values.
    table = recovered.table("sales")
    for row_id, row in acked:
        assert row_id < len(table), (point, row_id)
        assert not table.is_void(row_id)
        got = table.row(row_id)
        assert got == row, (point, row_id, got, row)

    # 3. bit-identical retrieval vs a from-scratch rebuild: same rows,
    # same c_e, for every domain value.
    index = recovered.catalog.indexes_on("sales", "product")[0]
    rebuilt = EncodedBitmapIndex(
        table, "product", encoding=index.mapping
    )
    for product in PRODUCTS:
        expected = rebuilt.lookup(Equals("product", product))
        actual = index.lookup(Equals("product", product))
        assert list(actual) == list(expected), (point, product)
        assert (
            index.last_cost.vectors_accessed
            == rebuilt.last_cost.vectors_accessed
        ), (point, product)


def test_crash_matrix_covers_save_ingest_and_compaction():
    """The registry names points in all three subsystems (so the
    matrix cannot silently shrink)."""
    points = registered_crash_points()
    assert any(p.startswith("database.save.") for p in points)
    assert any(p.startswith("database.ingest.") for p in points)
    assert any(p.startswith("index.compact.") for p in points)
    assert len(points) >= 10


def test_double_crash_double_recover(tmp_path):
    """Recovery composes: crash, recover, crash again, recover again."""
    directory = str(tmp_path / "db")
    db = build(directory)
    try:
        with crash_schedule("database.ingest.applied"):
            db.append("sales", {"product": "ale", "qty": 500})
    except SimulatedCrash:
        pass
    db2 = Database.recover(directory)
    assert len(db2.table("sales")) == 41
    try:
        with crash_schedule("database.save.post-rename"):
            db2.save(directory)
    except SimulatedCrash:
        pass
    db3 = Database.recover(directory)
    assert len(db3.table("sales")) == 41
    for report in db3.fsck().values():
        assert report.ok
