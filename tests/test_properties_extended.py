"""Extended property-based tests: index/aggregate/encoding invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregate.sums import sum_bitsliced, sum_encoded
from repro.boolean.quine_mccluskey import prime_implicants
from repro.boolean.petrick import minimal_cover
from repro.encoding.heuristics import encode_for_predicates
from repro.encoding.mapping import VOID
from repro.index.bitsliced import BitSlicedIndex
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.query.predicates import Range
from repro.table.table import Table


def _build_table(values):
    table = Table("t", ["v"])
    for value in values:
        table.append({"v": value})
    return table


class TestBitSlicedProperties:
    @given(
        st.lists(st.integers(0, 60), min_size=1, max_size=150),
        st.integers(0, 60),
        st.integers(0, 60),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_lookup_equals_scan(self, values, a, b):
        lo, hi = min(a, b), max(a, b)
        table = _build_table(values)
        index = BitSlicedIndex(table, "v")
        predicate = Range("v", lo, hi)
        got = sorted(index.lookup(predicate).indices().tolist())
        want = [
            row_id
            for row_id, value in enumerate(values)
            if lo <= value <= hi
        ]
        assert got == want

    @given(st.lists(st.integers(0, 40), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_sum_equals_python_sum(self, values):
        table = _build_table(values)
        sliced = BitSlicedIndex(table, "v")
        encoded = EncodedBitmapIndex(table, "v")
        assert sum_bitsliced(sliced) == sum(values)
        assert sum_encoded(encoded) == sum(values)


class TestCoverMinimality:
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=8,
                    unique=True))
    @settings(max_examples=60, deadline=None)
    def test_cover_is_globally_minimal_width3(self, on):
        """At width 3 we can brute-force the true minimum cover size
        and confirm QM + Petrick matches it."""
        from itertools import combinations

        primes = prime_implicants(on, 3)
        cover = minimal_cover(primes, on)

        def is_cover(subset):
            return all(
                any(primes[i].covers(v) for i in subset) for v in on
            )

        best = None
        for size in range(1, len(primes) + 1):
            if any(
                is_cover(subset)
                for subset in combinations(range(len(primes)), size)
            ):
                best = size
                break
        assert len(cover) == best


class TestEncodingSearchProperties:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_encoding_is_bijective(self, data):
        size = data.draw(st.integers(2, 12))
        domain = [f"v{i}" for i in range(size)]
        n_predicates = data.draw(st.integers(0, 3))
        predicates = []
        for _ in range(n_predicates):
            subset = data.draw(
                st.lists(
                    st.sampled_from(domain),
                    min_size=2,
                    max_size=size,
                    unique=True,
                )
            )
            predicates.append(subset)
        mapping = encode_for_predicates(
            domain, predicates, local_search_steps=20, seed=0
        )
        codes = [mapping.encode(v) for v in domain]
        assert len(set(codes)) == size
        assert mapping.encode(VOID) == 0
        assert 0 not in codes


class TestIndexAgreementProperty:
    @given(
        st.lists(st.integers(0, 25), min_size=1, max_size=120),
        st.integers(0, 25),
        st.integers(0, 25),
    )
    @settings(max_examples=30, deadline=None)
    def test_simple_and_encoded_always_agree(self, values, a, b):
        lo, hi = min(a, b), max(a, b)
        table = _build_table(values)
        simple = SimpleBitmapIndex(table, "v")
        encoded = EncodedBitmapIndex(table, "v")
        predicate = Range("v", lo, hi)
        assert simple.lookup(predicate) == encoded.lookup(predicate)
