"""Seeded interleaving stress tests for the concurrency discipline.

The static rules (EBI301-304) prove lock discipline about code the
analyzer can see; these tests check the same properties dynamically:
locks are swapped for :class:`repro.lint.sanitizer.InstrumentedLock`
wrappers that record per-thread lock nesting, and workloads run under
:func:`repro.lint.sanitizer.run_stress` with *seeded* micro-delay
jitter — every seed replays the same interleaving pressure, so a
failure here reproduces instead of flaking.

Two production scenarios are swept across 50 seeds each:

* cache stampede — several threads hammer one shared
  :class:`~repro.cache.LRUCache` through ``get_or_create``;
* write-vs-query — writer threads update an indexed column while
  reader threads run selections on the same :class:`~repro.Database`,
  exercising the ``_data_version`` invalidation protocol end to end.
"""

import random
import threading
import time

from repro.cache import LRUCache
from repro.database import Database
from repro.lint.sanitizer import (
    InstrumentedLock,
    LockOrderRecorder,
    instrument,
    make_jitter,
    run_stress,
)
from repro.query.predicates import Equals

SEEDS = range(50)


# ---------------------------------------------------------------------
# sanitizer self-tests: the harness must detect what it claims to
# ---------------------------------------------------------------------
class _TwoLocks:
    def __init__(self):
        self.a = threading.Lock()
        self.b = threading.Lock()


def test_sanitizer_detects_lock_order_inversion():
    """Nesting A->B and B->A (even sequentially) is reported."""
    rec = LockOrderRecorder()
    obj = _TwoLocks()
    lock_a = instrument(obj, "a", recorder=rec, name="A")
    lock_b = instrument(obj, "b", recorder=rec, name="B")

    def workload(tid, i):
        # one thread, both orders: records the cycle without ever
        # actually deadlocking
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass

    report = run_stress(
        workload, threads=1, iterations=2, seed=1, recorder=rec
    )
    assert report.inversions == [("A", "B")]
    assert not report.ok


def test_sanitizer_consistent_order_is_clean():
    rec = LockOrderRecorder()
    obj = _TwoLocks()
    lock_a = instrument(obj, "a", recorder=rec, name="A")
    lock_b = instrument(obj, "b", recorder=rec, name="B")

    def workload(tid, i):
        with lock_a:
            with lock_b:
                pass

    report = run_stress(
        workload, threads=2, iterations=5, seed=2, recorder=rec
    )
    assert report.ok, report.render()
    assert report.inversions == []


def test_sanitizer_counts_contended_acquisitions():
    rec = LockOrderRecorder()
    lock = InstrumentedLock("L", rec)
    assert lock.acquire()
    released = threading.Event()

    def contender():
        lock.acquire()  # probe fails -> one lock_wait, then blocks
        lock.release()
        released.set()

    thread = threading.Thread(target=contender)
    thread.start()
    deadline = time.monotonic() + 5.0
    while rec.lock_waits < 1 and time.monotonic() < deadline:
        time.sleep(0.001)
    lock.release()
    thread.join(timeout=5.0)
    assert released.is_set()
    assert rec.lock_waits == 1


def test_sanitizer_preserves_rlock_reentrancy():
    class Owner:
        def __init__(self):
            self._lock = threading.RLock()

    rec = LockOrderRecorder()
    owner = Owner()
    lock = instrument(owner, recorder=rec, name="R")
    with lock:
        with lock:  # would deadlock if reentrancy were lost
            pass
    assert rec.inversions() == []


def test_instrument_is_idempotent():
    rec = LockOrderRecorder()
    cache = LRUCache(maxsize=2)
    first = instrument(cache, recorder=rec)
    second = instrument(cache, recorder=rec)
    assert first is second


# ---------------------------------------------------------------------
# scenario 1: cache stampede
# ---------------------------------------------------------------------
def test_cache_stampede_seeded_interleavings():
    """4 threads x 10 ops through get_or_create, 50 seeds.

    Invariants: every caller sees the right value, the hit/miss
    ledger stays exactly one entry per ``get``, and the sanitizer
    sees no lock-order inversion.
    """
    for seed in SEEDS:
        rec = LockOrderRecorder()
        cache = LRUCache(maxsize=8)
        instrument(
            cache, recorder=rec, jitter=make_jitter(seed)
        )

        def workload(tid, i, cache=cache):
            key = (3 * tid + i) % 12
            value = cache.get_or_create(key, lambda: key * 2)
            assert value == key * 2

        report = run_stress(
            workload,
            threads=4,
            iterations=10,
            seed=seed,
            recorder=rec,
        )
        assert report.ok, report.render()
        # one hit-or-miss per get(); get_or_create calls get exactly
        # once per workload op
        assert cache.hits + cache.misses == 4 * 10, report.render()


# ---------------------------------------------------------------------
# scenario 2: concurrent writes vs queries on the Database facade
# ---------------------------------------------------------------------
def _make_db(seed):
    rng = random.Random(seed)
    db = Database()
    db.create_table(
        "sales",
        {
            "product": [rng.randrange(8) for _ in range(96)],
            "qty": [rng.randrange(100) for _ in range(96)],
        },
        partitions=2,
    )
    db.create_index("sales", "product")
    return db


def _instrument_db(db, rec, jitter):
    """Wrap every index lock in the database with the sanitizer."""
    for index in db.catalog.all_indexes():
        instrument(
            index,
            recorder=rec,
            name=f"{type(index).__name__}#{id(index):x}",
            jitter=jitter,
        )
        for n, child in enumerate(getattr(index, "children", [])):
            instrument(
                child,
                recorder=rec,
                name=f"child{n}",
                jitter=jitter,
            )


def test_database_write_vs_query_seeded_interleavings():
    """Writers update an indexed column while readers run queries.

    The row count stays constant (updates only — appends would make
    result-length mismatches legitimate), so every concurrently
    returned row id must be in range, and once writers quiesce a
    final query must agree bit-for-bit with a brute-force scan.
    """
    for seed in SEEDS:
        rng = random.Random(seed)
        db = _make_db(seed)
        rec = LockOrderRecorder()
        _instrument_db(db, rec, make_jitter(seed))
        table = db.table("sales")
        nrows = len(table)

        def workload(tid, i, db=db, table=table, rng_seed=seed):
            rng = random.Random(f"{rng_seed}:{tid}:{i}")
            if tid % 2 == 0:
                # writer: remap one row's product value (the index
                # must bump _data_version and invalidate caches)
                row_id = rng.randrange(len(table))
                table.update(row_id, "product", rng.randrange(8))
            else:
                # reader: the result must be internally consistent
                # even mid-update
                result = db.query(
                    "sales", Equals("product", rng.randrange(8))
                )
                for row_id in result.row_ids():
                    assert 0 <= row_id < len(table)

        report = run_stress(
            workload, threads=4, iterations=6, seed=seed, recorder=rec
        )
        assert report.ok, report.render()
        assert len(table) == nrows

        # quiesced: index answers must match brute force exactly
        value = rng.randrange(8)
        result = db.query("sales", Equals("product", value))
        expected = [
            row_id
            for row_id in range(nrows)
            if not table.is_void(row_id)
            and table.row(row_id)["product"] == value
        ]
        assert result.row_ids() == expected, (
            f"seed {seed}: stale index after concurrent updates"
        )


# ---------------------------------------------------------------------
# scenario 3: batch-atomic appends vs pinned snapshot readers
# ---------------------------------------------------------------------
def test_batch_appends_vs_pinned_readers_seeded_interleavings():
    """Writers append marker batches while readers pin snapshots.

    ``Table.append_rows`` holds the write lock for the whole batch and
    moves the published watermark once, so every pinned snapshot must
    land on a batch boundary: the observed watermark is always the
    base row count plus a multiple of the batch size, and a pinned
    query never returns a row from a half-applied batch.
    """
    from repro.query.snapshot import pinned_rows, snapshot_rows

    base_rows = 24
    batch = 6
    for seed in SEEDS:
        db = Database()
        db.create_table(
            "stream",
            {"product": [i % 4 for i in range(base_rows)]},
        )
        db.create_index("stream", "product")
        rec = LockOrderRecorder()
        _instrument_db(db, rec, make_jitter(seed))
        table = db.table("stream")

        def workload(tid, i, db=db, table=table, rng_seed=seed):
            rng = random.Random(f"{rng_seed}:{tid}:{i}")
            if tid % 2 == 0:
                # writer: one marker batch, all rows the same value
                marker = rng.randrange(4)
                table.append_rows(
                    [{"product": marker}] * batch
                )
            else:
                with pinned_rows(table):
                    watermark = snapshot_rows(table)
                    assert (watermark - base_rows) % batch == 0, (
                        f"pin landed mid-batch at {watermark}"
                    )
                    result = db.query(
                        "stream", Equals("product", rng.randrange(4))
                    )
                    assert len(result.vector) == watermark
                    for row_id in result.row_ids():
                        assert 0 <= row_id < watermark

        report = run_stress(
            workload, threads=4, iterations=6, seed=seed, recorder=rec
        )
        assert report.ok, report.render()
        # quiesced: all batches fully applied, watermark caught up
        assert (len(table) - base_rows) % batch == 0
        assert table.published_rows() == len(table)

        # index agrees with brute force after the append storm
        value = random.Random(seed).randrange(4)
        result = db.query("stream", Equals("product", value))
        expected = [
            row_id
            for row_id in range(len(table))
            if table.row(row_id)["product"] == value
        ]
        assert result.row_ids() == expected, (
            f"seed {seed}: stale index after concurrent batch appends"
        )
