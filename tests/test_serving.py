"""Serving-tier tests: queue, quotas, server, result-cache identity.

The load-bearing property here is the result cache's *bit-identity*
contract: a cached answer must equal uncached execution in rows AND
in ``c_e`` (``cost.vectors_accessed``), before and after every one of
the five mutation paths (append / update / delete / compact /
reorder).  The paper's bijective-mapping argument is what makes the
cache key sound — the matched-value set identifies the retrieval
function — and these tests are where that soundness is proved against
the executor rather than argued.

The seeded stress section replays the cache-stampede-plus-ingest
scenario across 50 deterministic interleavings under the lock
sanitizer (see tests/test_concurrency.py for the harness).
"""

import random
import threading
import time

import pytest

from repro.database import Database
from repro.errors import (
    InvalidArgumentError,
    QuotaExceededError,
    RequestTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.lint.sanitizer import (
    LockOrderRecorder,
    instrument,
    make_jitter,
    run_stress,
)
from repro.query.options import QueryOptions
from repro.query.predicates import (
    Equals,
    InList,
    IsNull,
    Predicate,
    Range,
)
from repro.serving import (
    BoundedRequestQueue,
    QuotaManager,
    Server,
    SyntheticWorkload,
    canonical_expression,
    percentile,
    results_identical,
)
from repro.serving.workload import ReadOp, WriteOp
from tests.conftest import matching_rows

REGIONS = ["N", "S", "E", "W"]

CACHED = QueryOptions(use_cache=True)
UNCACHED = QueryOptions(use_cache=False)


def make_db(partitions=None, rows=64, seed=0):
    rng = random.Random(seed)
    db = Database()
    db.create_table(
        "sales",
        {
            "region": [
                REGIONS[rng.randrange(len(REGIONS))] for _ in range(rows)
            ],
            "qty": [rng.randrange(50) for _ in range(rows)],
        },
        partitions=partitions,
    )
    db.create_index("sales", "region")
    return db


# ---------------------------------------------------------------------
# bounded admission queue
# ---------------------------------------------------------------------
class TestBoundedQueue:
    def test_fifo_round_trip(self):
        queue = BoundedRequestQueue(capacity=4)
        for item in "abc":
            assert queue.put(item) == []
        assert [queue.get(), queue.get(), queue.get()] == ["a", "b", "c"]

    def test_reject_policy_fails_fast_when_full(self):
        queue = BoundedRequestQueue(capacity=2, policy="reject")
        queue.put("a")
        queue.put("b")
        with pytest.raises(ServerOverloadedError):
            queue.put("c")

    def test_block_policy_times_out(self):
        queue = BoundedRequestQueue(capacity=1, policy="block")
        queue.put("a")
        with pytest.raises(RequestTimeoutError):
            queue.put("b", timeout=0.05)

    def test_shed_policy_drops_the_oldest(self):
        queue = BoundedRequestQueue(capacity=2, policy="shed")
        queue.put("a")
        queue.put("b")
        assert queue.put("c") == ["a"]
        assert [queue.get(), queue.get()] == ["b", "c"]

    def test_get_times_out_when_empty(self):
        queue = BoundedRequestQueue(capacity=1)
        with pytest.raises(RequestTimeoutError):
            queue.get(timeout=0.01)

    def test_close_drains_and_stops_admissions(self):
        queue = BoundedRequestQueue(capacity=4)
        queue.put("a")
        queue.put("b")
        assert queue.close() == ["a", "b"]
        assert queue.closed
        with pytest.raises(ServerClosedError):
            queue.put("c")
        with pytest.raises(ServerClosedError):
            queue.get()

    def test_invalid_configuration_rejected(self):
        with pytest.raises(InvalidArgumentError):
            BoundedRequestQueue(capacity=0)
        with pytest.raises(InvalidArgumentError):
            BoundedRequestQueue(capacity=1, policy="panic")


# ---------------------------------------------------------------------
# per-tenant quotas
# ---------------------------------------------------------------------
class TestQuotaManager:
    def test_anonymous_resolution(self):
        quotas = QuotaManager()
        assert quotas.acquire(None) == "anonymous"
        assert quotas.inflight("anonymous") == 1
        quotas.release("anonymous")
        assert quotas.inflight() == 0

    def test_ceiling_enforced_and_released(self):
        quotas = QuotaManager(default_limit=2)
        quotas.acquire("t")
        quotas.acquire("t")
        with pytest.raises(QuotaExceededError):
            quotas.acquire("t")
        quotas.release("t")
        assert quotas.acquire("t") == "t"

    def test_per_tenant_override_grants_unlimited_lane(self):
        quotas = QuotaManager(
            default_limit=1, limits={"analytics": None}
        )
        for _ in range(5):
            quotas.acquire("analytics")
        quotas.acquire("other")
        with pytest.raises(QuotaExceededError):
            quotas.acquire("other")

    def test_invalid_limits_rejected(self):
        with pytest.raises(InvalidArgumentError):
            QuotaManager(default_limit=0)
        with pytest.raises(InvalidArgumentError):
            QuotaManager(limits={"t": 0})


def test_percentile_nearest_rank():
    values = [float(v) for v in range(1, 101)]
    assert percentile(values, 50.0) == 50.0
    assert percentile(values, 99.0) == 99.0
    assert percentile([], 50.0) == 0.0
    with pytest.raises(InvalidArgumentError):
        percentile([1.0], 0.0)


# ---------------------------------------------------------------------
# server
# ---------------------------------------------------------------------
class _GatedScanPredicate(Predicate):
    """Matches nothing, but parks the scanning worker on an event.

    The table it queries has no index, so execution falls back to a
    scan and calls ``matches`` — a deterministic way to occupy a
    worker for exactly as long as a test needs.
    """

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()

    def matches(self, row):
        self.started.set()
        self.release.wait(timeout=30.0)
        return False

    def columns(self):
        return frozenset(("x",))


def _server_db():
    db = make_db(partitions=2, rows=96)
    # An unindexed one-row table whose queries scan — used to park a
    # worker deterministically.
    db.create_table("gate", {"x": [0]})
    return db


class TestServer:
    def test_round_trip_matches_reference_scan(self):
        db = make_db(rows=96)
        table = db.table("sales")
        with Server(database=db, workers=2) as server:
            for predicate in (
                Equals("region", "N"),
                InList("region", ["S", "E"]),
            ):
                result = server.query("sales", predicate)
                assert result.row_ids() == matching_rows(table, predicate)
        db.close()

    def test_second_identical_request_is_served_cached(self):
        db = make_db(partitions=2)
        with Server(database=db, workers=1) as server:
            predicate = Equals("region", "N")
            first = server.query("sales", predicate)
            second = server.query("sales", predicate)
            assert not first.cached
            assert second.cached
            assert results_identical(first, second)
        db.close()

    def test_use_cache_false_serves_strictly_uncached(self):
        db = make_db()
        with Server(database=db, workers=1, use_cache=False) as server:
            predicate = Equals("region", "N")
            server.query("sales", predicate)
            assert not server.query("sales", predicate).cached
        db.close()

    def test_tenant_accounting_and_percentiles(self):
        db = make_db()
        with Server(database=db, workers=2) as server:
            for tenant, count in (("alpha", 3), ("beta", 1)):
                for _ in range(count):
                    server.query(
                        "sales",
                        Equals("region", "N"),
                        options=QueryOptions(tenant=tenant),
                    )
        # the context manager closed (joined) the server, so every
        # fulfilled request has also been recorded
        stats = server.stats()
        db.close()
        assert stats.completed == 4
        assert stats.failed == 0
        assert set(stats.latency_percentiles) == {"p50", "p99"}
        assert stats.tenants["alpha"].completed == 3
        assert stats.tenants["beta"].completed == 1
        assert stats.tenants["alpha"].latency_percentiles["p99"] >= 0.0

    def test_quota_breach_fails_before_the_queue(self):
        db = make_db()
        quotas = QuotaManager(limits={"greedy": 1})
        with Server(database=db, workers=1, quotas=quotas) as server:
            quotas.acquire("greedy")  # simulate one in flight
            with pytest.raises(QuotaExceededError):
                server.submit(
                    "sales",
                    Equals("region", "N"),
                    options=QueryOptions(tenant="greedy"),
                )
            stats = server.stats()
            assert stats.submitted == 0  # rejected before admission
        db.close()

    def test_reject_policy_overload_surfaces_to_submitter(self):
        db = _server_db()
        gate = _GatedScanPredicate()
        server = Server(
            database=db, workers=1, queue_capacity=1, policy="reject"
        )
        try:
            blocker = server.submit("gate", gate)
            assert gate.started.wait(timeout=10.0)
            queued = server.submit("sales", Equals("region", "N"))
            with pytest.raises(ServerOverloadedError):
                server.submit("sales", Equals("region", "S"))
            gate.release.set()
            assert blocker.result(timeout=10.0).count() == 0
            assert queued.result(timeout=10.0).count() > 0
        finally:
            gate.release.set()
            server.close()
            db.close()

    def test_shed_policy_fails_the_oldest_queued_request(self):
        db = _server_db()
        gate = _GatedScanPredicate()
        server = Server(
            database=db, workers=1, queue_capacity=1, policy="shed"
        )
        try:
            blocker = server.submit("gate", gate)
            assert gate.started.wait(timeout=10.0)
            victim = server.submit("sales", Equals("region", "N"))
            newer = server.submit("sales", Equals("region", "S"))
            with pytest.raises(ServerOverloadedError):
                victim.result(timeout=10.0)
            gate.release.set()
            assert blocker.result(timeout=10.0).count() == 0
            assert newer.result(timeout=10.0).count() > 0
            stats = server.stats()
            assert stats.shed == 1
        finally:
            gate.release.set()
            server.close()
            db.close()

    def test_deadline_expired_in_queue_times_out(self):
        db = _server_db()
        gate = _GatedScanPredicate()
        server = Server(database=db, workers=1, queue_capacity=4)
        try:
            blocker = server.submit("gate", gate)
            assert gate.started.wait(timeout=10.0)
            doomed = server.submit(
                "sales",
                Equals("region", "N"),
                options=QueryOptions(timeout_seconds=0.05),
            )
            time.sleep(0.15)
            gate.release.set()
            blocker.result(timeout=10.0)
            with pytest.raises(RequestTimeoutError):
                doomed.result(timeout=10.0)
            server.close()  # join workers so the failure is recorded
            stats = server.stats()
            assert stats.timed_out == 1
        finally:
            gate.release.set()
            server.close()
            db.close()

    def test_failure_reaches_caller_and_is_counted(self):
        db = make_db()
        with Server(database=db, workers=1) as server:
            request = server.submit("no-such-table", Equals("x", 1))
            with pytest.raises(Exception):
                request.result(timeout=10.0)
        stats = server.stats()  # after close: failure recorded
        assert stats.failed == 1
        db.close()

    def test_closed_server_refuses_submissions(self):
        db = make_db()
        server = Server(database=db, workers=1)
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit("sales", Equals("region", "N"))
        server.close()  # idempotent
        db.close()


# ---------------------------------------------------------------------
# result-cache bit-identity across every mutation path
# ---------------------------------------------------------------------
IDENTITY_PREDICATES = [
    Equals("region", "N"),
    InList("region", ["N", "S"]),
    Equals("region", "N") | Equals("region", "S"),
    Range("qty", 10, 30),
    ~Equals("region", "E"),
    (Equals("region", "E") | Equals("region", "W")) & Range("qty", 0, 40),
    IsNull("region"),
]

MUTATIONS = {
    "append": lambda db: db.append("sales", {"region": "N", "qty": 7}),
    "update": lambda db: db.update("sales", 3, "region", "W"),
    "delete": lambda db: db.delete("sales", 5),
    "compact": lambda db: db.compact(),
    "reorder": lambda db: db.reorder("sales", ["region"]),
}


@pytest.mark.parametrize("partitions", [None, 2])
@pytest.mark.parametrize("mutation", sorted(MUTATIONS))
def test_cache_bit_identity_across_mutation(mutation, partitions):
    """Cached == uncached (rows and c_e) before AND after a mutation.

    Before: a warm hit reproduces the uncached answer bit-for-bit.
    After: the mutation moved the epoch, so the next cached query
    re-executes (never serves the stale entry) and again matches the
    uncached answer exactly.
    """
    db = make_db(partitions=partitions, rows=96)
    try:
        for predicate in IDENTITY_PREDICATES:
            uncached = db.query("sales", predicate, UNCACHED)
            db.query("sales", predicate, CACHED)  # fill
            hit = db.query("sales", predicate, CACHED)
            assert hit.cached, predicate
            assert results_identical(hit, uncached), predicate

        epoch_before = db.epoch("sales")
        MUTATIONS[mutation](db)
        assert db.epoch("sales") > epoch_before

        refilled = set()
        for predicate in IDENTITY_PREDICATES:
            expr = canonical_expression(predicate, db.catalog, "sales")
            uncached = db.query("sales", predicate, UNCACHED)
            refreshed = db.query("sales", predicate, CACHED)
            if expr not in refilled:
                # First query of this retrieval class since the
                # mutation: the stale entry must NOT be served.
                assert not refreshed.cached, predicate
                refilled.add(expr)
            assert results_identical(refreshed, uncached), predicate
            again = db.query("sales", predicate, CACHED)
            assert again.cached, predicate
            assert results_identical(again, uncached), predicate
    finally:
        db.close()


def test_canonically_equal_spellings_share_entry_and_cost():
    """OR-of-Equals, IN-list: one cache entry, one execution cost.

    The planner normalises the OR spelling into the IN-list before
    planning, so both spellings execute with identical c_e — which is
    what lets the cache soundly serve one entry to both.
    """
    db = make_db(partitions=2, rows=96)
    try:
        in_list = InList("region", ["N", "S"])
        or_form = Equals("region", "S") | Equals("region", "N")
        uncached_in = db.query("sales", in_list, UNCACHED)
        uncached_or = db.query("sales", or_form, UNCACHED)
        assert results_identical(uncached_in, uncached_or)

        filled = db.query("sales", in_list, CACHED)
        shared = db.query("sales", or_form, CACHED)
        assert not filled.cached
        assert shared.cached  # the other spelling's entry served
        assert results_identical(shared, uncached_in)
    finally:
        db.close()


def test_trace_and_snapshot_queries_bypass_the_cache():
    db = make_db(partitions=2, rows=96)
    try:
        predicate = Equals("region", "N")
        db.query("sales", predicate, CACHED)  # fill
        traced = db.query(
            "sales", predicate, QueryOptions(use_cache=True, trace=True)
        )
        assert not traced.cached
        assert traced.trace is not None
        pinned = db.query(
            "sales",
            predicate,
            QueryOptions(use_cache=True, snapshot_rows=48),
        )
        assert not pinned.cached
    finally:
        db.close()


# ---------------------------------------------------------------------
# process backend identity and executor lifecycle
# ---------------------------------------------------------------------
def test_process_backend_bit_identical_to_thread():
    db = make_db(partitions=2, rows=96)
    try:
        for predicate in IDENTITY_PREDICATES[:4]:
            threaded = db.query(
                "sales",
                predicate,
                QueryOptions(workers=2, backend="thread"),
            )
            processed = db.query(
                "sales",
                predicate,
                QueryOptions(workers=2, backend="process"),
            )
            assert results_identical(threaded, processed), predicate
    finally:
        db.close()


def test_executor_lifecycle_across_reorder_compact_close(tmp_path):
    """The lazily built per-table executor stays valid through every
    table-shape change: reorder (rows permute), compact (index planes
    swap), close (backends released) and recover (fresh process)."""
    db = make_db(partitions=2, rows=96)
    predicate = Equals("region", "N")
    opts = QueryOptions(workers=2)
    directory = str(tmp_path / "db")
    try:
        baseline = db.query("sales", predicate, opts).count()

        db.reorder("sales", ["region"])
        assert db.query("sales", predicate, opts).count() == baseline

        db.compact()
        assert db.query("sales", predicate, opts).count() == baseline

        db.close()  # releases executors; next query rebuilds lazily
        assert db.query("sales", predicate, opts).count() == baseline

        db.save(directory)
    finally:
        db.close()

    recovered = Database.recover(directory)
    try:
        assert (
            recovered.query("sales", predicate, opts).count() == baseline
        )
    finally:
        recovered.close()


# ---------------------------------------------------------------------
# seeded concurrency stress under the lock sanitizer
# ---------------------------------------------------------------------
STRESS_SEEDS = range(50)


def test_cache_stampede_with_ingest_seeded_interleavings():
    """Readers hammer the result cache while a writer appends.

    50 seeded interleavings; invariants per seed: no lock-order
    inversion across the cache/quota/ingest locks, every concurrent
    answer is well-formed, and once writers quiesce the cached answer
    is bit-identical to uncached execution for every predicate.
    """
    predicates = [Equals("region", v) for v in REGIONS] + [
        InList("region", ["N", "S"])
    ]
    for seed in STRESS_SEEDS:
        db = make_db(partitions=2, rows=48, seed=seed)
        rec = LockOrderRecorder()
        jitter = make_jitter(seed)
        instrument(
            db.result_cache, recorder=rec, name="result-cache",
            jitter=jitter,
        )
        instrument(
            db.result_cache._entries, recorder=rec,
            name="result-cache-lru", jitter=jitter,
        )
        instrument(
            db, "_ingest_lock", recorder=rec, name="ingest",
            jitter=jitter,
        )

        def workload(tid, i, db=db, predicates=predicates):
            if tid == 0 and i % 3 == 0:
                db.append(
                    "sales", {"region": REGIONS[i % 4], "qty": i}
                )
            else:
                result = db.query(
                    "sales",
                    predicates[(tid + i) % len(predicates)],
                    CACHED,
                )
                assert len(result.vector) > 0

        report = run_stress(
            workload, threads=4, iterations=9, seed=seed, recorder=rec
        )
        assert report.ok, report.render()
        for predicate in predicates:
            cached = db.query("sales", predicate, CACHED)
            uncached = db.query("sales", predicate, UNCACHED)
            assert results_identical(cached, uncached), (
                seed,
                predicate,
            )
        db.close()


def test_server_seeded_stress_under_sanitizer():
    """Synchronous callers drive a live server across 10 seeds; the
    stats/quota locks must stay inversion-free and every admitted
    request must complete."""
    for seed in range(10):
        db = make_db(partitions=2, rows=48, seed=seed)
        server = Server(
            database=db, workers=2, queue_capacity=16,
            default_timeout=30.0,
        )
        rec = LockOrderRecorder()
        jitter = make_jitter(seed)
        instrument(
            server, "_stats_lock", recorder=rec, name="server-stats",
            jitter=jitter,
        )
        instrument(
            server.quotas, recorder=rec, name="quotas", jitter=jitter
        )
        instrument(
            db.result_cache, recorder=rec, name="result-cache",
            jitter=jitter,
        )

        def workload(tid, i, server=server):
            result = server.query(
                "sales",
                Equals("region", REGIONS[(tid + i) % 4]),
                options=QueryOptions(tenant=f"tenant-{tid}"),
            )
            assert len(result.vector) > 0

        report = run_stress(
            workload, threads=4, iterations=6, seed=seed, recorder=rec
        )
        assert report.ok, report.render()
        # close() joins the workers, so every fulfilled request has
        # also been *recorded* by the time stats are read.
        server.close()
        stats = server.stats()
        assert stats.completed == 4 * 6
        assert stats.failed == 0
        db.close()


# ---------------------------------------------------------------------
# synthetic workload
# ---------------------------------------------------------------------
class TestSyntheticWorkload:
    def test_reproducible_across_instances(self):
        ops_a = list(
            SyntheticWorkload(seed=9, tenants=3).operations(40)
        )
        ops_b = list(
            SyntheticWorkload(seed=9, tenants=3).operations(40)
        )
        assert ops_a == ops_b

    def test_mix_and_shapes(self):
        workload = SyntheticWorkload(seed=2, read_fraction=0.8)
        ops = list(workload.operations(300))
        reads = [op for op in ops if isinstance(op, ReadOp)]
        writes = [op for op in ops if isinstance(op, WriteOp)]
        assert len(reads) + len(writes) == 300
        assert 0.6 < len(reads) / 300 < 0.95
        assert all(
            op.tenant.startswith("tenant-") for op in ops
        )

    def test_table_and_column_override(self):
        workload = SyntheticWorkload(
            seed=1, values=["x", "y"], table="facts", column="dim"
        )
        assert workload.TABLE == "facts"
        assert workload.COLUMN == "dim"
        # the class defaults are untouched
        assert SyntheticWorkload.TABLE == "events"
        read = next(
            op
            for op in workload.operations(50)
            if isinstance(op, ReadOp)
        )
        assert read.predicate.columns() == frozenset(("dim",))

    def test_build_creates_queryable_table(self):
        db = Database()
        workload = SyntheticWorkload(seed=3, rows=256, partitions=2)
        workload.build(db)
        try:
            result = db.query(
                workload.TABLE,
                Equals(workload.COLUMN, workload.values[0]),
            )
            table = db.table(workload.TABLE)
            assert result.row_ids() == matching_rows(
                table, Equals(workload.COLUMN, workload.values[0])
            )
        finally:
            db.close()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidArgumentError):
            SyntheticWorkload(tenants=0)
        with pytest.raises(InvalidArgumentError):
            SyntheticWorkload(values=[])
        with pytest.raises(InvalidArgumentError):
            SyntheticWorkload(read_fraction=1.5)
        with pytest.raises(InvalidArgumentError):
            SyntheticWorkload(rows=0)
