"""Fault-injection matrix: every fault kind at every storage layer.

The matrix crosses {fail-read, fail-write, torn write, bit-rot} with
{pager, vector_store, serialization} and asserts, per cell, that the
fault is either *detected* (a typed error naming what broke) or
*recovered* (bounded deterministic retry).  Everything is seeded; no
test sleeps on the wall clock.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.bitmap.bitvector import BitVector
from repro.errors import (
    ChecksumError,
    CorruptIndexError,
    InvalidArgumentError,
    PermanentIOError,
    RetryExhaustedError,
    TransientIOError,
)
from repro.faults import FaultPolicy, FaultRule, FaultyPager, RetryPolicy
from repro.index import serialization
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.storage.buffer_pool import BufferPool
from repro.storage.page import page_checksum
from repro.storage.vector_store import PagedVectorStore
from repro.table.table import Table


def recording_retry(max_attempts: int = 3) -> tuple:
    """A retry policy whose sleeps are recorded, never slept."""
    delays: list = []
    policy = RetryPolicy(
        max_attempts=max_attempts,
        base_delay=0.001,
        multiplier=2.0,
        max_delay=0.05,
        sleep=delays.append,
    )
    return policy, delays


def full_page(pager, fill: int):
    """Allocate a page and fill it completely (so a torn suffix always
    differs from the previous image)."""
    page = pager.allocate()
    page.write(bytes([fill]) * pager.page_size, 0)
    return page


# ----------------------------------------------------------------------
# layer: pager
# ----------------------------------------------------------------------
def pager_fail_read():
    pager = FaultyPager(
        page_size=256,
        policy=FaultPolicy.single("read", "fail", transient=False),
    )
    page = full_page(pager, 0xAB)
    pager.write(page)
    with pytest.raises(PermanentIOError, match="injected read fault"):
        pager.read(page.page_id)


def pager_fail_write():
    pager = FaultyPager(
        page_size=256,
        policy=FaultPolicy.single(
            "write", "fail", transient=False, skip_first=1
        ),
    )
    page = full_page(pager, 0xAB)
    pager.write(page)
    page.write(b"\xcd" * 256, 0)
    with pytest.raises(PermanentIOError, match="injected write fault"):
        pager.write(page)
    # The failed write must not have touched the committed image.
    assert pager.read(page.page_id).read() == b"\xab" * 256


def pager_torn_write():
    pager = FaultyPager(
        page_size=256,
        policy=FaultPolicy.single("write", "torn", skip_first=1),
    )
    page = full_page(pager, 0xAB)
    pager.write(page)
    page.write(b"\xcd" * 256, 0)
    pager.write(page)  # torn: checksum of new image, bytes of a mix
    with pytest.raises(ChecksumError, match="checksum"):
        pager.read(page.page_id)


def pager_bitrot():
    pager = FaultyPager(
        page_size=256,
        policy=FaultPolicy.single("read", "bitrot"),
    )
    page = full_page(pager, 0xAB)
    pager.write(page)
    with pytest.raises(ChecksumError, match="checksum"):
        pager.read(page.page_id)


# ----------------------------------------------------------------------
# layer: vector store (pool + pager)
# ----------------------------------------------------------------------
def _stored_vector(policy: FaultPolicy, retry=None) -> tuple:
    """A store holding one flushed vector with an empty pool."""
    pager = FaultyPager(page_size=128, policy=policy)
    store = PagedVectorStore(pager=pager, pool_capacity=4, retry=retry)
    vector = BitVector(128 * 8)
    for i in range(0, len(vector), 3):
        vector[i] = True
    store.store("v", vector)
    store.flush()
    store.pool._frames.clear()  # force physical reads from here on
    return store, vector


def vector_store_fail_read():
    retry, delays = recording_retry(max_attempts=3)
    policy = FaultPolicy.single(
        "read", "fail", transient=True, max_triggers=2
    )
    store, vector = _stored_vector(policy, retry=retry)
    # Two transient faults, absorbed by bounded deterministic backoff.
    assert store.load("v") == vector
    assert delays == [0.001, 0.002]


def vector_store_fail_write():
    retry, delays = recording_retry(max_attempts=3)
    pager = FaultyPager(
        page_size=128,
        policy=FaultPolicy.single(
            "write", "fail", transient=True, max_triggers=2
        ),
    )
    store = PagedVectorStore(pager=pager, pool_capacity=4, retry=retry)
    vector = BitVector(64)
    vector[7] = True
    store.store("v", vector)
    store.flush()  # transient write faults retried here
    assert delays == [0.001, 0.002]
    store.pool._frames.clear()
    assert store.load("v") == vector


def vector_store_torn_write():
    policy = FaultPolicy(
        seed=3,
        rules=(
            FaultRule(
                operation="write", kind="torn", skip_first=1
            ),
        ),
    )
    pager = FaultyPager(page_size=128, policy=policy)
    store = PagedVectorStore(pager=pager, pool_capacity=4)
    ones = BitVector(128 * 8)
    for i in range(len(ones)):
        ones[i] = True
    store.store("v", ones)
    store.flush()  # first flush commits clean
    page = store.pool.fetch(store.handle("v").page_ids[0])
    page.write(bytes(128), 0)  # all-zero rewrite
    store.flush()  # torn: commits a zeros/ones mix under the new CRC
    store.pool._frames.clear()
    with pytest.raises(ChecksumError, match="checksum"):
        store.load("v")


def vector_store_bitrot():
    policy = FaultPolicy.single("read", "bitrot")
    store, _ = _stored_vector(policy)
    with pytest.raises(ChecksumError, match="checksum"):
        store.load("v")


# ----------------------------------------------------------------------
# layer: serialization (index files)
# ----------------------------------------------------------------------
def _payload() -> bytes:
    table = Table("T", ["A"])
    for value in ["a", "b", "c", "b", "a", "c", "d", "a"]:
        table.append({"A": value})
    return serialization.dumps(EncodedBitmapIndex(table, "A"))


def serialization_fail_read():
    # A read that dies mid-file surfaces as a truncated payload.
    payload = _payload()
    with pytest.raises(CorruptIndexError, match="truncated"):
        serialization.parse(payload[: len(payload) // 2])


def serialization_fail_write(tmp_path=None, monkeypatch=None):
    # Exercised by test_save_is_atomic below (needs fixtures).
    pytest.skip("covered by test_save_is_atomic")


def serialization_torn_write():
    # A torn file write leaves a prefix; every prefix must be rejected.
    payload = _payload()
    for cut in (4, 9, 20, len(payload) - 1):
        with pytest.raises(CorruptIndexError):
            serialization.parse(payload[:cut])


def serialization_bitrot():
    payload = bytearray(_payload())
    payload[len(payload) // 3] ^= 0x10
    with pytest.raises(CorruptIndexError):
        serialization.parse(bytes(payload))


# ----------------------------------------------------------------------
# layer: database (save / load / recover)
# ----------------------------------------------------------------------
def _saved_database():
    import tempfile

    from repro.database import Database

    directory = tempfile.mkdtemp()
    db = Database()
    db.create_table("t", {"v": ["a", "b", "a", "c"] * 4})
    db.create_index("t", "v")
    db.save(directory)
    return db, directory


def database_fail_write():
    # A failed manifest rename leaves the previous generation intact
    # and loadable — the rename is the commit point.
    from unittest import mock

    from repro.database import Database

    db, directory = _saved_database()
    db.append("t", {"v": "b"})
    real_replace = os.replace

    def failing_replace(src, dst):
        if dst.endswith("manifest.json"):
            raise OSError("injected write fault")
        return real_replace(src, dst)

    with mock.patch("os.replace", failing_replace):
        with pytest.raises(OSError, match="injected write fault"):
            db.save(directory)
    recovered = Database.recover(directory)
    # Old generation plus the WAL-acked append: nothing lost.
    assert len(recovered.table("t")) == 17
    for report in recovered.fsck().values():
        assert report.ok


def database_torn_write():
    # A torn WAL tail is truncated at the first bad frame; every
    # record before it still replays.
    from repro.database import Database

    db, directory = _saved_database()
    db.append("t", {"v": "b"})
    db.append("t", {"v": "c"})
    wal_path = os.path.join(directory, "wal.log")
    size = os.path.getsize(wal_path)
    with open(wal_path, "rb+") as handle:
        handle.truncate(size - 3)  # tear the last frame
    recovered = Database.recover(directory)
    table = recovered.table("t")
    assert len(table) == 17  # first append replayed, torn one dropped
    assert table.row(16)["v"] == "b"
    for report in recovered.fsck().values():
        assert report.ok


def database_bitrot():
    # A flipped bit in an index payload never fails the load: the
    # index is rebuilt from base data and marked degraded; a flipped
    # bit in the WAL truncates at the damaged record.
    from repro.database import Database

    _, directory = _saved_database()
    payload_path = os.path.join(directory, "t.v.ebi")
    blob = bytearray(open(payload_path, "rb").read())
    blob[len(blob) // 2] ^= 0x04
    with open(payload_path, "wb") as handle:
        handle.write(bytes(blob))
    recovered = Database.recover(directory)
    index = recovered.catalog.indexes_on("t", "v")[0]
    assert index.degraded
    report = recovered.fsck(repair=True)["t.v"]
    assert report.ok


_MATRIX = {
    ("database", "fail-write"): database_fail_write,
    ("database", "torn-write"): database_torn_write,
    ("database", "bit-rot"): database_bitrot,
    ("pager", "fail-read"): pager_fail_read,
    ("pager", "fail-write"): pager_fail_write,
    ("pager", "torn-write"): pager_torn_write,
    ("pager", "bit-rot"): pager_bitrot,
    ("vector_store", "fail-read"): vector_store_fail_read,
    ("vector_store", "fail-write"): vector_store_fail_write,
    ("vector_store", "torn-write"): vector_store_torn_write,
    ("vector_store", "bit-rot"): vector_store_bitrot,
    ("serialization", "fail-read"): serialization_fail_read,
    ("serialization", "fail-write"): serialization_fail_write,
    ("serialization", "torn-write"): serialization_torn_write,
    ("serialization", "bit-rot"): serialization_bitrot,
}


@pytest.mark.parametrize(
    "layer,kind",
    sorted(_MATRIX),
    ids=[f"{layer}-{kind}" for layer, kind in sorted(_MATRIX)],
)
def test_fault_matrix(layer, kind):
    """Each (layer, fault-kind) cell detects or recovers."""
    _MATRIX[(layer, kind)]()


# ----------------------------------------------------------------------
# policy determinism and rule semantics
# ----------------------------------------------------------------------
class TestFaultPolicy:
    def test_rule_validation(self):
        with pytest.raises(InvalidArgumentError):
            FaultRule(operation="erase", kind="fail")
        with pytest.raises(InvalidArgumentError):
            FaultRule(operation="read", kind="melt")
        with pytest.raises(InvalidArgumentError):
            FaultRule(operation="read", kind="torn")
        with pytest.raises(InvalidArgumentError):
            FaultRule(operation="write", kind="bitrot")
        with pytest.raises(InvalidArgumentError):
            FaultRule(operation="read", kind="fail", probability=1.5)

    def test_same_seed_same_schedule(self):
        def run(seed):
            policy = FaultPolicy.single(
                "read", "fail", seed=seed, probability=0.5
            )
            return [
                policy.decide("read", page_id) is not None
                for page_id in range(50)
            ]

        assert run(42) == run(42)
        assert run(42) != run(43)  # distinct seeds diverge

    def test_skip_first_and_max_triggers(self):
        policy = FaultPolicy.single(
            "write", "fail", skip_first=2, max_triggers=1
        )
        hits = [
            policy.decide("write", 0) is not None for _ in range(5)
        ]
        assert hits == [False, False, True, False, False]

    def test_page_scoping(self):
        policy = FaultPolicy.single(
            "read", "fail", page_ids=frozenset({7})
        )
        assert policy.decide("read", 3) is None
        assert policy.decide("read", 7) is not None

    def test_event_log(self):
        policy = FaultPolicy.single("read", "fail", skip_first=1)
        policy.decide("read", 9)
        policy.decide("read", 9)
        assert len(policy.events) == 1
        event = policy.events[0]
        assert (event.kind, event.operation, event.page_id) == (
            "fail",
            "read",
            9,
        )
        assert event.op_index == 1


class TestRetryPolicy:
    def test_backoff_schedule_is_deterministic_and_capped(self):
        policy = RetryPolicy(
            max_attempts=6,
            base_delay=0.01,
            multiplier=2.0,
            max_delay=0.05,
            sleep=lambda _s: None,
        )
        assert policy.delays() == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_recovers_within_budget(self):
        policy, delays = recording_retry(max_attempts=3)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientIOError("blip")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert delays == [0.001, 0.002]

    def test_exhaustion_raises_typed_error_with_cause(self):
        policy, delays = recording_retry(max_attempts=2)

        def always():
            raise TransientIOError("still down")

        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(always)
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.__cause__, TransientIOError)
        assert delays == [0.001]

    def test_permanent_faults_are_not_retried(self):
        policy, delays = recording_retry(max_attempts=5)

        def broken():
            raise PermanentIOError("dead sector")

        with pytest.raises(PermanentIOError):
            policy.call(broken)
        assert delays == []

    def test_argument_validation(self):
        with pytest.raises(InvalidArgumentError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(InvalidArgumentError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(InvalidArgumentError):
            RetryPolicy(base_delay=-1.0)


# ----------------------------------------------------------------------
# buffer-pool write-back regression (the historical bug: evict dropped
# dirty frames without writing them back)
# ----------------------------------------------------------------------
class TestBufferPoolWriteBack:
    def test_eviction_writes_back_dirty_victim(self):
        pager = FaultyPager(page_size=64)
        pool = BufferPool(pager, capacity=1)
        first = pool.new_page()
        first.write(b"\x11" * 64, 0)
        assert first.dirty
        pool.new_page()  # evicts `first`, must write it back
        assert pager.read(first.page_id).read() == b"\x11" * 64

    def test_close_flushes_dirty_frames(self):
        pager = FaultyPager(page_size=64)
        with BufferPool(pager, capacity=4) as pool:
            page = pool.new_page()
            page.write(b"\x22" * 64, 0)
        assert pager.read(page.page_id).read() == b"\x22" * 64

    def test_failed_write_back_does_not_lose_data(self):
        policy = FaultPolicy.single(
            "write", "fail", transient=False, max_triggers=1
        )
        pager = FaultyPager(page_size=64, policy=policy)
        pool = BufferPool(pager, capacity=1)
        first = pool.new_page()
        first.write(b"\x33" * 64, 0)
        with pytest.raises(PermanentIOError):
            pool.new_page()  # eviction write-back fails
        # The dirty victim must still be resident, still dirty.
        assert first.page_id in pool
        assert first.dirty
        pool.flush()  # fault budget spent: now succeeds
        assert pager.read(first.page_id).read() == b"\x33" * 64

    def test_transient_write_back_recovered_under_retry(self):
        retry, delays = recording_retry(max_attempts=3)
        policy = FaultPolicy.single(
            "write", "fail", transient=True, max_triggers=1
        )
        pager = FaultyPager(page_size=64, policy=policy)
        pool = BufferPool(pager, capacity=1, retry=retry)
        first = pool.new_page()
        first.write(b"\x44" * 64, 0)
        pool.new_page()  # eviction retried, then succeeds
        assert delays == [0.001]
        assert pager.read(first.page_id).read() == b"\x44" * 64


# ----------------------------------------------------------------------
# serialization: every single-bit corruption is detected
# ----------------------------------------------------------------------
class TestSerializationBitFlips:
    def test_random_single_bit_flip_always_detected(self):
        """Property: flip any one bit of a saved index and load fails.

        Sampled deterministically (seed 20260805) across the payload,
        plus every bit of the first 16 bytes (magic + preamble).
        """
        payload = _payload()
        nbits = len(payload) * 8
        rng = random.Random(20260805)
        positions = set(rng.sample(range(nbits), 300))
        positions.update(range(16 * 8))
        for bit in sorted(positions):
            mutated = bytearray(payload)
            mutated[bit // 8] ^= 1 << (bit % 8)
            with pytest.raises(CorruptIndexError):
                serialization.parse(bytes(mutated))

    def test_trailing_garbage_detected(self):
        with pytest.raises(CorruptIndexError, match="trailing"):
            serialization.parse(_payload() + b"\x00")

    def test_clean_payload_round_trips(self):
        table = Table("T", ["A"])
        for value in ["a", "b", "c", "b", "a", "c", "d", "a"]:
            table.append({"A": value})
        index = EncodedBitmapIndex(table, "A")
        restored = serialization.loads(
            serialization.dumps(index), table
        )
        assert restored.mapping == index.mapping
        assert [
            restored.vector(i) for i in range(restored.width)
        ] == [index.vector(i) for i in range(index.width)]


class TestAtomicSave:
    def test_save_is_atomic(self, tmp_path, monkeypatch):
        table = Table("T", ["A"])
        for value in ["a", "b", "a"]:
            table.append({"A": value})
        index = EncodedBitmapIndex(table, "A")
        path = tmp_path / "index.ebi"
        serialization.save(index, str(path))
        good = path.read_bytes()

        def explode(_fd):
            raise OSError("injected write fault")

        monkeypatch.setattr(serialization.os, "fsync", explode)
        with pytest.raises(OSError, match="injected write fault"):
            serialization.save(index, str(path))
        # The previous good file is intact; no temp file leaks.
        assert path.read_bytes() == good
        assert not (tmp_path / "index.ebi.tmp").exists()

    def test_load_round_trip_from_disk(self, tmp_path):
        table = Table("T", ["A"])
        for value in ["x", "y", "z", "x"]:
            table.append({"A": value})
        index = EncodedBitmapIndex(table, "A")
        path = tmp_path / "index.ebi"
        serialization.save(index, str(path))
        restored = serialization.load(str(path), table)
        assert restored.mapping == index.mapping


def test_page_checksum_is_crc32():
    import zlib

    data = b"\x00\x01\x02" * 100
    assert page_checksum(data) == zlib.crc32(data) & 0xFFFFFFFF
