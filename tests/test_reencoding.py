"""Unit tests for repro.encoding.reencoding (dynamic re-encoding)."""

import pytest

from repro.encoding.heuristics import (
    encoding_cost,
    random_encoding,
    sequential_encoding,
)
from repro.encoding.reencoding import (
    apply_reencoding,
    evaluate_reencoding,
)
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.query.predicates import InList
from repro.table.table import Table

DOMAIN = list("abcdefgh")
PREDICATES = [list("abcd"), list("cdef")]


class TestEvaluateReencoding:
    def test_bad_current_encoding_is_worth_replacing(self):
        current = random_encoding(DOMAIN, seed=1234,
                                  reserve_void_zero=False)
        decision = evaluate_reencoding(
            current, PREDICATES, table_size=100_000,
            horizon_executions=10_000,
        )
        assert decision.candidate_cost <= decision.current_cost
        if decision.saving_per_execution > 0:
            assert decision.break_even_executions < float("inf")

    def test_good_encoding_not_replaced(self):
        from repro.encoding.heuristics import encode_for_predicates

        current = encode_for_predicates(
            DOMAIN, PREDICATES, reserve_void_zero=False, seed=0
        )
        decision = evaluate_reencoding(
            current, PREDICATES, table_size=1000,
            horizon_executions=100,
        )
        # nothing to gain -> infinite break-even, not worthwhile
        assert decision.saving_per_execution <= 0.5
        if decision.saving_per_execution <= 0:
            assert not decision.worthwhile

    def test_short_horizon_blocks_rebuild(self):
        current = random_encoding(DOMAIN, seed=1234,
                                  reserve_void_zero=False)
        generous = evaluate_reencoding(
            current, PREDICATES, table_size=10**6,
            horizon_executions=10**9,
        )
        stingy = evaluate_reencoding(
            current, PREDICATES, table_size=10**6,
            horizon_executions=0,
        )
        assert not stingy.worthwhile
        if generous.saving_per_execution > 0:
            assert generous.worthwhile

    def test_rebuild_cost_scales_with_table(self):
        current = sequential_encoding(DOMAIN, reserve_void_zero=False)
        small = evaluate_reencoding(
            current, PREDICATES, table_size=1000,
            horizon_executions=100,
        )
        large = evaluate_reencoding(
            current, PREDICATES, table_size=100_000,
            horizon_executions=100,
        )
        assert large.rebuild_cost > small.rebuild_cost

    def test_negative_horizon_rejected(self):
        current = sequential_encoding(DOMAIN, reserve_void_zero=False)
        with pytest.raises(ValueError):
            evaluate_reencoding(
                current, PREDICATES, table_size=10,
                horizon_executions=-1,
            )


class TestApplyReencoding:
    def _table(self):
        table = Table("t", ["A"])
        for i in range(200):
            table.append({"A": DOMAIN[i % 8]})
        return table

    def test_rebuild_preserves_results(self):
        table = self._table()
        index = EncodedBitmapIndex(table, "A")
        predicate = InList("A", ["a", "b", "c", "d"])
        before = index.lookup(predicate)
        decision = evaluate_reencoding(
            index.mapping, PREDICATES, table_size=len(table),
            horizon_executions=10**6,
        )
        apply_reencoding(index, decision)
        after = index.lookup(predicate)
        assert before == after

    def test_rebuild_improves_cost(self):
        table = self._table()
        bad_mapping = random_encoding(DOMAIN, seed=1234)
        index = EncodedBitmapIndex(table, "A", encoding=bad_mapping)
        predicate = InList("A", PREDICATES[0])
        index.lookup(predicate)
        cost_before = index.last_cost.vectors_accessed

        decision = evaluate_reencoding(
            index.mapping, PREDICATES, table_size=len(table),
            horizon_executions=10**6,
        )
        apply_reencoding(index, decision)
        index.lookup(predicate)
        cost_after = index.last_cost.vectors_accessed
        assert cost_after <= cost_before

    def test_rebuild_charges_maintenance(self):
        table = self._table()
        index = EncodedBitmapIndex(table, "A")
        before_ops = index.stats.maintenance_ops
        decision = evaluate_reencoding(
            index.mapping, PREDICATES, table_size=len(table),
            horizon_executions=10**6,
        )
        apply_reencoding(index, decision)
        assert index.stats.maintenance_ops - before_ops >= len(table)

    def test_domain_mismatch_rejected(self):
        table = self._table()
        index = EncodedBitmapIndex(table, "A")
        other = evaluate_reencoding(
            sequential_encoding(["x", "y"], reserve_void_zero=False),
            [["x", "y"]],
            table_size=10,
            horizon_executions=10,
        )
        with pytest.raises(ValueError):
            apply_reencoding(index, other)
