"""Unit tests for repro.encoding.range_based (Section 2.3, Figures 7-8)."""

import pytest

from repro.boolean.reduction import reduce_values
from repro.encoding.range_based import (
    Interval,
    RangePartition,
    partition_from_predicates,
    range_encoding,
)

PAPER_PREDICATES = [(6, 10), (8, 12), (10, 13), (16, 20)]


class TestInterval:
    def test_contains_half_open(self):
        interval = Interval(6, 8)
        assert interval.contains(6)
        assert interval.contains(7.5)
        assert not interval.contains(8)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 5)

    def test_str(self):
        assert str(Interval(6, 8)) == "[6,8)"


class TestPartitionFromPredicates:
    def test_paper_figure7(self):
        """Predicates 6<=A<10, 8<=A<12, 10<=A<13, 16<=A<20 over [6,20)
        yield exactly the six partitions of Figure 7."""
        partition = partition_from_predicates(6, 20, PAPER_PREDICATES)
        assert [str(i) for i in partition.intervals] == [
            "[6,8)", "[8,10)", "[10,12)", "[12,13)", "[13,16)", "[16,20)",
        ]

    def test_locate(self):
        partition = partition_from_predicates(6, 20, PAPER_PREDICATES)
        assert str(partition.locate(9)) == "[8,10)"
        assert str(partition.locate(19)) == "[16,20)"
        with pytest.raises(ValueError):
            partition.locate(25)

    def test_covering_aligned(self):
        partition = partition_from_predicates(6, 20, PAPER_PREDICATES)
        covering = partition.covering(8, 12)
        assert [str(i) for i in covering] == ["[8,10)", "[10,12)"]

    def test_covering_misaligned_raises(self):
        partition = partition_from_predicates(6, 20, PAPER_PREDICATES)
        with pytest.raises(ValueError):
            partition.covering(7, 11)

    def test_predicate_outside_domain(self):
        with pytest.raises(ValueError):
            partition_from_predicates(6, 20, [(5, 10)])

    def test_empty_predicate(self):
        with pytest.raises(ValueError):
            partition_from_predicates(6, 20, [(10, 10)])

    def test_empty_domain(self):
        with pytest.raises(ValueError):
            partition_from_predicates(5, 5, [])

    def test_no_predicates_single_interval(self):
        partition = partition_from_predicates(0, 10, [])
        assert len(partition) == 1


class TestRangeEncoding:
    def test_each_paper_predicate_reduces(self):
        """Every pre-defined range must touch at most 2 of the 3
        vectors (the paper's Figure 8 costs), and the result must
        select exactly the covered intervals."""
        partition = partition_from_predicates(6, 20, PAPER_PREDICATES)
        mapping = range_encoding(partition, PAPER_PREDICATES, seed=0)
        assert mapping.width == 3
        for low, high in PAPER_PREDICATES:
            covering = partition.covering(low, high)
            codes = [mapping.encode(i) for i in covering]
            reduced = reduce_values(
                codes, mapping.width, dont_cares=mapping.unused_codes()
            )
            assert reduced.vector_count() <= 2
            # semantics: exactly the covered intervals selected
            for interval in partition.intervals:
                expected = interval in covering
                assert (
                    reduced.evaluate_value(mapping.encode(interval))
                    == expected
                )

    def test_paper_figure8_mapping(self):
        """Pin the paper's own Figure 8 encoding and its reductions.

        The functions printed in Figure 8(b) do not exploit the two
        unused codes (except for 16<=A<20, where B2B1 needs code 111
        as a don't-care).  We reproduce the exact printed expressions
        without don't-cares, then check that enabling don't-cares only
        ever matches or beats them — our reducer finds the strictly
        better ``B0`` for 8<=A<12.
        """
        fig8 = {
            "[6,8)": 0b000, "[8,10)": 0b001, "[10,12)": 0b101,
            "[12,13)": 0b100, "[13,16)": 0b010, "[16,20)": 0b110,
        }
        partition = partition_from_predicates(6, 20, PAPER_PREDICATES)
        code_of = {str(i): fig8[str(i)] for i in partition.intervals}
        dont_cares = [c for c in range(8) if c not in fig8.values()]

        printed = {
            (6, 10): "B2'B1'",
            (8, 12): "B1'B0",
            (10, 13): "B2B1'",
        }
        for (low, high), text in printed.items():
            covering = partition.covering(low, high)
            codes = [code_of[str(i)] for i in covering]
            reduced = reduce_values(codes, 3)
            assert reduced.to_string() == text
            assert reduced.vector_count() == 2

        # 16 <= A < 20 is a single interval; the paper's B2B1 uses the
        # unused code 111 as a don't-care.
        codes = [code_of["[16,20)"]]
        reduced = reduce_values(codes, 3, dont_cares=dont_cares)
        assert reduced.to_string() == "B2B1"
        assert reduced.vector_count() == 2

        # With don't-cares everywhere, we match or beat the paper.
        for low, high in PAPER_PREDICATES:
            covering = partition.covering(low, high)
            codes = [code_of[str(i)] for i in covering]
            reduced = reduce_values(codes, 3, dont_cares=dont_cares)
            assert reduced.vector_count() <= 2
