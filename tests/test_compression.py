"""Differential tests for compressed execution (ISSUE 8).

The contract under test: a compiled kernel evaluating directly on
word-aligned runs (:class:`~repro.kernels.runs.CompressedPlaneSet`)
must be bit-identical — result rows AND access accounting, the
paper's ``c_e`` — to the packed kernel and to the tree-walking
``evaluate_dnf``, for any reduced function, any plane contents, any
row ordering, and across live delta-tier writes.  Plus: token and
serialization roundtrips for compressed payloads, the
``RunLengthBitmap`` <-> ``WordAlignedBitmap`` bridge, and the reorder
pass's permutation invariants down to the ``Database`` facade.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap.bitvector import BitVector
from repro.bitmap.rle import RunLengthBitmap
from repro.bitmap.wah import WordAlignedBitmap
from repro.boolean.evaluator import AccessCounter, evaluate_dnf
from repro.boolean.reduction import reduce_values
from repro.database import Database
from repro.errors import CorruptIndexError, InvalidArgumentError
from repro.index import serialization
from repro.index.compressed import CompressedBitmapIndex
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.kernels import PlaneSet, compile_function
from repro.kernels.runs import CompressedPlaneSet
from repro.query.predicates import Equals, InList
from repro.shard.reorder import (
    ORDERINGS,
    reorder_table,
    row_permutation,
)
from repro.table.table import Table


def random_planes(rng, width, nbits):
    """Mixed-texture planes: runny, sparse, dense and random."""
    planes = []
    for i in range(width):
        texture = rng.randrange(4)
        if texture == 0:  # long fills
            bits, bit = [], rng.random() < 0.5
            while len(bits) < nbits:
                run = rng.randint(1, max(1, nbits // 3))
                bits.extend([bit] * run)
                bit = not bit
            planes.append(BitVector.from_bools(bits[:nbits]))
        elif texture == 1:  # sparse
            planes.append(
                BitVector.from_bools(
                    rng.random() < 0.02 for _ in range(nbits)
                )
            )
        elif texture == 2:  # dense
            planes.append(
                BitVector.from_bools(
                    rng.random() < 0.98 for _ in range(nbits)
                )
            )
        else:
            planes.append(
                BitVector.from_bools(
                    rng.random() < 0.5 for _ in range(nbits)
                )
            )
    return planes


# ----------------------------------------------------------------------
# randomized differential: run kernel == packed kernel == tree walk
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_run_kernel_matches_packed_and_tree_walk(data):
    width = data.draw(st.integers(min_value=1, max_value=6))
    nbits = data.draw(
        st.sampled_from([0, 1, 7, 63, 64, 65, 129, 513])
    )
    m = 1 << width
    codes = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=m - 1),
            max_size=m,
            unique=True,
        )
    )
    seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)

    function = reduce_values(codes, width)
    planes = random_planes(rng, width, nbits)
    kernel = compile_function(function)

    tree_counter = AccessCounter()
    expected = evaluate_dnf(
        function, lambda i: planes[i], nbits, tree_counter
    )
    packed_counter = AccessCounter()
    packed = kernel.evaluate(
        PlaneSet.from_vectors(planes, nbits), packed_counter
    )
    runs_counter = AccessCounter()
    runs = kernel.evaluate(
        CompressedPlaneSet.from_vectors(planes, nbits), runs_counter
    )

    assert runs == expected
    assert runs == packed
    for counter in (packed_counter, runs_counter):
        assert counter.touched == tree_counter.touched
        assert counter.reads == tree_counter.reads
        assert (
            counter.distinct_accesses == tree_counter.distinct_accesses
        )


# ----------------------------------------------------------------------
# randomized differential: every ordering selects the same rows
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_orderings_preserve_selected_rows_and_c_e(data):
    n = data.draw(st.integers(min_value=0, max_value=200))
    m = data.draw(st.sampled_from([2, 5, 16]))
    seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    values = [rng.randrange(m) for _ in range(n)]
    selected = sorted(
        rng.sample(range(m), rng.randint(1, min(4, m)))
    )
    predicate = InList("v", selected)

    reference_rows = None
    reference_cost = None
    for ordering in ORDERINGS:
        table = Table.from_columns(f"t_{ordering}", {"v": list(values)})
        perm = row_permutation(table, ["v"], ordering)
        table.apply_permutation(perm)
        for plane_format in ("packed", "compressed"):
            index = EncodedBitmapIndex(
                table, "v", plane_format=plane_format
            )
            result = index.lookup(predicate)
            original = sorted(
                perm[row] for row in range(n) if result[row]
            )
            cost = index.last_cost.vectors_accessed
            if reference_rows is None:
                reference_rows, reference_cost = original, cost
            assert original == reference_rows
            # c_e depends only on the reduced function, never on the
            # physical row order or the plane representation.
            assert cost == reference_cost


# ----------------------------------------------------------------------
# live deltas: run kernels stay exact while the delta tier is hot
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_run_kernel_exact_across_live_deltas(data):
    m = 8
    seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
    appends = data.draw(st.integers(min_value=0, max_value=40))
    rng = random.Random(seed)

    table = Table.from_columns(
        "hot", {"v": [rng.randrange(m) for _ in range(100)]}
    )
    packed_index = EncodedBitmapIndex(table, "v")
    runs_index = EncodedBitmapIndex(
        table, "v", plane_format="compressed"
    )
    table.attach(packed_index)
    table.attach(runs_index)
    for _ in range(appends):
        table.append({"v": rng.randrange(m)})

    for value in range(m):
        predicate = Equals("v", value)
        got = runs_index.lookup(predicate)
        got_cost = runs_index.last_cost.vectors_accessed
        want = packed_index.lookup(predicate)
        want_cost = packed_index.last_cost.vectors_accessed
        fresh = EncodedBitmapIndex(table, "v").lookup(predicate)
        assert list(got) == list(want) == list(fresh)
        assert got_cost == want_cost


# ----------------------------------------------------------------------
# token + bridge roundtrips
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_wah_token_and_rle_bridge_roundtrip(data):
    nbits = data.draw(
        st.sampled_from([0, 1, 63, 64, 65, 128, 200, 513])
    )
    seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    vector = random_planes(rng, 1, nbits)[0]

    wah = WordAlignedBitmap.from_bitvector(vector)
    assert (
        WordAlignedBitmap.from_tokens(wah.tokens(), nbits).to_bitvector()
        == vector
    )
    rle = RunLengthBitmap.from_bitvector(vector)
    assert rle.to_word_aligned().to_bitvector() == vector
    assert RunLengthBitmap.from_word_aligned(wah) == rle


def test_wah_from_tokens_rejects_bad_coverage():
    vector = BitVector.from_bools([True] * 100)
    tokens = WordAlignedBitmap.from_bitvector(vector).tokens()
    with pytest.raises(InvalidArgumentError):
        WordAlignedBitmap.from_tokens(tokens, 300)
    with pytest.raises(InvalidArgumentError):
        WordAlignedBitmap.from_tokens(tokens[:-1], 100)


# ----------------------------------------------------------------------
# serialization: compressed payloads through the v2 checksummed format
# ----------------------------------------------------------------------
def build_compressed_index(n=500, m=12, seed=3, nulls=True):
    rng = random.Random(seed)
    table = Table("t", ["v"])
    for _ in range(n):
        value = None if nulls and rng.random() < 0.05 else rng.randrange(m)
        table.append({"v": value})
    return table, CompressedBitmapIndex(table, "v")


def test_compressed_index_roundtrips_through_v2():
    table, index = build_compressed_index()
    payload = serialization.dumps(index)
    parsed = serialization.parse(payload)
    assert parsed.kind == "compressed"
    assert len(parsed.compressed) == len(parsed.values) + 1

    loaded = serialization.loads(payload, table)
    assert isinstance(loaded, CompressedBitmapIndex)
    for value in range(12):
        assert list(loaded.lookup(Equals("v", value))) == list(
            index.lookup(Equals("v", value))
        )


def test_compressed_payload_corruption_detected():
    _, index = build_compressed_index(n=200, seed=5)
    payload = bytearray(serialization.dumps(index))
    detected = 0
    for offset in range(20, len(payload), max(1, len(payload) // 40)):
        tampered = bytearray(payload)
        tampered[offset] ^= 0x40
        try:
            serialization.parse(bytes(tampered))
        except CorruptIndexError:
            detected += 1
    assert detected > 0


def test_compressed_index_save_load_fsck(tmp_path):
    from repro.index.verify import verify_payload

    table, index = build_compressed_index(n=300, seed=7)
    path = tmp_path / "v.ebi"
    serialization.save(index, str(path))
    report = verify_payload(path.read_bytes())
    assert report.ok, report
    assert report.vectors == index.vector_count + 1

    loaded = serialization.load(str(path), table)
    assert list(loaded.lookup(Equals("v", 3))) == list(
        index.lookup(Equals("v", 3))
    )


# ----------------------------------------------------------------------
# reorder invariants
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_row_permutation_is_a_permutation(data):
    n = data.draw(st.integers(min_value=0, max_value=120))
    seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
    ordering = data.draw(st.sampled_from(ORDERINGS))
    rng = random.Random(seed)
    table = Table.from_columns(
        "p",
        {
            "a": [rng.randrange(5) for _ in range(n)],
            "b": [rng.randrange(3) for _ in range(n)],
        },
    )
    perm = row_permutation(table, None, ordering)
    assert sorted(perm) == list(range(n))
    if ordering == "unordered":
        assert perm == list(range(n))


def test_reorder_rejects_unknown_ordering():
    table = Table.from_columns("r", {"a": [1, 2]})
    with pytest.raises(InvalidArgumentError):
        reorder_table(table, ["a"], "zigzag")


def test_reorder_remaps_void_rows():
    table = Table.from_columns("v", {"a": [3, 1, 2, 1]})
    index = EncodedBitmapIndex(table, "a")
    table.attach(index)
    table.delete(0)  # void the row holding 3
    reorder_table(table, ["a"], "lex")
    assert len(table.void_rows()) == 1
    assert index.lookup(Equals("a", 3)).count() == 0
    assert index.lookup(Equals("a", 1)).count() == 2


def test_database_reorder_persists_metadata_and_rows(tmp_path):
    db = Database()
    rng = random.Random(13)
    db.create_table(
        "sales",
        {"v": [rng.randrange(8) for _ in range(256)]},
        partitions=4,
    )
    db.create_index("sales", "v")
    db.create_index("sales", "v", kind="compressed")
    before = set(db.query("sales", InList("v", [2, 6])).row_ids())

    db.save(str(tmp_path))
    permutations = db.reorder("sales", ["v"], ordering="hist")
    assert len(permutations) == 4

    meta = db.reorder_metadata("sales")
    assert meta["ordering"] == "hist"
    assert meta["columns"] == ["v"]

    reloaded = Database.load(str(tmp_path))
    assert reloaded.reorder_metadata("sales")["ordering"] == "hist"
    after = set(reloaded.query("sales", InList("v", [2, 6])).row_ids())
    offsets = range(0, 256, 64)
    mapped = set()
    for row_id in after:
        part = min(row_id // 64, 3)
        offset = list(offsets)[part]
        mapped.add(offset + permutations[part][row_id - offset])
    assert mapped == before
