"""Unit tests for repro.bitmap.ops."""

import numpy as np
import pytest

from repro.bitmap.bitvector import BitVector
from repro.bitmap.ops import (
    and_all,
    or_all,
    packed_length,
    popcount_words,
    tail_mask,
    words_from_bools,
    xor_all,
)
from repro.errors import LengthMismatchError


class TestPackedLength:
    def test_exact_words(self):
        assert packed_length(0) == 0
        assert packed_length(64) == 1
        assert packed_length(128) == 2

    def test_partial_words(self):
        assert packed_length(1) == 1
        assert packed_length(65) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            packed_length(-1)


class TestTailMask:
    def test_full_word_when_aligned(self):
        assert int(tail_mask(64)) == 0xFFFFFFFFFFFFFFFF
        assert int(tail_mask(128)) == 0xFFFFFFFFFFFFFFFF

    def test_partial(self):
        assert int(tail_mask(1)) == 1
        assert int(tail_mask(3)) == 0b111
        assert int(tail_mask(65)) == 1


class TestPopcount:
    def test_empty(self):
        assert popcount_words(np.zeros(0, dtype=np.uint64)) == 0

    def test_known_values(self):
        words = np.array([0b1011, 0], dtype=np.uint64)
        assert popcount_words(words) == 3

    def test_full_words(self):
        words = np.full(3, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        assert popcount_words(words) == 192


class TestBulkOps:
    def setup_method(self):
        self.a = BitVector.from_bools([1, 1, 0, 0])
        self.b = BitVector.from_bools([1, 0, 1, 0])
        self.c = BitVector.from_bools([1, 1, 1, 0])

    def test_and_all(self):
        assert and_all([self.a, self.b, self.c]).to_bitstring() == "1000"

    def test_or_all(self):
        assert or_all([self.a, self.b]).to_bitstring() == "1110"

    def test_xor_all(self):
        assert xor_all([self.a, self.b, self.c]).to_bitstring() == "1000"

    def test_single_vector_identity(self):
        assert and_all([self.a]) == self.a
        assert or_all([self.a]) == self.a

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            and_all([])
        with pytest.raises(ValueError):
            or_all([])
        with pytest.raises(ValueError):
            xor_all([])

    def test_length_mismatch(self):
        with pytest.raises(LengthMismatchError):
            and_all([self.a, BitVector(5)])

    def test_inputs_unchanged(self):
        or_all([self.a, self.b])
        assert self.a.to_bitstring() == "1100"


class TestWordsFromBools:
    def test_roundtrip(self):
        bits = [True, False] * 40
        words, nbits = words_from_bools(bits)
        assert nbits == 80
        vec = BitVector._from_words(words, nbits)
        assert list(vec) == bits

    def test_empty(self):
        words, nbits = words_from_bools([])
        assert nbits == 0
        assert words.size == 0
