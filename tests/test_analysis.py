"""Unit tests for repro.analysis — the Section 2.1/3 cost models.

These tests pin every number printed in the paper.
"""

import math

import pytest

from repro.analysis.cost_models import (
    bitmap_build_cost,
    btree_build_cost,
    btree_bytes,
    btree_space_crossover,
    c_e_best,
    c_e_worst,
    c_s,
    compound_btrees_needed,
    crossover_delta,
    encoded_bitmap_bytes,
    encoded_sparsity,
    encoded_vectors,
    simple_bitmap_bytes,
    simple_expansion_cost,
    encoded_expansion_cost,
    simple_sparsity,
    simple_vectors,
    trailing_zeros,
    update_cost_no_expansion,
)
from repro.analysis.figures import (
    crossover_point,
    figure9_series,
    figure10_series,
)
from repro.analysis.savings import (
    area_ratio,
    average_saving,
    paper_reference_numbers,
    point_saving,
    worst_case_summary,
)


class TestVectorCounts:
    def test_encoded_is_log(self):
        assert encoded_vectors(12000) == 14  # the paper's example
        assert encoded_vectors(50) == 6
        assert encoded_vectors(1000) == 10

    def test_simple_is_m(self):
        assert simple_vectors(12000) == 12000

    def test_cardinality_validation(self):
        with pytest.raises(ValueError):
            encoded_vectors(1)


class TestQueryCosts:
    def test_c_s_linear(self):
        assert [c_s(d) for d in (1, 5, 50)] == [1, 5, 50]

    def test_c_e_worst_is_k(self):
        assert c_e_worst(50) == 6
        assert c_e_worst(1000) == 10

    def test_c_e_best_at_powers_of_two(self):
        """Aligned delta = 2^t drops t variables."""
        assert c_e_best(32, 50) == 1
        assert c_e_best(512, 1000) == 1
        assert c_e_best(1, 50) == 6
        assert c_e_best(2, 50) == 5

    def test_c_e_best_bounds(self):
        for delta in range(1, 51):
            assert 0 <= c_e_best(delta, 50) <= c_e_worst(50)

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            c_e_best(0, 50)
        with pytest.raises(ValueError):
            c_e_best(51, 50)

    def test_trailing_zeros(self):
        assert trailing_zeros(1) == 0
        assert trailing_zeros(8) == 3
        assert trailing_zeros(12) == 2
        with pytest.raises(ValueError):
            trailing_zeros(0)

    def test_crossover_delta(self):
        """Encoded beats simple when delta > log2 m + 1."""
        assert crossover_delta(50) == pytest.approx(math.log2(50) + 1)


class TestSpace:
    def test_simple_bitmap_formula(self):
        assert simple_bitmap_bytes(8000, 100) == 8000 * 100 / 8

    def test_encoded_bitmap_formula(self):
        assert encoded_bitmap_bytes(8000, 100) == 8000 * 7 / 8

    def test_btree_formula(self):
        assert btree_bytes(1000) == pytest.approx(
            1.44 * 1000 / 512 * 4096
        )

    def test_paper_crossover_93(self):
        """Section 2.1: p=4K, M=512 -> bitmaps win when m < 93."""
        crossover = btree_space_crossover(degree=512, page_size=4096)
        assert 92 <= crossover <= 93
        # m = 92 favours bitmap, m = 93 favours B-tree
        n = 100000
        assert simple_bitmap_bytes(n, 92) < btree_bytes(n)
        assert simple_bitmap_bytes(n, 93) > btree_bytes(n)


class TestBuildCosts:
    def test_bitmap_build_linear(self):
        assert bitmap_build_cost(1000, 5) == 5000

    def test_btree_beats_bitmap_only_at_high_m(self):
        """The paper: for small m, bitmap building is cheaper."""
        n = 100000
        assert bitmap_build_cost(n, 10) < btree_build_cost(n, 10)
        # for huge m the bitmap cost n*m explodes
        assert bitmap_build_cost(n, 100000) > btree_build_cost(n, 100000)


class TestSparsity:
    def test_simple_sparsity_formula(self):
        assert simple_sparsity(100) == 0.99
        assert simple_sparsity(2) == 0.5

    def test_encoded_sparsity_constant(self):
        assert encoded_sparsity() == 0.5


class TestMaintenance:
    def test_no_expansion_is_h(self):
        assert update_cost_no_expansion(14) == 14

    def test_simple_expansion_linear_in_n(self):
        assert simple_expansion_cost(10**6, 100) > 10**6

    def test_encoded_expansion_bounds(self):
        cheap = encoded_expansion_cost(10**6, 100, grows_width=False)
        costly = encoded_expansion_cost(10**6, 100, grows_width=True)
        assert cheap == encoded_vectors(100)
        assert costly > 10**6


class TestCooperativity:
    def test_compound_btrees_exponential(self):
        """Section 2.1: n attributes need 2^n - 1 compound B-trees."""
        assert compound_btrees_needed(1) == 1
        assert compound_btrees_needed(5) == 31
        assert compound_btrees_needed(10) == 1023

    def test_validation(self):
        with pytest.raises(ValueError):
            compound_btrees_needed(0)


class TestFigure9:
    def test_series_shape(self):
        rows = figure9_series(50)
        assert len(rows) == 50
        assert all(row.c_e_worst == 6 for row in rows)
        assert [row.c_s for row in rows] == list(range(1, 51))

    def test_custom_deltas(self):
        rows = figure9_series(1000, deltas=[1, 512])
        assert rows[1].c_e_best == 1

    def test_encoded_wins_beyond_crossover(self):
        rows = figure9_series(50)
        for row in rows:
            if row.delta > 6:
                assert row.encoded_wins

    def test_crossover_point(self):
        assert crossover_point(50) == 7  # first delta with c_s > 6
        assert crossover_point(1000) == 11


class TestFigure10:
    def test_series(self):
        rows = figure10_series([2, 50, 1000, 12000])
        assert [r.simple_vectors for r in rows] == [2, 50, 1000, 12000]
        assert [r.encoded_vectors for r in rows] == [1, 6, 10, 14]

    def test_log_vs_linear_growth(self):
        rows = figure10_series(range(2, 1025))
        assert rows[-1].simple_vectors == 1024
        assert rows[-1].encoded_vectors == 10


class TestSection32:
    """Every number in the paper's worst-case analysis."""

    def test_area_ratio_m50(self):
        assert area_ratio(50) == pytest.approx(0.84, abs=0.005)

    def test_area_ratio_m1000(self):
        assert area_ratio(1000) == pytest.approx(0.90, abs=0.005)

    def test_average_savings(self):
        assert average_saving(50) == pytest.approx(0.16, abs=0.005)
        assert average_saving(1000) == pytest.approx(0.10, abs=0.005)

    def test_point_saving_83_percent(self):
        assert point_saving(32, 50) == pytest.approx(0.833, abs=0.001)

    def test_point_saving_90_percent(self):
        assert point_saving(512, 1000) == pytest.approx(0.90, abs=0.001)

    def test_summary(self):
        summary = worst_case_summary(50)
        assert summary.k == 6
        assert summary.best_delta == 32
        assert summary.best_saving == pytest.approx(0.833, abs=0.001)

    def test_reference_numbers_present(self):
        refs = paper_reference_numbers()
        assert refs["tpcd_range_queries"] == 12
        assert refs["btree_space_crossover_m"] == 93
