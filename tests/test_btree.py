"""Unit tests for repro.index.btree."""

import random

import pytest

from repro.index.btree import BPlusTreeIndex
from repro.query.predicates import Equals, InList, IsNull, Range
from repro.table.table import Table
from tests.conftest import matching_rows


@pytest.fixture
def int_table():
    table = Table("t", ["k"])
    rng = random.Random(11)
    for _ in range(600):
        table.append({"k": rng.randrange(200)})
    return table


class TestBuild:
    def test_default_fanout_matches_paper(self, int_table):
        """p=4K, entry 8 bytes -> M=512 (Section 2.1 parameters)."""
        index = BPlusTreeIndex(int_table, "k")
        assert index.fanout == 512

    def test_small_fanout_grows_height(self, int_table):
        index = BPlusTreeIndex(int_table, "k", fanout=4, page_size=64)
        assert index.height > 1
        assert index.node_count > 1

    def test_keys_sorted(self, int_table):
        index = BPlusTreeIndex(int_table, "k", fanout=8, page_size=256)
        keys = index.keys()
        assert keys == sorted(keys)
        assert set(keys) == int_table.column("k").distinct_values()


class TestLookup:
    @pytest.mark.parametrize("fanout,page", [(4, 64), (16, 512), (512, 4096)])
    def test_equals(self, int_table, fanout, page):
        index = BPlusTreeIndex(int_table, "k", fanout=fanout, page_size=page)
        pred = Equals("k", 42)
        assert sorted(index.lookup(pred).indices().tolist()) == (
            matching_rows(int_table, pred)
        )

    def test_equals_cost_is_height(self, int_table):
        index = BPlusTreeIndex(int_table, "k", fanout=4, page_size=64)
        index.lookup(Equals("k", 50))
        assert index.last_cost.node_accesses == index.height

    def test_in_list(self, int_table):
        index = BPlusTreeIndex(int_table, "k", fanout=8, page_size=128)
        pred = InList("k", [1, 50, 199])
        assert sorted(index.lookup(pred).indices().tolist()) == (
            matching_rows(int_table, pred)
        )

    def test_range(self, int_table):
        index = BPlusTreeIndex(int_table, "k", fanout=8, page_size=128)
        for pred in [
            Range("k", 10, 60),
            Range("k", None, 30),
            Range("k", 150, None),
            Range("k", 10, 60, low_inclusive=False, high_inclusive=False),
        ]:
            assert sorted(index.lookup(pred).indices().tolist()) == (
                matching_rows(int_table, pred)
            )

    def test_range_cost_grows_with_width(self, int_table):
        index = BPlusTreeIndex(int_table, "k", fanout=4, page_size=64)
        index.lookup(Range("k", 0, 10))
        narrow = index.last_cost.node_accesses
        index.lookup(Range("k", 0, 150))
        wide = index.last_cost.node_accesses
        assert wide > narrow

    def test_missing_key(self, int_table):
        index = BPlusTreeIndex(int_table, "k")
        assert index.lookup(Equals("k", 99999)).count() == 0

    def test_nulls_fall_back_to_scan(self):
        table = Table("t", ["k"])
        for value in [1, None, 2]:
            table.append({"k": value})
        index = BPlusTreeIndex(table, "k")
        assert index.lookup(IsNull("k")).indices().tolist() == [1]


class TestSpace:
    def test_space_independent_of_cardinality(self):
        """The paper's point: B-tree space ~ 1.44 n/M * p depends on n,
        not on m — unlike simple bitmaps."""
        def build(m):
            table = Table("t", ["k"])
            rng = random.Random(5)
            for _ in range(2000):
                table.append({"k": rng.randrange(m)})
            return BPlusTreeIndex(table, "k", fanout=64, page_size=512)

        low_card = build(10)
        high_card = build(1000)
        ratio = high_card.nbytes() / low_card.nbytes()
        assert 0.3 < ratio < 3.0

    def test_nbytes_counts_pages(self, int_table):
        index = BPlusTreeIndex(int_table, "k", fanout=8, page_size=128)
        assert index.nbytes() >= index.node_count * 128


class TestMaintenance:
    def test_append(self, int_table):
        index = BPlusTreeIndex(int_table, "k", fanout=8, page_size=128)
        int_table.attach(index)
        row_id = int_table.append({"k": 42})
        assert row_id in index.lookup(Equals("k", 42)).indices().tolist()

    def test_delete(self, int_table):
        index = BPlusTreeIndex(int_table, "k", fanout=8, page_size=128)
        int_table.attach(index)
        target = matching_rows(int_table, Equals("k", 42))[0]
        int_table.delete(target)
        assert target not in index.lookup(Equals("k", 42)).indices().tolist()

    def test_update(self, int_table):
        index = BPlusTreeIndex(int_table, "k", fanout=8, page_size=128)
        int_table.attach(index)
        target = matching_rows(int_table, Equals("k", 42))[0]
        int_table.update(target, "k", 777)
        assert target in index.lookup(Equals("k", 777)).indices().tolist()
        assert target not in index.lookup(Equals("k", 42)).indices().tolist()

    def test_many_random_inserts_stay_consistent(self):
        table = Table("t", ["k"])
        index = BPlusTreeIndex(table, "k", fanout=4, page_size=64)
        table.attach(index)
        rng = random.Random(3)
        inserted = {}
        for _ in range(500):
            key = rng.randrange(100)
            row_id = table.append({"k": key})
            inserted.setdefault(key, []).append(row_id)
        for key, rows in list(inserted.items())[:20]:
            assert sorted(
                index.lookup(Equals("k", key)).indices().tolist()
            ) == sorted(rows)
