"""Unit tests for repro.index.encoded_bitmap — the paper's index."""

import math

import pytest

from repro.encoding.mapping import NULL, VOID, MappingTable
from repro.errors import IndexBuildError
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.query.predicates import Equals, InList, IsNull, Range
from tests.conftest import matching_rows


class TestBuild:
    def test_width_is_log2_of_domain(self, sales_table):
        index = EncodedBitmapIndex(sales_table, "product")
        m = sales_table.column("product").cardinality()
        # +1 for the VOID sentinel
        assert index.width == math.ceil(math.log2(m + 1))

    def test_12000_products_needs_14_vectors(self):
        """The paper's headline example (Section 2.2)."""
        from repro.encoding.mapping import code_width

        assert code_width(12000) == 14

    def test_vectors_encode_codes(self, abc_table):
        index = EncodedBitmapIndex(abc_table, "A")
        column = abc_table.column("A")
        for row_id in range(len(abc_table)):
            code = index.mapping.encode(column[row_id])
            for i in range(index.width):
                assert index.vector(i)[row_id] == bool((code >> i) & 1)

    def test_custom_mapping(self, abc_table):
        mapping = MappingTable.from_pairs(
            [("a", 0b00), ("b", 0b01), ("c", 0b10)], width=2
        )
        index = EncodedBitmapIndex(
            abc_table, "A", encoding=mapping, void_mode="vector"
        )
        assert index.width == 2

    def test_mapping_must_cover_domain(self, abc_table):
        mapping = MappingTable.from_pairs([("a", 1)], width=2)
        with pytest.raises(IndexBuildError):
            EncodedBitmapIndex(abc_table, "A", encoding=mapping)

    def test_void_zero_conflict_detected(self, abc_table):
        mapping = MappingTable.from_pairs(
            [("a", 0), ("b", 1), ("c", 2)], width=2
        )
        with pytest.raises(IndexBuildError):
            EncodedBitmapIndex(abc_table, "A", encoding=mapping,
                               void_mode="encode")

    def test_invalid_modes(self, abc_table):
        with pytest.raises(ValueError):
            EncodedBitmapIndex(abc_table, "A", void_mode="bogus")
        with pytest.raises(ValueError):
            EncodedBitmapIndex(abc_table, "A", null_mode="bogus")


class TestLookup:
    def test_equals(self, abc_table):
        index = EncodedBitmapIndex(abc_table, "A")
        result = index.lookup(Equals("A", "a"))
        assert result.indices().tolist() == [0, 4]

    def test_in_list_correct(self, sales_table):
        index = EncodedBitmapIndex(sales_table, "product")
        pred = InList("product", [100, 105, 110, 120])
        assert sorted(index.lookup(pred).indices().tolist()) == (
            matching_rows(sales_table, pred)
        )

    def test_range_correct(self, sales_table):
        index = EncodedBitmapIndex(sales_table, "qty")
        pred = Range("qty", 5, 25)
        assert sorted(index.lookup(pred).indices().tolist()) == (
            matching_rows(sales_table, pred)
        )

    def test_cost_bounded_by_width(self, sales_table):
        """c_e <= ceil(log2 m) always (Section 3.1)."""
        index = EncodedBitmapIndex(sales_table, "product")
        domain = sorted(sales_table.column("product").distinct_values())
        for delta in (1, 2, 5, 10, 20, len(domain)):
            index.lookup(InList("product", domain[:delta]))
            assert index.last_cost.vectors_accessed <= index.width

    def test_reduction_lowers_cost(self, abc_table):
        """Figure 1: A=a OR A=b reduces to B1' -> one vector."""
        mapping = MappingTable.from_pairs(
            [("a", 0b00), ("b", 0b01), ("c", 0b10)], width=2
        )
        index = EncodedBitmapIndex(
            abc_table, "A", encoding=mapping, void_mode="vector",
            null_mode="vector",
        )
        result = index.lookup(InList("A", ["a", "b"]))
        assert result.indices().tolist() == [0, 1, 3, 4]
        # B1' plus the existence vector in 'vector' mode
        assert index.last_cost.vectors_accessed == 2

    def test_theorem21_no_existence_access(self, abc_table):
        """Theorem 2.1: with void encoded at 0, selections never pay
        an existence-vector access; with an explicit existence vector
        every selection pays exactly one extra access."""
        encoded = EncodedBitmapIndex(abc_table, "A")  # void_mode=encode
        explicit = EncodedBitmapIndex(abc_table, "A", void_mode="vector")

        encoded.lookup(InList("A", ["a", "b"]))
        assert (
            encoded.last_cost.vectors_accessed
            == encoded.reduced_function(["a", "b"]).vector_count()
        )

        explicit.lookup(InList("A", ["a", "b"]))
        assert (
            explicit.last_cost.vectors_accessed
            == explicit.reduced_function(["a", "b"]).vector_count() + 1
        )

    def test_theorem21_select_all_existing(self):
        """Selecting every live value under the reserve-0 encoding
        reduces to 'any vector set' without an existence conjunct, and
        still excludes deleted rows."""
        from repro.table.table import Table

        table = Table("t", ["A"])
        for value in ["p", "q", "r", "p", "q"]:
            table.append({"A": value})
        index = EncodedBitmapIndex(table, "A")
        table.attach(index)
        table.delete(0)
        result = index.lookup(InList("A", ["p", "q", "r"]))
        assert result.indices().tolist() == [1, 2, 3, 4]
        table.detach(index)

    def test_unknown_values_ignored(self, abc_table):
        index = EncodedBitmapIndex(abc_table, "A")
        result = index.lookup(InList("A", ["zzz", "a"]))
        assert result.indices().tolist() == [0, 4]

    def test_all_unknown_returns_empty(self, abc_table):
        index = EncodedBitmapIndex(abc_table, "A")
        assert index.lookup(Equals("A", "q")).count() == 0
        assert index.last_cost.vectors_accessed == 0

    def test_null_encoded_mode(self):
        from repro.table.table import Table

        table = Table("t", ["A"])
        for value in ["x", None, "y", None, "x"]:
            table.append({"A": value})
        index = EncodedBitmapIndex(table, "A")
        assert index.lookup(IsNull("A")).indices().tolist() == [1, 3]
        # non-null lookups unaffected
        assert index.lookup(Equals("A", "x")).indices().tolist() == [0, 4]

    def test_null_vector_mode(self):
        from repro.table.table import Table

        table = Table("t", ["A"])
        for value in ["x", None, "y"]:
            table.append({"A": value})
        index = EncodedBitmapIndex(table, "A", null_mode="vector")
        assert index.lookup(IsNull("A")).indices().tolist() == [1]
        assert index.last_cost.vectors_accessed == 1


class TestRetrievalFunctions:
    def test_minterm_per_value(self, abc_table):
        """Definition 2.1: f_alpha is a k-variable minterm."""
        index = EncodedBitmapIndex(abc_table, "A")
        for value in "abc":
            function = index.retrieval_function(value)
            assert len(function.terms) == 1
            assert function.terms[0].literal_count() == index.width

    def test_reduced_function_cached(self, abc_table):
        index = EncodedBitmapIndex(abc_table, "A")
        first = index.reduced_function(["a", "b"])
        second = index.reduced_function(["b", "a"])
        assert first is second  # order-insensitive cache hit


class TestDensity:
    def test_density_near_half(self):
        """Section 3.1: encoded vectors are ~1/2 dense regardless of m."""
        import random

        from repro.table.table import Table

        rng = random.Random(0)
        table = Table("t", ["A"])
        for _ in range(4000):
            table.append({"A": rng.randrange(63)})
        index = EncodedBitmapIndex(table, "A")
        assert index.average_density() == pytest.approx(0.5, abs=0.1)


class TestMaintenance:
    def test_append_without_expansion(self, abc_table):
        """Figure 2 narrative: appending A=b only appends bits."""
        index = EncodedBitmapIndex(abc_table, "A")
        abc_table.attach(index)
        width = index.width
        abc_table.append({"A": "b"})
        assert index.width == width
        assert index.lookup(Equals("A", "b")).indices().tolist() == [
            1, 3, 6,
        ]

    def test_append_with_domain_expansion_no_new_vector(self, abc_table):
        """Figure 2(a): 4th value still fits the width (with VOID the
        width is already 2 bits for {VOID,a,b,c} -> adding d grows to
        3 bits; use explicit no-void index to match the figure)."""
        mapping = MappingTable.from_pairs(
            [("a", 0), ("b", 1), ("c", 2)], width=2
        )
        index = EncodedBitmapIndex(
            abc_table, "A", encoding=mapping, void_mode="vector"
        )
        abc_table.attach(index)
        abc_table.append({"A": "d"})
        assert index.width == 2
        assert index.mapping.encode("d") == 3
        assert index.lookup(Equals("A", "d")).indices().tolist() == [6]
        abc_table.detach(index)

    def test_append_with_new_vector(self, abc_table):
        """Figure 2(b): 5th value forces a new bitmap vector."""
        mapping = MappingTable.from_pairs(
            [("a", 0), ("b", 1), ("c", 2), ("d", 3)], width=2
        )
        table = abc_table
        index = EncodedBitmapIndex(
            table, "A", encoding=mapping, void_mode="vector"
        )
        table.attach(index)
        table.append({"A": "e"})
        assert index.width == 3
        assert index.mapping.encode("e") == 4
        # all old values still retrievable (functions revised)
        assert index.lookup(Equals("A", "a")).indices().tolist() == [0, 4]
        assert index.lookup(Equals("A", "e")).indices().tolist() == [6]
        table.detach(index)

    def test_update(self, abc_table):
        index = EncodedBitmapIndex(abc_table, "A")
        abc_table.attach(index)
        abc_table.update(0, "A", "c")
        assert index.lookup(Equals("A", "c")).indices().tolist() == [
            0, 2, 5,
        ]
        abc_table.detach(index)

    def test_delete_writes_void_code(self, abc_table):
        index = EncodedBitmapIndex(abc_table, "A")
        abc_table.attach(index)
        abc_table.delete(2)
        # row 2 now carries code 0 in every vector
        for i in range(index.width):
            assert not index.vector(i)[2]
        result = index.lookup(Equals("A", "c"))
        assert result.indices().tolist() == [5]
        abc_table.detach(index)

    def test_delete_with_existence_vector(self, abc_table):
        index = EncodedBitmapIndex(abc_table, "A", void_mode="vector")
        abc_table.attach(index)
        abc_table.delete(2)
        result = index.lookup(Equals("A", "c"))
        assert result.indices().tolist() == [5]
        abc_table.detach(index)

    def test_expansion_invalidates_cache(self, abc_table):
        mapping = MappingTable.from_pairs(
            [("a", 0), ("b", 1), ("c", 2)], width=2
        )
        index = EncodedBitmapIndex(
            abc_table, "A", encoding=mapping, void_mode="vector"
        )
        abc_table.attach(index)
        before = index.reduced_function(["a", "b", "c"])
        abc_table.append({"A": "d"})  # code 3 no longer a don't-care
        after = index.reduced_function(["a", "b", "c"])
        # the old reduction treated 3 as DC and may have covered it;
        # the new one must exclude d's code
        assert not after.evaluate_value(3)
        abc_table.detach(index)

    def test_nbytes_logarithmic(self, sales_table):
        encoded = EncodedBitmapIndex(sales_table, "product")
        from repro.index.simple_bitmap import SimpleBitmapIndex

        simple = SimpleBitmapIndex(sales_table, "product")
        assert encoded.nbytes() < simple.nbytes()
