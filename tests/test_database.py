"""Tests for the repro.Database facade: construction, querying,
persistence round-trips, and the fsck/degraded quarantine loop."""

import json
import os
import random

import pytest

from repro.database import Database
from repro.errors import CorruptIndexError, SchemaError
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.query.options import QueryOptions
from repro.query.predicates import Equals, InList, Range
from repro.shard.executor import PartitionedQueryResult
from repro.table.catalog import Catalog
from repro.table.table import Table
from tests.conftest import matching_rows


def reference_rows(db, table_name, predicate):
    """Row ids by brute force against the facade's own table."""
    table = db.table(table_name)
    return [
        row_id
        for row_id in range(len(table))
        if not table.is_void(row_id)
        and predicate.matches(table.row(row_id))
    ]


def make_db(nrows=500, partitions=4, seed=11):
    rng = random.Random(seed)
    db = Database()
    db.create_table(
        "sales",
        {
            "product": [rng.randrange(25) for _ in range(nrows)],
            "qty": [rng.randrange(100) for _ in range(nrows)],
        },
        partitions=partitions,
    )
    db.create_index("sales", "product")
    db.create_table("dim", {"k": ["x", "y", "z", "x"]})
    db.create_index("dim", "k")
    return db


class TestConstruction:
    def test_tables_and_partitioning(self):
        db = make_db()
        assert db.tables() == ["dim", "sales"]
        assert db.is_partitioned("sales")
        assert not db.is_partitioned("dim")
        assert len(db.table("sales")) == 500

    def test_empty_schema_table(self):
        db = Database()
        table = db.create_table("t", ["a", "b"])
        assert len(table) == 0
        table.append({"a": 1, "b": 2})
        assert table.row(0) == {"a": 1, "b": 2}

    def test_no_columns_rejected(self):
        db = Database()
        with pytest.raises(SchemaError):
            db.create_table("t", {})

    def test_unknown_index_kind_rejected(self):
        db = make_db()
        with pytest.raises(Exception):
            db.create_index("dim", "k", kind="no-such-kind")

    def test_from_catalog_wraps_existing_indexes(self):
        catalog = Catalog()
        table = Table.from_columns("t", {"v": ["a", "b", "a", "c"]})
        catalog.register_table(table)
        catalog.register_index(EncodedBitmapIndex(table, "v"))
        db = Database.from_catalog(catalog)
        result = db.query("t", Equals("v", "a"))
        assert result.row_ids() == [0, 2]
        assert "t.v" in db.fsck()


class TestQueries:
    def test_partitioned_query_matches_reference(self):
        db = make_db()
        for predicate in (
            Equals("product", 7),
            InList("product", [2, 9, 24]),
            Range("qty", 30, 70),
        ):
            result = db.query("sales", predicate)
            assert isinstance(result, PartitionedQueryResult)
            assert result.row_ids() == reference_rows(
                db, "sales", predicate
            )

    def test_plain_query_matches_reference(self):
        db = make_db()
        result = db.query("dim", InList("k", ["x", "z"]))
        assert result.row_ids() == [0, 2, 3]

    def test_workers_override_is_deterministic(self):
        db = make_db()
        predicate = Equals("product", 3)
        db.query("sales", predicate)  # warm reduction caches
        one = db.query("sales", predicate, QueryOptions(workers=1))
        four = db.query("sales", predicate, QueryOptions(workers=4))
        assert one.vector == four.vector
        assert one.metrics == four.metrics

    def test_query_many_matches_single_queries(self):
        db = make_db()
        predicates = [
            Equals("product", 3),
            Range("qty", 10, 40),
            Equals("product", 3),
        ]
        for name in ("sales", "dim"):
            preds = (
                predicates
                if name == "sales"
                else [Equals("k", "x"), Equals("k", "x")]
            )
            batch = db.query_many(name, preds)
            assert len(batch) == len(preds)
            for predicate, result in zip(preds, batch):
                solo = db.query(name, predicate)
                assert result.row_ids() == solo.row_ids()

    def test_explain_both_shapes(self):
        db = make_db()
        parted = db.explain("sales", Equals("product", 1))
        assert "PARTITIONED QUERY PLAN" in parted
        plain = db.explain("dim", Equals("k", "x"))
        assert "PARTITIONED" not in plain

    def test_trace_round_trip(self):
        db = make_db()
        result = db.query(
            "sales", Equals("product", 1), QueryOptions(trace=True)
        )
        assert result.trace is not None
        assert "PARTITIONED" in result.trace.plan_text


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        db = make_db()
        predicate = InList("product", [2, 9, 24])
        expected = db.query("sales", predicate).row_ids()
        db.save(str(tmp_path))

        assert (tmp_path / "manifest.json").exists()
        for i in range(4):
            assert (tmp_path / f"sales.product.p{i}.ebi").exists()
        assert (tmp_path / "dim.k.ebi").exists()

        loaded = Database.load(str(tmp_path))
        assert loaded.is_partitioned("sales")
        result = loaded.query("sales", predicate)
        assert result.row_ids() == expected
        assert not result.degraded
        assert loaded.query("dim", Equals("k", "x")).row_ids() == [0, 3]

    def test_bounds_survive_append_heavy_tables(self, tmp_path):
        # Appends only grow the last partition, so re-deriving bounds
        # from (nrows, partitions) on load would split differently;
        # the manifest must carry the bounds explicitly.
        db = Database()
        db.create_table(
            "t", {"v": [i % 5 for i in range(128)]}, partitions=2
        )
        table = db.table("t")
        for i in range(100):
            table.append({"v": i % 5})
        db.create_index("t", "v")
        before = [p.offset for p in table.partitions]
        expected = db.query("t", Equals("v", 3)).row_ids()

        db.save(str(tmp_path))
        loaded = Database.load(str(tmp_path))
        reloaded = loaded.table("t")
        assert [p.offset for p in reloaded.partitions] == before
        assert [len(p) for p in reloaded.partitions] == [
            len(p) for p in table.partitions
        ]
        assert loaded.query("t", Equals("v", 3)).row_ids() == expected

    def test_void_rows_survive_round_trip(self, tmp_path):
        db = make_db()
        db.table("sales").delete(70)
        db.table("dim").delete(1)
        db.save(str(tmp_path))
        loaded = Database.load(str(tmp_path))
        assert loaded.table("sales").is_void(70)
        assert loaded.query("dim", Equals("k", "y")).row_ids() == []

    def test_version_mismatch_rejected(self, tmp_path):
        db = make_db()
        db.save(str(tmp_path))
        manifest = tmp_path / "manifest.json"
        payload = json.loads(manifest.read_text())
        payload["version"] = 99
        manifest.write_text(json.dumps(payload))
        with pytest.raises(CorruptIndexError):
            Database.load(str(tmp_path))


class TestDegradedLoop:
    """build → save → corrupt one partition → load → degraded query →
    fsck lifts the quarantine → clean re-query."""

    def corrupt(self, tmp_path, name="sales.product.p2.ebi"):
        path = os.path.join(str(tmp_path), name)
        with open(path, "r+b") as handle:
            handle.seek(50)
            byte = handle.read(1)
            handle.seek(50)
            handle.write(bytes([byte[0] ^ 0xFF]))

    def test_corrupt_partition_surfaces_degraded(self, tmp_path):
        db = make_db()
        predicate = InList("product", [2, 9, 24])
        expected = db.query("sales", predicate).row_ids()
        db.save(str(tmp_path))
        self.corrupt(tmp_path)

        loaded = Database.load(str(tmp_path))
        result = loaded.query("sales", predicate)
        # Correct answer anyway: the damaged partition fell back to a
        # scan, and only that slice reports degraded.
        assert result.row_ids() == expected
        assert result.degraded
        assert [s.degraded for s in result.partitions] == [
            False,
            False,
            True,
            False,
        ]

    def test_fsck_lifts_quarantine(self, tmp_path):
        db = make_db()
        predicate = InList("product", [2, 9, 24])
        expected = db.query("sales", predicate).row_ids()
        db.save(str(tmp_path))
        self.corrupt(tmp_path)

        loaded = Database.load(str(tmp_path))
        assert loaded.query("sales", predicate).degraded
        reports = loaded.fsck()
        # The quarantined child was rebuilt fresh from the column on
        # load, so the audit passes and clears the flag.
        assert all(report.ok for report in reports.values())
        assert "sales.product.p2" in reports
        result = loaded.query("sales", predicate)
        assert not result.degraded
        assert result.row_ids() == expected

    def test_missing_payload_also_degrades(self, tmp_path):
        db = make_db()
        db.save(str(tmp_path))
        os.remove(os.path.join(str(tmp_path), "sales.product.p1.ebi"))
        loaded = Database.load(str(tmp_path))
        result = loaded.query("sales", Equals("product", 5))
        assert result.degraded
        assert result.row_ids() == reference_rows(
            loaded, "sales", Equals("product", 5)
        )

    def test_fsck_repair_rebuilds_damaged_vectors(self):
        db = make_db()
        child = None
        for candidate in db._encoded_indexes():
            if candidate[0] == "sales.product.p0":
                child = candidate[1]
        assert child is not None
        # Flip one bit in one bitmap vector: fsck must notice, repair
        # must rebuild it from the base column.
        child._vectors[0][3] = not child._vectors[0][3]
        reports = db.fsck()
        assert not reports["sales.product.p0"].ok
        reports = db.fsck(repair=True)
        assert reports["sales.product.p0"].ok
        predicate = Equals("product", 5)
        result = db.query("sales", predicate)
        assert not result.degraded
        assert result.row_ids() == reference_rows(db, "sales", predicate)
