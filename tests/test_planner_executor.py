"""Unit tests for repro.query.planner and repro.query.executor."""

import pytest

from repro.index.btree import BPlusTreeIndex
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.query.executor import Executor
from repro.query.planner import Planner
from repro.query.predicates import Equals, InList, IsNull, Range
from repro.table.catalog import Catalog
from tests.conftest import matching_rows


@pytest.fixture
def catalog(sales_table):
    catalog = Catalog()
    catalog.register_table(sales_table)
    catalog.register_index(SimpleBitmapIndex(sales_table, "region"))
    catalog.register_index(EncodedBitmapIndex(sales_table, "product"))
    catalog.register_index(SimpleBitmapIndex(sales_table, "product"))
    catalog.register_index(
        BPlusTreeIndex(sales_table, "qty", fanout=8, page_size=128)
    )
    return catalog


class TestPlanner:
    def test_single_leaf_plan(self, catalog, sales_table):
        planner = Planner(catalog)
        plan = planner.plan(sales_table, Equals("region", "N"))
        assert not plan.fallback_scan
        assert len(plan.steps) == 1
        assert plan.steps[0].index.kind == "simple-bitmap"

    def test_point_query_prefers_simple_bitmap(self, catalog, sales_table):
        """Paper: single-value selections favour simple bitmaps
        (cost 1 vs up to k)."""
        planner = Planner(catalog)
        plan = planner.plan(sales_table, Equals("product", 105))
        assert plan.steps[0].index.kind == "simple-bitmap"

    def test_wide_range_prefers_encoded(self, catalog, sales_table):
        """Paper: delta > log2 m + 1 favours the encoded bitmap."""
        planner = Planner(catalog)
        domain = sorted(sales_table.column("product").distinct_values())
        plan = planner.plan(
            sales_table, InList("product", domain[:20])
        )
        assert plan.steps[0].index.kind == "encoded-bitmap"

    def test_composite_plan_has_step_per_leaf(self, catalog, sales_table):
        planner = Planner(catalog)
        pred = Equals("region", "N") & Range("qty", 1, 10)
        plan = planner.plan(sales_table, pred)
        assert len(plan.steps) == 2
        kinds = {step.index.kind for step in plan.steps}
        assert kinds == {"simple-bitmap", "btree"}

    def test_unindexed_column_falls_back_to_scan(self, catalog, sales_table):
        planner = Planner(catalog)
        # qty has only a btree which supports Range/Equals; IsNull is
        # supported too, so use a table without any index instead
        from repro.table.table import Table

        bare = Table("bare", ["x"])
        bare.append({"x": 1})
        catalog.register_table(bare)
        plan = planner.plan(bare, Equals("x", 1))
        assert plan.fallback_scan

    def test_describe(self, catalog, sales_table):
        planner = Planner(catalog)
        plan = planner.plan(sales_table, Equals("region", "N"))
        text = plan.describe()
        assert "region" in text
        assert "simple-bitmap" in text


class TestExecutor:
    @pytest.mark.parametrize(
        "pred_factory",
        [
            lambda: Equals("region", "N"),
            lambda: InList("product", [100, 105, 110]),
            lambda: Range("qty", 10, 30),
            lambda: Equals("region", "N") & Range("qty", 1, 25),
            lambda: (Equals("region", "N") | Equals("region", "S"))
            & InList("product", [100, 101, 102, 103]),
            lambda: ~Equals("region", "N"),
        ],
    )
    def test_results_match_scan(self, catalog, sales_table, pred_factory):
        predicate = pred_factory()
        executor = Executor(catalog)
        result = executor.select(sales_table, predicate)
        assert result.row_ids() == matching_rows(sales_table, predicate)
        assert not result.used_scan

    def test_cost_accumulates(self, catalog, sales_table):
        executor = Executor(catalog)
        result = executor.select(
            sales_table,
            Equals("region", "N") & InList("product", [100, 101]),
        )
        assert result.cost.vectors_accessed >= 2

    def test_scan_fallback_matches(self, catalog, sales_table):
        from repro.table.table import Table

        bare = Table("bare2", ["x"])
        for i in range(10):
            bare.append({"x": i % 3})
        catalog.register_table(bare)
        executor = Executor(catalog)
        predicate = Equals("x", 1)
        result = executor.select(bare, predicate)
        assert result.used_scan
        assert result.row_ids() == matching_rows(bare, predicate)
        assert result.cost.rows_checked == 10

    def test_cooperativity_multi_attribute(self, catalog, sales_table):
        """Section 2.1: separate single-attribute bitmap indexes combine
        via AND — no compound index needed."""
        executor = Executor(catalog)
        predicate = (
            Equals("region", "W")
            & InList("product", [100, 101, 102])
            & Range("qty", 1, 40)
        )
        result = executor.select(sales_table, predicate)
        assert result.row_ids() == matching_rows(sales_table, predicate)

    def test_count_and_rows(self, catalog, sales_table):
        executor = Executor(catalog)
        result = executor.select(sales_table, Equals("region", "E"))
        assert result.count() == len(result.row_ids())


class TestAggregatePushdown:
    def test_count_matches_scan(self, catalog, sales_table):
        executor = Executor(catalog)
        pred = Range("qty", 10, 30)
        expected = float(len(matching_rows(sales_table, pred)))
        assert executor.aggregate(
            sales_table, "count", "product", pred
        ) == expected

    def test_sum_matches_scan(self, catalog, sales_table):
        executor = Executor(catalog)
        expected = float(
            sum(row["product"] for row in sales_table.scan())
        )
        assert executor.aggregate(
            sales_table, "sum", "product"
        ) == expected

    def test_avg_with_predicate(self, catalog, sales_table):
        executor = Executor(catalog)
        pred = Equals("region", "N")
        values = [
            sales_table.row(r)["product"]
            for r in matching_rows(sales_table, pred)
        ]
        expected = sum(values) / len(values)
        got = executor.aggregate(sales_table, "avg", "product", pred)
        assert got == pytest.approx(expected)

    def test_median(self, catalog, sales_table):
        executor = Executor(catalog)
        values = sorted(
            row["product"] for row in sales_table.scan()
        )
        expected = float(values[(len(values) - 1) // 2])
        assert executor.aggregate(
            sales_table, "median", "product"
        ) == expected

    def test_scan_fallback_for_unindexed_column(self, catalog,
                                                sales_table):
        executor = Executor(catalog)
        # qty only has a B-tree -> scan fallback path
        expected = float(
            sum(row["qty"] for row in sales_table.scan())
        )
        assert executor.aggregate(
            sales_table, "sum", "qty"
        ) == expected

    def test_unknown_function_rejected(self, catalog, sales_table):
        from repro.errors import QueryError

        executor = Executor(catalog)
        with pytest.raises(QueryError):
            executor.aggregate(sales_table, "stddev", "product")
