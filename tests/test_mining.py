"""Unit tests for repro.encoding.mining (encodings from query logs)."""

import pytest

from repro.encoding.heuristics import encoding_cost, random_encoding
from repro.encoding.mining import (
    encoding_from_history,
    extract_subdomains,
    mine_workload,
)
from repro.query.predicates import Equals, InList, IsNull, Range

DOMAIN = list(range(16))


class TestExtractSubdomains:
    def test_in_list(self):
        found = extract_subdomains(InList("v", [3, 1, 2]), "v", DOMAIN)
        assert found == [(1, 2, 3)]

    def test_range_rewritten_to_values(self):
        found = extract_subdomains(Range("v", 4, 7), "v", DOMAIN)
        assert found == [(4, 5, 6, 7)]

    def test_equals(self):
        assert extract_subdomains(Equals("v", 9), "v", DOMAIN) == [(9,)]

    def test_other_columns_ignored(self):
        assert extract_subdomains(Equals("w", 9), "v", DOMAIN) == []

    def test_composite_predicates_descend(self):
        predicate = (InList("v", [1, 2]) & Equals("w", 0)) | Range(
            "v", 10, 12
        )
        found = extract_subdomains(predicate, "v", DOMAIN)
        assert (1, 2) in found
        assert (10, 11, 12) in found

    def test_out_of_domain_values_dropped(self):
        found = extract_subdomains(
            InList("v", [1, 99]), "v", DOMAIN
        )
        assert found == [(1,)]

    def test_negation_descends(self):
        found = extract_subdomains(~InList("v", [1, 2]), "v", DOMAIN)
        assert found == [(1, 2)]


class TestMineWorkload:
    def _history(self):
        hot = InList("v", [0, 1, 2, 3])
        warm = Range("v", 8, 11)
        rare = InList("v", [5, 13])
        return [hot] * 10 + [warm] * 4 + [rare] * 1 + [
            Equals("v", 6)
        ] * 7

    def test_frequencies_counted(self):
        mined = mine_workload(self._history(), "v", DOMAIN,
                              min_support=1)
        weights = dict(zip(mined.subdomains, mined.weights))
        assert weights[(0, 1, 2, 3)] == 10
        assert weights[(8, 9, 10, 11)] == 4

    def test_min_support_prunes(self):
        mined = mine_workload(self._history(), "v", DOMAIN,
                              min_support=2)
        assert (5, 13) not in mined.subdomains

    def test_singletons_excluded(self):
        mined = mine_workload(self._history(), "v", DOMAIN,
                              min_support=1)
        assert all(len(s) >= 2 for s in mined.subdomains)

    def test_max_subdomains_cap(self):
        history = [
            InList("v", [i, i + 1]) for i in range(14)
        ] * 3
        mined = mine_workload(history, "v", DOMAIN, min_support=1,
                              max_subdomains=5)
        assert len(mined.subdomains) <= 5

    def test_total_observations(self):
        mined = mine_workload(self._history(), "v", DOMAIN,
                              min_support=1)
        assert mined.total_observations() == 15  # 10 + 4 + 1


class TestEncodingFromHistory:
    def test_beats_random_on_the_logged_workload(self):
        history = [InList("v", [0, 1, 2, 3])] * 10 + [
            InList("v", [4, 5, 6, 7])
        ] * 10
        mapping = encoding_from_history(
            history, "v", DOMAIN, min_support=2,
            reserve_void_zero=False, seed=0,
        )
        baseline = random_encoding(DOMAIN, seed=321,
                                   reserve_void_zero=False)
        predicates = [[0, 1, 2, 3], [4, 5, 6, 7]]
        assert encoding_cost(mapping, predicates) <= encoding_cost(
            baseline, predicates
        )

    def test_hot_subdomain_reduces_to_one_vector(self):
        history = [InList("v", [0, 1, 2, 3, 4, 5, 6, 7])] * 20
        mapping = encoding_from_history(
            history, "v", DOMAIN, min_support=2,
            reserve_void_zero=False, seed=0,
        )
        assert encoding_cost(mapping, [list(range(8))]) == 1.0

    def test_empty_history_still_valid(self):
        mapping = encoding_from_history(
            [], "v", DOMAIN, reserve_void_zero=False
        )
        codes = [mapping.encode(v) for v in DOMAIN]
        assert len(set(codes)) == len(DOMAIN)
