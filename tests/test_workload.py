"""Unit tests for repro.workload (generators, queries, TPC-D-like)."""

import random

import pytest

from repro.query.predicates import Equals, InList
from repro.workload.generators import (
    build_table,
    clustered_column,
    sequential_column,
    uniform_column,
    zipf_column,
)
from repro.workload.queries import (
    contiguous_range,
    point_query,
    query_mix,
    random_in_list,
)
from repro.workload.tpcd import (
    DEFAULT_CARDINALITIES,
    TPCD_QUERY_CLASSES,
    build_tpcd_schema,
    generate_query,
    generate_workload,
    range_query_share,
)


class TestGenerators:
    def test_uniform_in_range(self):
        values = uniform_column(1000, 10, seed=1, base=5)
        assert all(5 <= v <= 14 for v in values)
        assert len(set(values)) == 10

    def test_uniform_deterministic(self):
        assert uniform_column(50, 5, seed=9) == uniform_column(
            50, 5, seed=9
        )

    def test_zipf_skew(self):
        values = zipf_column(5000, 50, skew=1.5, seed=2)
        counts = {}
        for value in values:
            counts[value] = counts.get(value, 0) + 1
        top = max(counts.values())
        assert top > 5000 / 50 * 3  # heavily skewed toward rank 1

    def test_zipf_cardinality_bound(self):
        values = zipf_column(100, 5, seed=0)
        assert set(values) <= set(range(5))

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_column(10, 0)

    def test_sequential_round_robin(self):
        assert sequential_column(6, 3) == [0, 1, 2, 0, 1, 2]

    def test_clustered_runs(self):
        values = clustered_column(100, 10, run_length=10, seed=4)
        assert len(values) == 100
        # runs: consecutive equal values dominate
        repeats = sum(
            1 for a, b in zip(values, values[1:]) if a == b
        )
        assert repeats > 50

    def test_build_table(self):
        table = build_table("t", 5, {"a": [1, 2, 3, 4, 5]})
        assert len(table) == 5
        assert table.row(2)["a"] == 3

    def test_build_table_length_mismatch(self):
        with pytest.raises(ValueError):
            build_table("t", 5, {"a": [1, 2]})


class TestQueryGenerators:
    def test_point_query(self, rng):
        pred = point_query("c", [1, 2, 3], rng)
        assert isinstance(pred, Equals)
        assert pred.value in (1, 2, 3)

    def test_random_in_list_size(self, rng):
        pred = random_in_list("c", range(100), 7, rng)
        assert isinstance(pred, InList)
        assert len(pred.values) == 7

    def test_contiguous_range_is_contiguous(self, rng):
        domain = list(range(0, 200, 2))  # even numbers
        pred = contiguous_range("c", domain, 5, rng)
        values = sorted(pred.values)
        positions = [domain.index(v) for v in values]
        assert positions == list(
            range(positions[0], positions[0] + 5)
        )

    def test_query_mix_share(self):
        queries = query_mix("c", range(50), 300, range_share=0.5, seed=1)
        ranges = sum(1 for q in queries if isinstance(q, InList))
        assert 100 < ranges < 200

    def test_query_mix_validation(self):
        with pytest.raises(ValueError):
            query_mix("c", range(5), 3, range_share=1.5)


class TestTpcd:
    def test_range_share_is_12_of_17(self):
        """The paper's TPC-D statistic."""
        assert range_query_share() == (12, 17)

    def test_the_twelve_classes(self):
        """Q1, Q3-Q10, Q12, Q14, Q16 per the paper."""
        ranges = {
            qc.name for qc in TPCD_QUERY_CLASSES if qc.involves_range
        }
        assert ranges == {
            "Q1", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9", "Q10",
            "Q12", "Q14", "Q16",
        }

    def test_schema_columns(self):
        table = build_tpcd_schema(n=200)
        assert set(table.column_names) == set(DEFAULT_CARDINALITIES)
        assert len(table) == 200

    def test_schema_cardinalities_bounded(self):
        table = build_tpcd_schema(n=2000)
        for name, cardinality in DEFAULT_CARDINALITIES.items():
            assert table.column(name).cardinality() <= cardinality

    def test_generate_query_shapes(self):
        table = build_tpcd_schema(n=500)
        rng = random.Random(0)
        for query_class in TPCD_QUERY_CLASSES:
            predicate = generate_query(query_class, table, rng)
            if query_class.involves_range:
                assert isinstance(predicate, InList)
                assert len(predicate.values) >= 1
            else:
                assert isinstance(predicate, Equals)

    def test_generate_workload(self):
        table = build_tpcd_schema(n=300)
        workload = generate_workload(table, queries_per_class=2, seed=1)
        assert len(workload) == 34
        range_count = sum(
            1 for qc, _ in workload if qc.involves_range
        )
        assert range_count == 24  # 12 classes x 2

    def test_queries_select_something(self):
        table = build_tpcd_schema(n=1000)
        rng = random.Random(5)
        hits = 0
        for query_class in TPCD_QUERY_CLASSES:
            predicate = generate_query(query_class, table, rng)
            if any(
                predicate.matches(row) for row in table.scan()
            ):
                hits += 1
        assert hits >= 15  # nearly every query matches some rows
