"""Unit tests for projection, bit-sliced, value-list, dynamic-bitmap,
range-bitmap and hybrid indexes (the paper's Section 4 comparators)."""

import random

import pytest

from repro.index.bitsliced import BitSlicedIndex
from repro.index.dynamic_bitmap import DynamicBitmapIndex
from repro.index.hybrid import HybridBitmapBTreeIndex
from repro.index.projection import ProjectionIndex
from repro.index.range_bitmap import RangeBitmapIndex
from repro.index.value_list import ValueListIndex
from repro.query.predicates import Equals, InList, IsNull, Range
from repro.table.table import Table
from tests.conftest import matching_rows


class TestProjectionIndex:
    def test_lookup_matches_scan(self, sales_table):
        index = ProjectionIndex(sales_table, "qty")
        for pred in [Equals("qty", 10), Range("qty", 5, 15),
                     InList("qty", [1, 2, 3])]:
            assert sorted(index.lookup(pred).indices().tolist()) == (
                matching_rows(sales_table, pred)
            )

    def test_cost_is_full_scan(self, sales_table):
        index = ProjectionIndex(sales_table, "qty")
        index.lookup(Equals("qty", 10))
        assert index.last_cost.rows_checked == len(sales_table)

    def test_positional_access(self, sales_table):
        index = ProjectionIndex(sales_table, "qty")
        assert index.value_at(0) == sales_table.row(0)["qty"]

    def test_maintenance(self, sales_table):
        index = ProjectionIndex(sales_table, "qty")
        sales_table.attach(index)
        row_id = sales_table.append(
            {"product": 100, "qty": 999, "region": "N"}
        )
        assert index.value_at(row_id) == 999
        sales_table.update(row_id, "qty", 998)
        assert index.value_at(row_id) == 998
        sales_table.delete(row_id)
        assert index.value_at(row_id) is None
        sales_table.detach(index)

    def test_nbytes_and_pages(self, sales_table):
        index = ProjectionIndex(sales_table, "qty")
        assert index.nbytes() == 4 * len(sales_table)
        assert index.pages() >= 1


class TestBitSlicedIndex:
    def test_is_order_preserving_encoded_bitmap(self, sales_table):
        from repro.encoding.total_order import is_order_preserving

        index = BitSlicedIndex(sales_table, "qty")
        assert is_order_preserving(index.mapping)

    def test_range_by_slice_algorithm(self, sales_table):
        index = BitSlicedIndex(sales_table, "qty")
        for pred in [
            Range("qty", 10, 30),
            Range("qty", None, 25),
            Range("qty", 40, None),
            Range("qty", 10, 30, low_inclusive=False,
                  high_inclusive=False),
            Range("qty", 60, 70),  # partially out of domain
        ]:
            assert sorted(index.lookup(pred).indices().tolist()) == (
                matching_rows(sales_table, pred)
            ), str(pred)

    def test_empty_range(self, sales_table):
        index = BitSlicedIndex(sales_table, "qty")
        assert index.lookup(Range("qty", 900, 999)).count() == 0

    def test_range_cost_at_most_k_per_bound(self, sales_table):
        index = BitSlicedIndex(sales_table, "qty")
        index.lookup(Range("qty", 10, 30))
        assert index.last_cost.vectors_accessed <= index.width

    def test_slice_algorithm_vs_in_list_rewrite(self, sales_table):
        direct = BitSlicedIndex(sales_table, "qty",
                                use_slice_algorithm=True)
        rewrite = BitSlicedIndex(sales_table, "qty",
                                 use_slice_algorithm=False)
        pred = Range("qty", 12, 37)
        assert direct.lookup(pred) == rewrite.lookup(pred)

    def test_equals_still_works(self, sales_table):
        index = BitSlicedIndex(sales_table, "qty")
        pred = Equals("qty", 20)
        assert sorted(index.lookup(pred).indices().tolist()) == (
            matching_rows(sales_table, pred)
        )

    def test_respects_deleted_rows(self, sales_table):
        index = BitSlicedIndex(sales_table, "qty")
        sales_table.attach(index)
        victim = matching_rows(sales_table, Range("qty", 10, 30))[0]
        sales_table.delete(victim)
        pred = Range("qty", 10, 30)
        assert sorted(index.lookup(pred).indices().tolist()) == (
            matching_rows(sales_table, pred)
        )
        sales_table.detach(index)


class TestValueListIndex:
    def test_lookup_matches_scan(self, sales_table):
        index = ValueListIndex(sales_table, "product")
        for pred in [Equals("product", 105),
                     InList("product", [100, 120]),
                     Range("product", 110, 118)]:
            assert sorted(index.lookup(pred).indices().tolist()) == (
                matching_rows(sales_table, pred)
            )

    def test_cost_one_list_per_value(self, sales_table):
        index = ValueListIndex(sales_table, "product")
        index.lookup(InList("product", [100, 101, 102]))
        assert index.last_cost.vectors_accessed == 3

    def test_nulls(self):
        table = Table("t", ["a"])
        for value in [1, None, 2, None]:
            table.append({"a": value})
        index = ValueListIndex(table, "a")
        assert index.lookup(IsNull("a")).indices().tolist() == [1, 3]

    def test_maintenance(self, sales_table):
        index = ValueListIndex(sales_table, "product")
        sales_table.attach(index)
        row_id = sales_table.append(
            {"product": 100, "qty": 1, "region": "N"}
        )
        assert row_id in index.rows_for(100)
        sales_table.update(row_id, "product", 101)
        assert row_id in index.rows_for(101)
        assert row_id not in index.rows_for(100)
        sales_table.delete(row_id)
        assert row_id not in index.rows_for(101)
        sales_table.detach(index)

    def test_nbytes_proportional_to_n(self, sales_table):
        index = ValueListIndex(sales_table, "product")
        assert index.nbytes() >= 4 * len(sales_table)


class TestDynamicBitmapIndex:
    def test_arrival_order_encoding(self):
        table = Table("t", ["a"])
        for value in ["z", "m", "z", "a"]:
            table.append({"a": value})
        index = DynamicBitmapIndex(table, "a")
        # codes follow first-appearance order (after VOID at 0)
        assert index.mapping.encode("z") == 1
        assert index.mapping.encode("m") == 2
        assert index.mapping.encode("a") == 3

    def test_lookup_matches_scan(self, sales_table):
        index = DynamicBitmapIndex(sales_table, "product")
        pred = InList("product", [100, 111, 129])
        assert sorted(index.lookup(pred).indices().tolist()) == (
            matching_rows(sales_table, pred)
        )


class TestRangeBitmapIndex:
    def test_equal_population_buckets(self, skewed_table):
        index = RangeBitmapIndex(skewed_table, "v", buckets=8)
        counts = [
            vec.count() for vec in index._vectors
        ]
        # population balance within a factor (skew + no-split rule)
        assert max(counts) <= 4 * (sum(counts) / len(counts))

    def test_lookup_matches_scan(self, skewed_table):
        index = RangeBitmapIndex(skewed_table, "v", buckets=8)
        for pred in [Range("v", 2, 10), Range("v", None, 5),
                     Range("v", 20, None), Equals("v", 0),
                     InList("v", [0, 1, 7])]:
            assert sorted(index.lookup(pred).indices().tolist()) == (
                matching_rows(skewed_table, pred)
            ), str(pred)

    def test_candidate_checks_on_edge_buckets(self, skewed_table):
        index = RangeBitmapIndex(skewed_table, "v", buckets=8)
        index.lookup(Range("v", 3, 9))
        # partial buckets force base-data checks
        assert index.last_cost.rows_checked > 0

    def test_full_bucket_no_checks(self, skewed_table):
        index = RangeBitmapIndex(skewed_table, "v", buckets=4)
        index.lookup(Range("v", None, None))
        assert index.last_cost.rows_checked == 0

    def test_maintenance(self, skewed_table):
        index = RangeBitmapIndex(skewed_table, "v", buckets=8)
        skewed_table.attach(index)
        row_id = skewed_table.append({"v": 1})
        pred = Equals("v", 1)
        assert row_id in index.lookup(pred).indices().tolist()
        skewed_table.delete(row_id)
        assert row_id not in index.lookup(pred).indices().tolist()
        skewed_table.detach(index)

    def test_bucket_count_param(self, skewed_table):
        with pytest.raises(ValueError):
            RangeBitmapIndex(skewed_table, "v", buckets=0)


class TestHybridIndex:
    def test_lookup_matches_scan(self, sales_table):
        index = HybridBitmapBTreeIndex(sales_table, "product")
        for pred in [Equals("product", 100),
                     InList("product", [105, 106]),
                     Range("product", 100, 110)]:
            assert sorted(index.lookup(pred).indices().tolist()) == (
                matching_rows(sales_table, pred)
            )

    def test_degenerates_at_high_cardinality(self):
        """The paper's critique: at high m the hybrid is a pure B-tree."""
        table = Table("t", ["k"])
        for i in range(500):
            table.append({"k": i})  # every value unique
        index = HybridBitmapBTreeIndex(table, "k")
        assert index.is_degenerate()
        assert index.degeneration_ratio() == 1.0

    def test_dense_values_stay_bitmaps(self):
        table = Table("t", ["k"])
        for i in range(512):
            table.append({"k": i % 4})
        index = HybridBitmapBTreeIndex(table, "k")
        assert index.degeneration_ratio() == 0.0

    def test_promotion_on_growth(self):
        table = Table("t", ["k"])
        for i in range(64):
            table.append({"k": i})
        index = HybridBitmapBTreeIndex(table, "k",
                                       sparsity_threshold=0.25)
        table.attach(index)
        # grow value 0 until it crosses the threshold
        for _ in range(40):
            table.append({"k": 0})
        from repro.bitmap.bitvector import BitVector

        assert isinstance(index._entries[0], BitVector)
        table.detach(index)

    def test_threshold_validation(self, sales_table):
        with pytest.raises(ValueError):
            HybridBitmapBTreeIndex(sales_table, "product",
                                   sparsity_threshold=0.0)
