"""Unit tests for repro.encoding.mapping."""

import pytest

from repro.encoding.mapping import NULL, VOID, MappingTable, code_width
from repro.errors import (
    CodeWidthError,
    DomainError,
    DuplicateCodeError,
    DuplicateValueError,
)


class TestCodeWidth:
    @pytest.mark.parametrize(
        "m,k",
        [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4),
         (12000, 14), (50, 6), (1000, 10)],
    )
    def test_paper_formula(self, m, k):
        """k = ceil(log2 m); 12000 products -> 14 vectors (Section 2.2)."""
        assert code_width(m) == k

    def test_invalid(self):
        with pytest.raises(ValueError):
            code_width(0)


class TestConstruction:
    def test_void_reserved_by_default(self):
        table = MappingTable(width=2)
        assert VOID in table
        assert table.encode(VOID) == 0

    def test_without_void(self):
        table = MappingTable(width=2, reserve_void_zero=False)
        assert VOID not in table
        assert len(table) == 0

    def test_from_values_sequential(self):
        table = MappingTable.from_values(
            ["a", "b", "c"], reserve_void_zero=False
        )
        assert [table.encode(v) for v in "abc"] == [0, 1, 2]
        assert table.width == 2

    def test_from_values_with_void(self):
        table = MappingTable.from_values(["a", "b", "c"])
        assert table.encode(VOID) == 0
        assert [table.encode(v) for v in "abc"] == [1, 2, 3]

    def test_from_values_with_null(self):
        table = MappingTable.from_values(["a"], include_null=True)
        assert NULL in table
        assert table.encode(NULL) == 1
        assert table.encode("a") == 2

    def test_from_values_dedups(self):
        table = MappingTable.from_values(
            ["a", "a", "b"], reserve_void_zero=False
        )
        assert len(table) == 2

    def test_from_pairs(self):
        table = MappingTable.from_pairs([("x", 0b10), ("y", 0b01)])
        assert table.encode("x") == 2
        assert table.decode(1) == "y"
        assert table.width == 2

    def test_from_pairs_infers_width(self):
        table = MappingTable.from_pairs([("x", 9)])
        assert table.width == 4

    def test_width_validation(self):
        with pytest.raises(ValueError):
            MappingTable(width=0)


class TestLookups:
    def setup_method(self):
        self.table = MappingTable.from_values(["a", "b", "c"])

    def test_encode_decode_roundtrip(self):
        for value in ["a", "b", "c", VOID]:
            assert self.table.decode(self.table.encode(value)) == value

    def test_unknown_value(self):
        with pytest.raises(DomainError):
            self.table.encode("zzz")

    def test_unknown_code(self):
        with pytest.raises(DomainError):
            self.table.decode(7)

    def test_domain_excludes_sentinels(self):
        assert set(self.table.domain()) == {"a", "b", "c"}
        assert VOID in self.table.values()

    def test_unused_codes(self):
        # width 2, 4 codes, 4 mapped (VOID + a,b,c) -> none unused
        assert self.table.unused_codes() == []
        bigger = MappingTable.from_values(["a", "b"])  # 3 of 4 used
        assert bigger.unused_codes() == [3]

    def test_next_free_code(self):
        table = MappingTable(width=2)
        assert table.next_free_code() == 1

    def test_next_free_code_full(self):
        table = MappingTable.from_values(["a", "b", "c"])
        with pytest.raises(CodeWidthError):
            table.next_free_code()


class TestAssignment:
    def test_duplicate_value(self):
        table = MappingTable(width=2)
        table.assign("a", 1)
        with pytest.raises(DuplicateValueError):
            table.assign("a", 2)

    def test_duplicate_code(self):
        table = MappingTable(width=2)
        table.assign("a", 1)
        with pytest.raises(DuplicateCodeError):
            table.assign("b", 1)

    def test_code_out_of_width(self):
        table = MappingTable(width=2)
        with pytest.raises(CodeWidthError):
            table.assign("a", 4)


class TestDomainExpansion:
    def test_add_value_without_expansion(self):
        """Figure 2(a): adding d to {a,b,c} keeps k=2 (with no VOID)."""
        table = MappingTable.from_values(
            ["a", "b", "c"], reserve_void_zero=False
        )
        code, expanded = table.add_value("d")
        assert code == 3
        assert not expanded
        assert table.width == 2

    def test_add_value_with_expansion(self):
        """Figure 2(b): adding e forces a third bit."""
        table = MappingTable.from_values(
            ["a", "b", "c", "d"], reserve_void_zero=False
        )
        code, expanded = table.add_value("e")
        assert expanded
        assert table.width == 3
        assert code == 4  # first code with the new MSB set
        # old codes unchanged
        assert table.encode("a") == 0
        assert table.encode("d") == 3

    def test_add_existing_value_rejected(self):
        table = MappingTable.from_values(["a"])
        with pytest.raises(DuplicateValueError):
            table.add_value("a")

    def test_equation_1_behaviour(self):
        """Width grows exactly when ceil(log2) steps up."""
        table = MappingTable.from_values(["v0"], reserve_void_zero=False)
        widths = [table.width]
        for i in range(1, 9):
            table.add_value(f"v{i}")
            widths.append(table.width)
        # cardinalities 1..9 -> widths 1,1,2,2,3,3,3,3,4
        assert widths == [1, 1, 2, 2, 3, 3, 3, 3, 4]


class TestReassignment:
    def test_reassign_all(self):
        table = MappingTable.from_values(
            ["a", "b"], reserve_void_zero=False
        )
        table.reassign_all({"a": 1, "b": 0})
        assert table.encode("a") == 1
        assert table.decode(0) == "b"

    def test_reassign_must_cover_domain(self):
        table = MappingTable.from_values(
            ["a", "b"], reserve_void_zero=False
        )
        with pytest.raises(DomainError):
            table.reassign_all({"a": 1})

    def test_reassign_rejects_duplicate_codes(self):
        table = MappingTable.from_values(
            ["a", "b"], reserve_void_zero=False
        )
        with pytest.raises(DuplicateCodeError):
            table.reassign_all({"a": 1, "b": 1})


class TestRendering:
    def test_to_rows_binary_codes(self):
        table = MappingTable.from_values(
            ["a", "b", "c"], reserve_void_zero=False
        )
        rows = dict(table.to_rows())
        assert rows["a"] == "00"
        assert rows["c"] == "10"

    def test_format_table(self):
        table = MappingTable.from_values(["a"], reserve_void_zero=False)
        assert "a" in table.format_table()

    def test_equality(self):
        a = MappingTable.from_values(["x"], reserve_void_zero=False)
        b = MappingTable.from_values(["x"], reserve_void_zero=False)
        assert a == b
