"""Unit tests for repro.encoding.heuristics."""

import pytest

from repro.encoding.heuristics import (
    encode_for_predicates,
    encoding_cost,
    random_encoding,
    sequential_encoding,
)
from repro.encoding.mapping import VOID


class TestBaselines:
    def test_sequential_encoding(self):
        table = sequential_encoding("abcd", reserve_void_zero=False)
        assert [table.encode(v) for v in "abcd"] == [0, 1, 2, 3]

    def test_random_encoding_is_permutation(self):
        table = random_encoding("abcdefgh", seed=1, reserve_void_zero=False)
        codes = sorted(table.encode(v) for v in "abcdefgh")
        assert codes == list(range(8))

    def test_random_encoding_deterministic(self):
        a = random_encoding("abc", seed=5)
        b = random_encoding("abc", seed=5)
        assert a == b

    def test_random_encoding_reserves_void(self):
        table = random_encoding("abc", seed=2)
        assert table.encode(VOID) == 0
        assert all(table.encode(v) != 0 for v in "abc")


class TestEncodingCost:
    def test_cost_counts_vectors_per_predicate(self):
        table = sequential_encoding("abcd", reserve_void_zero=False)
        # {a,b} = {00,01} -> B1' (1 vector); {a,d} = {00,11} -> 2 vectors
        assert encoding_cost(table, [["a", "b"]]) == 1.0
        assert encoding_cost(table, [["a", "d"]]) == 2.0

    def test_weights(self):
        table = sequential_encoding("abcd", reserve_void_zero=False)
        cost = encoding_cost(table, [["a", "b"], ["a", "d"]], [10.0, 1.0])
        assert cost == 12.0

    def test_weight_length_mismatch(self):
        table = sequential_encoding("ab", reserve_void_zero=False)
        with pytest.raises(ValueError):
            encoding_cost(table, [["a"]], [1.0, 2.0])


class TestEncodeForPredicates:
    def test_reproduces_figure3_optimum(self):
        """For the paper's two predicates on {a..h}, the heuristic must
        find a 1-vector encoding for each (Figure 3(a) quality)."""
        predicates = [list("abcd"), list("cdef")]
        table = encode_for_predicates(
            "abcdefgh", predicates, reserve_void_zero=False, seed=0
        )
        assert encoding_cost(table, predicates) <= 2.0  # 1 + 1

    def test_beats_random_encoding(self):
        predicates = [list("abcd"), list("cdef"), list("gh")]
        tuned = encode_for_predicates(
            "abcdefgh", predicates, reserve_void_zero=False, seed=0
        )
        baseline = random_encoding("abcdefgh", seed=123,
                                   reserve_void_zero=False)
        assert encoding_cost(tuned, predicates) <= encoding_cost(
            baseline, predicates
        )

    def test_unknown_predicate_value_rejected(self):
        with pytest.raises(ValueError):
            encode_for_predicates("ab", [["z"]])

    def test_preserves_void_reservation(self):
        table = encode_for_predicates("abc", [["a", "b"]], seed=0)
        assert table.encode(VOID) == 0

    def test_one_to_one(self):
        table = encode_for_predicates(
            "abcdefgh", [list("abcd")], reserve_void_zero=False, seed=0
        )
        codes = [table.encode(v) for v in "abcdefgh"]
        assert len(set(codes)) == 8

    def test_local_search_never_hurts(self):
        predicates = [list("aceg"), list("bdfh")]
        no_search = encode_for_predicates(
            "abcdefgh", predicates, reserve_void_zero=False,
            local_search_steps=0, seed=0,
        )
        with_search = encode_for_predicates(
            "abcdefgh", predicates, reserve_void_zero=False,
            local_search_steps=300, seed=0,
        )
        assert encoding_cost(with_search, predicates) <= encoding_cost(
            no_search, predicates
        )

    def test_empty_predicates(self):
        table = encode_for_predicates("abc", [], reserve_void_zero=False)
        assert len(table) == 3
