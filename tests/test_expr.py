"""Unit tests for repro.boolean.expr."""

import pytest

from repro.boolean.expr import (
    And,
    Const,
    Not,
    Or,
    Var,
    Xor,
    dnf_expression,
    term_expression,
)
from repro.boolean.minterm import Implicant
from repro.boolean.reduction import reduce_values


class TestNodes:
    def test_var(self):
        v = Var(2)
        assert v.variables() == frozenset({2})
        assert v.evaluate_value(0b100)
        assert not v.evaluate_value(0b011)
        assert str(v) == "B2"

    def test_const(self):
        assert Const(True).evaluate_value(0)
        assert not Const(False).evaluate_value(7)
        assert Const(True).variables() == frozenset()

    def test_not(self):
        expr = Not(Var(0))
        assert expr.evaluate_value(0b0)
        assert not expr.evaluate_value(0b1)
        assert str(expr) == "B0'"

    def test_not_parenthesises_compound(self):
        expr = Not(Or((Var(0), Var(1))))
        assert str(expr) == "(B0 + B1)'"

    def test_and_or_xor_semantics(self):
        a, b = Var(0), Var(1)
        for value in range(4):
            x0, x1 = value & 1, (value >> 1) & 1
            assert And((a, b)).evaluate_value(value) == bool(x0 and x1)
            assert Or((a, b)).evaluate_value(value) == bool(x0 or x1)
            assert Xor((a, b)).evaluate_value(value) == bool(x0 ^ x1)

    def test_operator_builders(self):
        expr = (Var(0) & Var(1)) | ~Var(2)
        assert isinstance(expr, Or)
        assert expr.variables() == frozenset({0, 1, 2})

    def test_xor_operator(self):
        expr = Var(0) ^ Var(1)
        assert isinstance(expr, Xor)

    def test_and_renders_parenthesised_or(self):
        expr = And((Var(1), Or((Var(0), Var(2)))))
        assert "(" in str(expr)


class TestConversion:
    def test_term_expression_full_minterm(self):
        term = Implicant.minterm(0b10, 2)
        expr = term_expression(term)
        for value in range(4):
            assert expr.evaluate_value(value) == term.covers(value)

    def test_term_expression_single_literal(self):
        term = Implicant(bits=0b0, care=0b1, width=2)
        expr = term_expression(term)
        assert isinstance(expr, Not)

    def test_term_expression_constant(self):
        term = Implicant(bits=0, care=0, width=2)
        assert term_expression(term) == Const(True)

    def test_dnf_expression_matches_function(self):
        function = reduce_values([1, 2, 5], 3)
        expr = dnf_expression(function)
        for value in range(8):
            assert expr.evaluate_value(value) == function.evaluate_value(
                value
            )

    def test_dnf_expression_false(self):
        function = reduce_values([], 3)
        assert dnf_expression(function) == Const(False)

    def test_footnote3_xor_vs_or(self):
        """The paper's footnote 3: f_b + f_c = B1 XOR B0, and with the
        don't-care term it becomes B1 + B0."""
        xor_form = Xor((Var(1), Var(0)))
        or_form = Or((Var(1), Var(0)))
        # they agree except on code 11 (the don't-care)
        for value in (0b00, 0b01, 0b10):
            assert xor_form.evaluate_value(value) == or_form.evaluate_value(
                value
            )
        assert not xor_form.evaluate_value(0b11)
        assert or_form.evaluate_value(0b11)
