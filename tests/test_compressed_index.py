"""Unit tests for repro.index.compressed (RLE simple bitmap index)."""

import random

import pytest

from repro.index.compressed import CompressedBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.query.predicates import Equals, InList, IsNull, Range
from repro.table.table import Table
from tests.conftest import matching_rows


@pytest.fixture
def sparse_table():
    """High-cardinality column: very sparse per-value vectors."""
    table = Table("t", ["v"])
    rng = random.Random(61)
    for _ in range(600):
        table.append({"v": rng.randrange(150)})
    return table


class TestLookup:
    def test_matches_scan(self, sparse_table):
        index = CompressedBitmapIndex(sparse_table, "v")
        for pred in (
            Equals("v", 10),
            InList("v", [0, 50, 100, 149]),
            Range("v", 20, 60),
        ):
            got = sorted(index.lookup(pred).indices().tolist())
            assert got == matching_rows(sparse_table, pred)

    def test_matches_uncompressed_index(self, sparse_table):
        compressed = CompressedBitmapIndex(sparse_table, "v")
        plain = SimpleBitmapIndex(sparse_table, "v")
        for pred in (Equals("v", 3), Range("v", 100, 140)):
            assert compressed.lookup(pred) == plain.lookup(pred)

    def test_cost_still_delta(self, sparse_table):
        """Compression does not change the access-count economics —
        a delta-wide range still opens delta compressed vectors."""
        index = CompressedBitmapIndex(sparse_table, "v")
        index.lookup(InList("v", [1, 2, 3, 4, 5]))
        assert index.last_cost.vectors_accessed == 5

    def test_nulls(self):
        table = Table("t", ["v"])
        for value in [1, None, 2, None]:
            table.append({"v": value})
        index = CompressedBitmapIndex(table, "v")
        assert index.lookup(IsNull("v")).indices().tolist() == [1, 3]


class TestCompression:
    def test_sparse_vectors_compress(self, sparse_table):
        index = CompressedBitmapIndex(sparse_table, "v")
        plain = SimpleBitmapIndex(sparse_table, "v")
        assert index.nbytes() < plain.nbytes()
        assert index.compression_ratio() > 1.0

    def test_encoded_still_smaller_in_accesses(self, sparse_table):
        """The paper's point survives compression: space may shrink
        but range searches still touch delta vectors."""
        from repro.index.encoded_bitmap import EncodedBitmapIndex

        compressed = CompressedBitmapIndex(sparse_table, "v")
        encoded = EncodedBitmapIndex(sparse_table, "v")
        pred = Range("v", 0, 99)
        compressed.lookup(pred)
        encoded.lookup(pred)
        assert (
            encoded.last_cost.vectors_accessed
            < compressed.last_cost.vectors_accessed
        )


class TestMaintenance:
    def test_append_existing(self, sparse_table):
        index = CompressedBitmapIndex(sparse_table, "v")
        sparse_table.attach(index)
        row_id = sparse_table.append({"v": 10})
        assert row_id in index.lookup(Equals("v", 10)).indices().tolist()
        sparse_table.detach(index)

    def test_append_new_value(self, sparse_table):
        index = CompressedBitmapIndex(sparse_table, "v")
        sparse_table.attach(index)
        row_id = sparse_table.append({"v": 10**6})
        assert index.lookup(Equals("v", 10**6)).indices().tolist() == [
            row_id
        ]
        sparse_table.detach(index)

    def test_update(self, sparse_table):
        index = CompressedBitmapIndex(sparse_table, "v")
        sparse_table.attach(index)
        target = matching_rows(sparse_table, Equals("v", 10))[0]
        sparse_table.update(target, "v", 11)
        assert target not in index.lookup(
            Equals("v", 10)
        ).indices().tolist()
        assert target in index.lookup(Equals("v", 11)).indices().tolist()
        sparse_table.detach(index)

    def test_delete(self, sparse_table):
        index = CompressedBitmapIndex(sparse_table, "v")
        sparse_table.attach(index)
        target = matching_rows(sparse_table, Equals("v", 10))[0]
        sparse_table.delete(target)
        assert target not in index.lookup(
            Equals("v", 10)
        ).indices().tolist()
        sparse_table.detach(index)
