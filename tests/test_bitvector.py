"""Unit tests for repro.bitmap.bitvector."""

import numpy as np
import pytest

from repro.bitmap.bitvector import BitVector, select_rows
from repro.errors import LengthMismatchError


class TestConstruction:
    def test_empty(self):
        vec = BitVector(0)
        assert len(vec) == 0
        assert vec.count() == 0
        assert not vec.any()
        assert vec.all()  # vacuously

    def test_zeroed(self):
        vec = BitVector(100)
        assert len(vec) == 100
        assert vec.count() == 0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            BitVector(-1)

    def test_from_bools(self):
        vec = BitVector.from_bools([True, False, True, True])
        assert vec.to_bitstring() == "1011"
        assert vec.count() == 3

    def test_from_indices(self):
        vec = BitVector.from_indices([0, 3, 7], 8)
        assert vec.to_bitstring() == "10010001"

    def test_from_indices_empty(self):
        vec = BitVector.from_indices([], 5)
        assert vec.count() == 0

    def test_from_indices_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector.from_indices([5], 5)

    def test_ones(self):
        vec = BitVector.ones(70)
        assert vec.count() == 70
        assert vec.all()

    def test_from_mask(self):
        mask = np.array([True, False, True])
        vec = BitVector.from_mask(mask)
        assert vec.to_bitstring() == "101"

    def test_word_boundary_lengths(self):
        for nbits in (63, 64, 65, 127, 128, 129):
            vec = BitVector.ones(nbits)
            assert vec.count() == nbits
            assert len(vec) == nbits


class TestBitAccess:
    def test_get_set(self):
        vec = BitVector(10)
        vec[3] = True
        assert vec[3]
        assert not vec[2]
        vec[3] = False
        assert not vec[3]

    def test_index_error(self):
        vec = BitVector(4)
        with pytest.raises(IndexError):
            vec[4]
        with pytest.raises(IndexError):
            vec[-1]

    def test_iteration(self):
        vec = BitVector.from_bools([1, 0, 1])
        assert list(vec) == [True, False, True]


class TestLogicalOps:
    def test_and(self):
        a = BitVector.from_bools([1, 1, 0, 0])
        b = BitVector.from_bools([1, 0, 1, 0])
        assert (a & b).to_bitstring() == "1000"

    def test_or(self):
        a = BitVector.from_bools([1, 1, 0, 0])
        b = BitVector.from_bools([1, 0, 1, 0])
        assert (a | b).to_bitstring() == "1110"

    def test_xor(self):
        a = BitVector.from_bools([1, 1, 0, 0])
        b = BitVector.from_bools([1, 0, 1, 0])
        assert (a ^ b).to_bitstring() == "0110"

    def test_invert_masks_tail(self):
        vec = BitVector(67)
        inverted = ~vec
        assert inverted.count() == 67
        assert len(inverted) == 67

    def test_andnot(self):
        a = BitVector.from_bools([1, 1, 0, 0])
        b = BitVector.from_bools([1, 0, 1, 0])
        assert a.andnot(b).to_bitstring() == "0100"

    def test_inplace_ops(self):
        a = BitVector.from_bools([1, 1, 0])
        b = BitVector.from_bools([0, 1, 1])
        a &= b
        assert a.to_bitstring() == "010"
        a |= BitVector.from_bools([1, 0, 0])
        assert a.to_bitstring() == "110"
        a ^= BitVector.from_bools([1, 1, 1])
        assert a.to_bitstring() == "001"

    def test_length_mismatch(self):
        with pytest.raises(LengthMismatchError):
            BitVector(3) & BitVector(4)

    def test_ops_do_not_mutate_operands(self):
        a = BitVector.from_bools([1, 0])
        b = BitVector.from_bools([0, 1])
        _ = a | b
        assert a.to_bitstring() == "10"
        assert b.to_bitstring() == "01"


class TestQueries:
    def test_count_density_sparsity(self):
        vec = BitVector.from_bools([1, 0, 0, 0])
        assert vec.count() == 1
        assert vec.density() == 0.25
        assert vec.sparsity() == 0.75

    def test_any_all(self):
        assert not BitVector(5).any()
        assert BitVector.ones(5).all()
        partial = BitVector.from_bools([1, 0])
        assert partial.any()
        assert not partial.all()

    def test_all_multiword(self):
        vec = BitVector.ones(130)
        assert vec.all()
        vec[129] = False
        assert not vec.all()
        vec2 = BitVector.ones(130)
        vec2[0] = False
        assert not vec2.all()

    def test_indices(self):
        vec = BitVector.from_bools([0, 1, 0, 1, 1])
        assert vec.indices().tolist() == [1, 3, 4]

    def test_to_mask_roundtrip(self):
        vec = BitVector.from_bools([1, 0, 1, 1, 0, 0, 1])
        assert BitVector.from_mask(vec.to_mask()) == vec

    def test_select_rows(self):
        vec = BitVector.from_bools([0, 1, 1])
        assert select_rows(vec) == [1, 2]


class TestMutation:
    def test_append(self):
        vec = BitVector(0)
        vec.append(True)
        vec.append(False)
        vec.append(True)
        assert vec.to_bitstring() == "101"

    def test_extend(self):
        vec = BitVector(0)
        vec.extend([True, True, False])
        assert vec.to_bitstring() == "110"

    def test_resize_grow(self):
        vec = BitVector.from_bools([1, 1])
        vec.resize(5)
        assert vec.to_bitstring() == "11000"

    def test_resize_shrink_masks(self):
        vec = BitVector.ones(10)
        vec.resize(4)
        assert vec.count() == 4
        vec.resize(10)
        assert vec.count() == 4  # truncated bits stay cleared

    def test_resize_across_word_boundary(self):
        vec = BitVector.ones(64)
        vec.resize(65)
        assert vec.count() == 64
        assert not vec[64]

    def test_clear(self):
        vec = BitVector.ones(9)
        vec.clear()
        assert vec.count() == 0
        assert len(vec) == 9

    def test_copy_is_independent(self):
        vec = BitVector.from_bools([1, 0])
        dup = vec.copy()
        dup[1] = True
        assert not vec[1]


class TestProtocol:
    def test_equality(self):
        a = BitVector.from_bools([1, 0, 1])
        b = BitVector.from_bools([1, 0, 1])
        c = BitVector.from_bools([1, 0, 0])
        assert a == b
        assert a != c
        assert a != BitVector(3 + 1)

    def test_hash_consistent(self):
        a = BitVector.from_bools([1, 0, 1])
        b = BitVector.from_bools([1, 0, 1])
        assert hash(a) == hash(b)

    def test_repr_short_and_long(self):
        assert "101" in repr(BitVector.from_bools([1, 0, 1]))
        assert "nbits=100" in repr(BitVector(100))

    def test_nbytes(self):
        assert BitVector(64).nbytes() == 8
        assert BitVector(65).nbytes() == 16
