"""Unit tests for the Index base class: dispatch, stats, costs."""

import pytest

from repro.errors import UnsupportedPredicateError
from repro.index.base import IndexStatistics, LookupCost
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.query.predicates import Equals, InList, IsNull, Range
from repro.table.table import Table
from tests.conftest import matching_rows


@pytest.fixture
def table():
    t = Table("t", ["v"])
    for value in [1, 2, 3, 1, 2, 3, 1, None]:
        t.append({"v": value})
    return t


class TestDispatch:
    def test_and_combines_vectors(self, table):
        index = SimpleBitmapIndex(table, "v")
        pred = InList("v", [1, 2]) & ~Equals("v", 2)
        got = sorted(index.lookup(pred).indices().tolist())
        assert got == matching_rows(table, pred)

    def test_or_combines_vectors(self, table):
        index = SimpleBitmapIndex(table, "v")
        pred = Equals("v", 1) | Equals("v", 3)
        got = sorted(index.lookup(pred).indices().tolist())
        assert got == matching_rows(table, pred)

    def test_nested_boolean_tree(self, table):
        index = EncodedBitmapIndex(table, "v")
        pred = (Equals("v", 1) | Equals("v", 2)) & ~IsNull("v")
        got = sorted(index.lookup(pred).indices().tolist())
        assert got == matching_rows(table, pred)

    def test_not_excludes_void_rows(self, table):
        index = SimpleBitmapIndex(table, "v")
        table.attach(index)
        table.delete(0)
        result = index.lookup(~Equals("v", 2))
        assert 0 not in result.indices().tolist()
        table.detach(index)

    def test_wrong_column_rejected(self, table):
        index = SimpleBitmapIndex(table, "v")
        with pytest.raises(UnsupportedPredicateError):
            index.lookup(Equals("other", 1))

    def test_mixed_column_tree_rejected(self, table):
        index = SimpleBitmapIndex(table, "v")
        with pytest.raises(UnsupportedPredicateError):
            index.lookup(Equals("v", 1) & Equals("other", 2))


class TestCostAccounting:
    def test_last_cost_per_query(self, table):
        index = SimpleBitmapIndex(table, "v")
        index.lookup(Equals("v", 1))
        first = index.last_cost.vectors_accessed
        index.lookup(InList("v", [1, 2, 3]))
        second = index.last_cost.vectors_accessed
        assert first == 1
        assert second == 3

    def test_stats_accumulate(self, table):
        index = SimpleBitmapIndex(table, "v")
        index.lookup(Equals("v", 1))
        index.lookup(Equals("v", 2))
        assert index.stats.lookups == 2
        assert index.stats.vectors_accessed == 2

    def test_stats_reset(self, table):
        index = SimpleBitmapIndex(table, "v")
        index.lookup(Equals("v", 1))
        index.stats.reset()
        assert index.stats.lookups == 0
        assert index.stats.vectors_accessed == 0

    def test_boolean_tree_cost_is_sum(self, table):
        index = SimpleBitmapIndex(table, "v")
        index.lookup(Equals("v", 1) | Equals("v", 2))
        assert index.last_cost.vectors_accessed == 2

    def test_lookup_cost_total(self):
        cost = LookupCost(
            vectors_accessed=3, node_accesses=2, rows_checked=10
        )
        assert cost.total_accesses() == 5

    def test_statistics_record(self):
        stats = IndexStatistics()
        stats.record(LookupCost(vectors_accessed=4))
        stats.record(LookupCost(node_accesses=2, rows_checked=7))
        assert stats.lookups == 2
        assert stats.vectors_accessed == 4
        assert stats.node_accesses == 2
        assert stats.rows_checked == 7
