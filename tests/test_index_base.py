"""Unit tests for the Index base class: dispatch, stats, costs."""

import pytest

from repro.errors import UnsupportedPredicateError
from repro.index.base import IndexStatistics, LookupCost
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.query.predicates import Equals, InList, IsNull, Range
from repro.table.table import Table
from tests.conftest import matching_rows


@pytest.fixture
def table():
    t = Table("t", ["v"])
    for value in [1, 2, 3, 1, 2, 3, 1, None]:
        t.append({"v": value})
    return t


class TestDispatch:
    def test_and_combines_vectors(self, table):
        index = SimpleBitmapIndex(table, "v")
        pred = InList("v", [1, 2]) & ~Equals("v", 2)
        got = sorted(index.lookup(pred).indices().tolist())
        assert got == matching_rows(table, pred)

    def test_or_combines_vectors(self, table):
        index = SimpleBitmapIndex(table, "v")
        pred = Equals("v", 1) | Equals("v", 3)
        got = sorted(index.lookup(pred).indices().tolist())
        assert got == matching_rows(table, pred)

    def test_nested_boolean_tree(self, table):
        index = EncodedBitmapIndex(table, "v")
        pred = (Equals("v", 1) | Equals("v", 2)) & ~IsNull("v")
        got = sorted(index.lookup(pred).indices().tolist())
        assert got == matching_rows(table, pred)

    def test_not_excludes_void_rows(self, table):
        index = SimpleBitmapIndex(table, "v")
        table.attach(index)
        table.delete(0)
        result = index.lookup(~Equals("v", 2))
        assert 0 not in result.indices().tolist()
        table.detach(index)

    def test_wrong_column_rejected(self, table):
        index = SimpleBitmapIndex(table, "v")
        with pytest.raises(UnsupportedPredicateError):
            index.lookup(Equals("other", 1))

    def test_mixed_column_tree_rejected(self, table):
        index = SimpleBitmapIndex(table, "v")
        with pytest.raises(UnsupportedPredicateError):
            index.lookup(Equals("v", 1) & Equals("other", 2))


class TestCostAccounting:
    def test_last_cost_per_query(self, table):
        index = SimpleBitmapIndex(table, "v")
        index.lookup(Equals("v", 1))
        first = index.last_cost.vectors_accessed
        index.lookup(InList("v", [1, 2, 3]))
        second = index.last_cost.vectors_accessed
        assert first == 1
        assert second == 3

    def test_stats_accumulate(self, table):
        index = SimpleBitmapIndex(table, "v")
        index.lookup(Equals("v", 1))
        index.lookup(Equals("v", 2))
        assert index.stats.lookups == 2
        assert index.stats.vectors_accessed == 2

    def test_stats_reset(self, table):
        index = SimpleBitmapIndex(table, "v")
        index.lookup(Equals("v", 1))
        index.stats.reset()
        assert index.stats.lookups == 0
        assert index.stats.vectors_accessed == 0

    def test_boolean_tree_cost_is_sum(self, table):
        index = SimpleBitmapIndex(table, "v")
        index.lookup(Equals("v", 1) | Equals("v", 2))
        assert index.last_cost.vectors_accessed == 2

    def test_lookup_cost_total(self):
        cost = LookupCost(
            vectors_accessed=3, node_accesses=2, rows_checked=10
        )
        assert cost.total_accesses() == 5

    def test_statistics_record(self):
        stats = IndexStatistics()
        stats.record(LookupCost(vectors_accessed=4))
        stats.record(LookupCost(node_accesses=2, rows_checked=7))
        assert stats.lookups == 2
        assert stats.vectors_accessed == 4
        assert stats.node_accesses == 2
        assert stats.rows_checked == 7


class TestDeprecatedConstructorShims:
    """The pre-normalization call forms still work, but warn."""

    def test_positional_encoding_warns_and_applies(self, table):
        reference = EncodedBitmapIndex(table, "v")
        mapping = reference._mapping
        with pytest.warns(DeprecationWarning, match="positional"):
            index = EncodedBitmapIndex(table, "v", mapping)  # ebilint: disable=EBI206
        assert index._mapping is mapping
        pred = Equals("v", 2)
        assert (
            index.lookup(pred).indices().tolist()
            == reference.lookup(pred).indices().tolist()
        )

    def test_mapping_keyword_warns_and_maps_to_encoding(self, table):
        mapping = EncodedBitmapIndex(table, "v")._mapping
        with pytest.warns(DeprecationWarning, match="mapping"):
            index = EncodedBitmapIndex(table, "v", mapping=mapping)  # ebilint: disable=EBI206
        assert index._mapping is mapping

    def test_btree_positional_page_size_warns(self, table):
        from repro.index.btree import BPlusTreeIndex

        with pytest.warns(DeprecationWarning, match="page_size"):
            index = BPlusTreeIndex(table, "v", 1024)  # ebilint: disable=EBI206
        assert index.page_size == 1024

    def test_groupset_mappings_keyword_warns(self, table):
        from repro.index.groupset import GroupSetIndex

        mapping = EncodedBitmapIndex(table, "v")._mapping
        with pytest.warns(DeprecationWarning, match="mappings"):
            GroupSetIndex(table, ["v"], mappings={"v": mapping})  # ebilint: disable=EBI206

    def test_too_many_positionals_still_a_typeerror(self, table):
        with pytest.raises(TypeError, match="positional"):
            SimpleBitmapIndex(table, "v", 1, 2, 3, 4, 5)  # ebilint: disable=EBI206

    def test_normalized_form_does_not_warn(self, table, recwarn):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            EncodedBitmapIndex(table, "v", encoding=None)
