"""Edge cases and failure injection across the stack.

Small domains, empty selections, all-NULL columns, single values,
domain-of-one, deleting everything, querying after total deletion,
appending to empty tables, and misuse errors.
"""

import pytest

from repro.encoding.mapping import MappingTable
from repro.errors import IndexBuildError, UnsupportedPredicateError
from repro.index.btree import BPlusTreeIndex
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.range_bitmap import RangeBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.query.predicates import Equals, InList, IsNull, Range
from repro.table.table import Table


def _table(values):
    table = Table("t", ["v"])
    for value in values:
        table.append({"v": value})
    return table


class TestTinyDomains:
    def test_single_value_domain(self):
        table = _table(["only"] * 10)
        index = EncodedBitmapIndex(table, "v")
        assert index.lookup(Equals("v", "only")).count() == 10
        assert index.lookup(Equals("v", "other")).count() == 0

    def test_single_row_table(self):
        table = _table([42])
        for cls in (EncodedBitmapIndex, SimpleBitmapIndex):
            index = cls(table, "v")
            assert index.lookup(Equals("v", 42)).indices().tolist() == [0]

    def test_two_value_domain_is_one_vector(self):
        table = _table(["M", "F"] * 20)
        index = EncodedBitmapIndex(table, "v", void_mode="vector")
        assert index.width == 1  # the paper's GENDER example, encoded

    def test_empty_in_list(self):
        table = _table([1, 2, 3])
        index = EncodedBitmapIndex(table, "v")
        assert index.lookup(InList("v", [])).count() == 0


class TestNullHeavy:
    def test_all_null_column_simple(self):
        table = _table([None, None, None])
        index = SimpleBitmapIndex(table, "v")
        assert index.lookup(IsNull("v")).count() == 3
        assert index.lookup(Equals("v", 1)).count() == 0

    def test_all_null_column_encoded(self):
        table = _table([None, None])
        index = EncodedBitmapIndex(table, "v")
        assert index.lookup(IsNull("v")).count() == 2

    def test_null_not_in_range(self):
        table = _table([1, None, 3])
        index = EncodedBitmapIndex(table, "v")
        result = index.lookup(Range("v", 0, 10))
        assert result.indices().tolist() == [0, 2]

    def test_null_updates(self):
        table = _table([1, 2])
        index = EncodedBitmapIndex(table, "v")
        table.attach(index)
        table.update(0, "v", None)
        assert index.lookup(IsNull("v")).indices().tolist() == [0]
        table.update(0, "v", 2)
        assert index.lookup(IsNull("v")).count() == 0
        table.detach(index)


class TestMassDeletion:
    def test_delete_everything(self):
        table = _table([1, 2, 3, 4])
        index = EncodedBitmapIndex(table, "v")
        table.attach(index)
        for row_id in range(4):
            table.delete(row_id)
        assert index.lookup(Range("v", 0, 10)).count() == 0
        assert table.live_count() == 0
        table.detach(index)

    def test_append_after_total_deletion(self):
        table = _table([1, 2])
        index = EncodedBitmapIndex(table, "v")
        table.attach(index)
        table.delete(0)
        table.delete(1)
        row_id = table.append({"v": 1})
        assert index.lookup(Equals("v", 1)).indices().tolist() == [row_id]
        table.detach(index)

    def test_btree_after_heavy_deletion(self):
        table = _table(list(range(50)))
        index = BPlusTreeIndex(table, "v", fanout=4, page_size=64)
        table.attach(index)
        for row_id in range(0, 50, 2):
            table.delete(row_id)
        result = index.lookup(Range("v", 0, 49))
        assert sorted(result.indices().tolist()) == list(range(1, 50, 2))


class TestMisuse:
    def test_predicate_on_other_column(self):
        table = Table("t", ["a", "b"])
        table.append({"a": 1, "b": 2})
        index = EncodedBitmapIndex(table, "a")
        with pytest.raises(UnsupportedPredicateError):
            index.lookup(Equals("b", 2))

    def test_range_bitmap_needs_values(self):
        table = _table([None, None])
        with pytest.raises(IndexBuildError):
            RangeBitmapIndex(table, "v")

    def test_range_bitmap_rejects_null_predicate(self):
        table = _table([1, 2, 3])
        index = RangeBitmapIndex(table, "v", buckets=2)
        with pytest.raises(UnsupportedPredicateError):
            index.lookup(IsNull("v"))


class TestIntervalFastPath:
    def test_large_contiguous_selection_uses_fast_path(self):
        """Above the threshold, contiguous code intervals bypass QM
        and still return exact results."""
        values = list(range(300))
        table = _table([v % 300 for v in range(900)])
        mapping = MappingTable.from_pairs(
            [(v, v) for v in values], width=9
        )
        index = EncodedBitmapIndex(
            table, "v", encoding=mapping, void_mode="vector"
        )
        selected = values[:256]  # contiguous, above threshold
        result = index.lookup(InList("v", selected))
        expected = [
            row_id
            for row_id in range(len(table))
            if table.row(row_id)["v"] < 256
        ]
        assert sorted(result.indices().tolist()) == expected
        assert index.last_cost.vectors_accessed <= index.width + 1

    def test_fast_path_vector_budget(self):
        from repro.boolean.intervals import reduce_interval

        reduced = reduce_interval(3, 250, 9)
        assert reduced.vector_count() <= 9


class TestUnhashableSafety:
    def test_mixed_type_domain(self):
        """String/int mixed domains still encode (sorted by str)."""
        table = _table(["x", 1, "y", 2, "x"])
        index = EncodedBitmapIndex(table, "v")
        assert index.lookup(Equals("v", "x")).count() == 2
        assert index.lookup(Equals("v", 1)).count() == 1


class TestGrowthBoundary:
    def test_repeated_expansion_through_powers_of_two(self):
        """Append 1..20 distinct values one at a time; every width
        transition must keep lookups exact."""
        table = Table("t", ["v"])
        index = None
        table.append({"v": 0})
        index = EncodedBitmapIndex(table, "v")
        table.attach(index)
        for value in range(1, 20):
            table.append({"v": value})
            # every value so far still retrievable
            for probe in range(0, value + 1, max(1, value // 3)):
                got = index.lookup(Equals("v", probe)).count()
                assert got == 1, (value, probe)
        table.detach(index)
