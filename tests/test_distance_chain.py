"""Unit tests for repro.encoding.distance and repro.encoding.chain
(Definitions 2.2-2.4 of the paper)."""

import pytest

from repro.encoding.chain import (
    find_chain,
    find_prime_chain,
    is_chain,
    is_prime_chain,
)
from repro.encoding.distance import binary_distance, hamming_ball, neighbors


class TestBinaryDistance:
    def test_paper_example(self):
        """lambda(011, 111) = 1 (Definition 2.2's example)."""
        assert binary_distance(0b011, 0b111) == 1

    def test_identity(self):
        assert binary_distance(5, 5) == 0

    def test_symmetry(self):
        assert binary_distance(3, 12) == binary_distance(12, 3)

    def test_triangle_inequality(self):
        for a in range(8):
            for b in range(8):
                for c in range(8):
                    assert binary_distance(a, c) <= binary_distance(
                        a, b
                    ) + binary_distance(b, c)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            binary_distance(-1, 0)


class TestHammingBall:
    def test_radius_zero(self):
        assert list(hamming_ball(5, 0, 3)) == [5]

    def test_radius_one(self):
        ball = set(hamming_ball(0, 1, 3))
        assert ball == {0, 1, 2, 4}

    def test_full_radius(self):
        assert len(list(hamming_ball(0, 3, 3))) == 8

    def test_neighbors(self):
        assert set(neighbors(0b000, 3)) == {0b001, 0b010, 0b100}


class TestIsChain:
    def test_paper_prime_chain_example(self):
        """<000, 100, 110, 010> is a chain (the paper's example)."""
        assert is_chain([0b000, 0b100, 0b110, 0b010])

    def test_wraparound_required(self):
        # path without closing edge: 000-001-011-111 (111 to 000 is 3)
        assert not is_chain([0b000, 0b001, 0b011, 0b111])

    def test_duplicates_rejected(self):
        assert not is_chain([0, 1, 0, 1])

    def test_too_short(self):
        assert not is_chain([0])

    def test_two_element_chain(self):
        # 0-1 and back: both steps distance 1
        assert is_chain([0, 1])


class TestIsPrimeChain:
    def test_paper_example(self):
        assert is_prime_chain([0b000, 0b100, 0b110, 0b010])

    def test_non_power_of_two_size(self):
        assert not is_prime_chain([0, 1, 3])

    def test_pairwise_bound_violated(self):
        # 4 codes = 2^2 but 000 and 111 at distance 3 > 2
        assert not is_prime_chain([0b000, 0b001, 0b011, 0b111])

    def test_singleton_is_prime_chain(self):
        assert is_prime_chain([5])


class TestFindChain:
    def test_paper_negative_example(self):
        """No chain exists on {001, 011, 111} (paper, Section 2.2)."""
        assert find_chain([0b001, 0b011, 0b111]) is None

    def test_finds_cycle_on_face(self):
        chain = find_chain([0b00, 0b01, 0b10, 0b11])
        assert chain is not None
        assert is_chain(chain)

    def test_odd_size_has_no_chain(self):
        # hypercube is bipartite: odd cycles impossible
        assert find_chain([0, 1, 3]) is None

    def test_parity_imbalance_rejected(self):
        # four codes, 3 even parity + 1 odd: no Hamiltonian cycle
        assert find_chain([0b000, 0b011, 0b101, 0b110]) is None or False
        # (all of 011,101,110 have even bit count = 2; 000 has 0 ->
        # parity classes are 4/0, cannot alternate)
        assert find_chain([0b000, 0b011, 0b101, 0b110]) is None

    def test_full_cube_gray_cycle(self):
        chain = find_chain(list(range(8)))
        assert chain is not None
        assert is_chain(chain)
        assert sorted(chain) == list(range(8))

    def test_fewer_than_two(self):
        assert find_chain([3]) is None
        assert find_chain([]) is None


class TestFindPrimeChain:
    def test_paper_example_set(self):
        chain = find_prime_chain([0b000, 0b110, 0b010, 0b100])
        assert chain is not None
        assert is_prime_chain(chain)

    def test_subcube_always_has_prime_chain(self):
        # the subcube x2=1 of a 3-cube
        chain = find_prime_chain([0b100, 0b101, 0b110, 0b111])
        assert chain is not None

    def test_none_for_scattered_codes(self):
        assert find_prime_chain([0b000, 0b011, 0b101, 0b110]) is None

    def test_none_for_wrong_size(self):
        assert find_prime_chain([0, 1, 2]) is None

    def test_singleton(self):
        assert find_prime_chain([7]) == [7]
