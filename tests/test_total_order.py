"""Unit tests for repro.encoding.total_order (Section 2.3, Figure 6)."""

import pytest

from repro.encoding.mapping import VOID
from repro.encoding.total_order import (
    bit_slice_encoding,
    is_order_preserving,
    order_preserving_encoding,
    range_cost,
)


class TestBitSliceEncoding:
    def test_consecutive_codes(self):
        table = bit_slice_encoding([10, 30, 20])
        assert table.encode(10) == 0
        assert table.encode(20) == 1
        assert table.encode(30) == 2

    def test_with_void(self):
        table = bit_slice_encoding([5, 6], reserve_void_zero=True)
        assert table.encode(VOID) == 0
        assert table.encode(5) == 1

    def test_order_preserving(self):
        table = bit_slice_encoding(range(100, 150))
        assert is_order_preserving(table)

    def test_width(self):
        table = bit_slice_encoding(range(6))
        assert table.width == 3


class TestIsOrderPreserving:
    def test_detects_violation(self):
        from repro.encoding.mapping import MappingTable

        table = MappingTable.from_pairs([(1, 1), (2, 0)])
        assert not is_order_preserving(table)

    def test_unorderable_domain(self):
        from repro.encoding.mapping import MappingTable

        table = MappingTable.from_pairs([("a", 0), (1, 1)])
        with pytest.raises(ValueError):
            is_order_preserving(table)


class TestOrderPreservingEncoding:
    def test_paper_figure6(self):
        """Domain {101..106}, hot set {101,102,104,105}: an order
        preserving encoding exists that also reduces the hot IN-list."""
        domain = [101, 102, 103, 104, 105, 106]
        hot = [[101, 102], [104, 105]]
        table = order_preserving_encoding(domain, hot_sets=hot)
        assert is_order_preserving(table)
        # hot set reads at most 2 of 3 vectors (paper's Figure 6
        # mapping reads 2: B2'B1' covers 000,001 and B2B1' covers
        # 100,101 -> B1' alone after reduction with don't-cares).
        from repro.boolean.reduction import reduce_values

        codes = [table.encode(v) for v in (101, 102, 104, 105)]
        reduced = reduce_values(
            codes, table.width, dont_cares=table.unused_codes()
        )
        assert reduced.vector_count() <= 2

    def test_exact_paper_mapping_cost(self):
        """Pin Figure 6 itself: 101->000, 102->001, 103->010,
        104->100, 105->101, 106->110."""
        from repro.boolean.reduction import reduce_values

        fig6 = {101: 0b000, 102: 0b001, 103: 0b010,
                104: 0b100, 105: 0b101, 106: 0b110}
        codes = [fig6[v] for v in (101, 102, 104, 105)]
        dont_cares = [c for c in range(8) if c not in fig6.values()]
        reduced = reduce_values(codes, 3, dont_cares=dont_cares)
        # {000,001,100,101} = B1' -> a single vector
        assert reduced.to_string() == "B1'"
        assert reduced.vector_count() == 1

    def test_no_hot_sets_reduces_to_bit_slice(self):
        domain = list(range(8))
        table = order_preserving_encoding(domain)
        assert is_order_preserving(table)
        assert [table.encode(v) for v in domain] == list(range(8))

    def test_keeps_order_with_gaps(self):
        domain = list(range(12))
        table = order_preserving_encoding(
            domain, hot_sets=[[4, 5, 6, 7]]
        )
        assert is_order_preserving(table)

    def test_void_reservation(self):
        table = order_preserving_encoding(
            [1, 2, 3], reserve_void_zero=True
        )
        assert table.encode(VOID) == 0
        assert is_order_preserving(table)


class TestRangeCost:
    def test_aligned_range_is_cheap(self):
        table = bit_slice_encoding(range(16))
        # values 0..7 -> codes 0..7 -> B3'
        assert range_cost(table, 0, 7) == 1

    def test_empty_range(self):
        table = bit_slice_encoding(range(4))
        assert range_cost(table, 100, 200) == 0

    def test_exclusive_range(self):
        table = bit_slice_encoding(range(8))
        cost_incl = range_cost(table, 2, 5, inclusive=True)
        cost_excl = range_cost(table, 2, 5, inclusive=False)
        assert cost_excl >= 1
        assert cost_incl >= 1
