"""Integration tests: the full warehouse stack working together.

Builds the paper's SALES star schema (fact + SALESPOINT hierarchy),
indexes it with hierarchy-encoded bitmap indexes, and runs OLAP-style
selections through the planner/executor, comparing everything against
scans.
"""

import random

import pytest

from repro.encoding.hierarchy import Hierarchy, hierarchy_encoding
from repro.index.btree import BPlusTreeIndex
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.groupset import GroupSetIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.query.executor import Executor
from repro.query.predicates import Equals, InList, Range
from repro.table.catalog import Catalog
from repro.table.schema import Dimension, FactTable, StarSchema
from repro.table.table import Table
from tests.conftest import matching_rows

COMPANIES = {
    "a": [1, 2, 3, 4], "b": [5, 6], "c": [7, 8],
    "d": [3, 4, 9, 10], "e": [9, 10, 11, 12],
}
ALLIANCES = {"X": ["a", "b", "c"], "Y": ["c", "d"], "Z": ["d", "e"]}


@pytest.fixture
def warehouse():
    rng = random.Random(42)
    hierarchy = Hierarchy(
        range(1, 13), {"company": COMPANIES, "alliance": ALLIANCES}
    )

    salespoint = Table("salespoint", ["branch", "region"])
    for branch in range(1, 13):
        salespoint.append(
            {"branch": branch, "region": "R" + str(branch % 4)}
        )
    dim = Dimension(salespoint, key="branch", hierarchy=hierarchy)

    sales = Table("sales", ["branch", "product", "amount"])
    for _ in range(800):
        sales.append(
            {
                "branch": rng.randint(1, 12),
                "product": rng.randint(100, 160),
                "amount": rng.randint(1, 1000),
            }
        )
    fact = FactTable(sales, {"branch": dim})
    schema = StarSchema(fact)

    catalog = Catalog()
    catalog.register_table(sales)
    catalog.register_table(salespoint)

    mapping = hierarchy_encoding(hierarchy, seed=0)
    catalog.register_index(
        EncodedBitmapIndex(sales, "branch", encoding=mapping,
                           void_mode="vector")
    )
    catalog.register_index(EncodedBitmapIndex(sales, "product"))
    catalog.register_index(
        BPlusTreeIndex(sales, "amount", fanout=16, page_size=256)
    )
    return schema, catalog


class TestStarSchemaQueries:
    def test_rollup_selection_matches_scan(self, warehouse):
        """'Select sales of all companies in alliance Z' — the paper's
        OLAP example — via hierarchy-encoded bitmap index."""
        schema, catalog = warehouse
        sales = catalog.table("sales")
        executor = Executor(catalog)
        in_list = schema.rollup_in_list("salespoint", "alliance", "Z")
        predicate = InList("branch", in_list)
        result = executor.select(sales, predicate)
        assert result.row_ids() == matching_rows(sales, predicate)
        assert not result.used_scan

    def test_rollup_cost_below_worst_case(self, warehouse):
        schema, catalog = warehouse
        sales = catalog.table("sales")
        executor = Executor(catalog)
        for level, elements in (
            ("company", COMPANIES), ("alliance", ALLIANCES)
        ):
            for element in elements:
                in_list = schema.rollup_in_list(
                    "salespoint", level, element
                )
                result = executor.select(
                    sales, InList("branch", in_list)
                )
                # worst case would be k=4 vectors + existence
                assert result.cost.vectors_accessed <= 5

    def test_multi_dimension_selection(self, warehouse):
        schema, catalog = warehouse
        sales = catalog.table("sales")
        executor = Executor(catalog)
        in_list = schema.rollup_in_list("salespoint", "company", "a")
        predicate = (
            InList("branch", in_list)
            & Range("product", 110, 140)
            & Range("amount", 100, 900)
        )
        result = executor.select(sales, predicate)
        assert result.row_ids() == matching_rows(sales, predicate)

    def test_group_by_alliance_members(self, warehouse):
        schema, catalog = warehouse
        sales = catalog.table("sales")
        groupset = GroupSetIndex(sales, ["branch"])
        counts = groupset.group_by()
        assert sum(counts.values()) == len(sales)

    def test_updates_flow_through_executor(self, warehouse):
        schema, catalog = warehouse
        sales = catalog.table("sales")
        executor = Executor(catalog)
        row_id = sales.append(
            {"branch": 5, "product": 100, "amount": 50}
        )
        predicate = Equals("branch", 5)
        assert row_id in executor.select(sales, predicate).row_ids()
        sales.delete(row_id)
        assert row_id not in executor.select(sales, predicate).row_ids()


class TestIndexAgreement:
    """All index families must return identical results."""

    def test_all_indexes_agree(self, sales_table):
        from repro.index.bitsliced import BitSlicedIndex
        from repro.index.dynamic_bitmap import DynamicBitmapIndex
        from repro.index.hybrid import HybridBitmapBTreeIndex
        from repro.index.projection import ProjectionIndex
        from repro.index.range_bitmap import RangeBitmapIndex
        from repro.index.value_list import ValueListIndex

        indexes = [
            SimpleBitmapIndex(sales_table, "qty"),
            EncodedBitmapIndex(sales_table, "qty"),
            BPlusTreeIndex(sales_table, "qty", fanout=8, page_size=128),
            ProjectionIndex(sales_table, "qty"),
            BitSlicedIndex(sales_table, "qty"),
            ValueListIndex(sales_table, "qty"),
            DynamicBitmapIndex(sales_table, "qty"),
            RangeBitmapIndex(sales_table, "qty", buckets=6),
            HybridBitmapBTreeIndex(sales_table, "qty"),
        ]
        predicates = [
            Equals("qty", 25),
            InList("qty", [1, 10, 20, 30]),
            Range("qty", 5, 35),
            Range("qty", None, 10),
            Range("qty", 45, None),
        ]
        for predicate in predicates:
            expected = matching_rows(sales_table, predicate)
            for index in indexes:
                got = sorted(index.lookup(predicate).indices().tolist())
                assert got == expected, (
                    f"{index.kind} disagrees on {predicate}"
                )
