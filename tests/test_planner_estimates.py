"""Unit tests for the planner's cost-estimation model."""

import math

import pytest

from repro.index.bitsliced import BitSlicedIndex
from repro.index.btree import BPlusTreeIndex
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.hybrid import HybridBitmapBTreeIndex
from repro.index.projection import ProjectionIndex
from repro.index.range_bitmap import RangeBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.index.value_list import ValueListIndex
from repro.query.planner import Planner
from repro.query.predicates import Equals, InList, IsNull, Range
from repro.table.catalog import Catalog
from repro.table.table import Table


@pytest.fixture
def setup():
    table = Table("t", ["v"])
    for i in range(256):
        table.append({"v": i % 64})
    catalog = Catalog()
    catalog.register_table(table)
    planner = Planner(catalog)
    return table, catalog, planner


class TestSelectedWidth:
    def test_equals_is_one(self, setup):
        table, _, planner = setup
        column = table.column("v")
        assert planner._selected_width(column, Equals("v", 3), 64) == 1

    def test_in_list_is_len(self, setup):
        table, _, planner = setup
        column = table.column("v")
        assert planner._selected_width(
            column, InList("v", [1, 2, 3]), 64
        ) == 3

    def test_range_counts_matching_values(self, setup):
        table, _, planner = setup
        column = table.column("v")
        assert planner._selected_width(
            column, Range("v", 10, 19), 64
        ) == 10


class TestEstimates:
    def test_simple_bitmap_is_delta(self, setup):
        table, _, planner = setup
        index = SimpleBitmapIndex(table, "v")
        assert planner.estimate_cost(index, Equals("v", 1)) == 1.0
        assert planner.estimate_cost(
            index, InList("v", list(range(20)))
        ) == 20.0

    def test_encoded_point_costs_k(self, setup):
        table, _, planner = setup
        index = EncodedBitmapIndex(table, "v")
        k = math.ceil(math.log2(64))
        assert planner.estimate_cost(index, Equals("v", 1)) == float(k)

    def test_encoded_wide_range_costs_little(self, setup):
        table, _, planner = setup
        index = EncodedBitmapIndex(table, "v")
        wide = InList("v", list(range(32)))
        narrow = InList("v", [1, 2])
        assert planner.estimate_cost(index, wide) < planner.estimate_cost(
            index, narrow
        )

    def test_btree_point_costs_height(self, setup):
        table, _, planner = setup
        index = BPlusTreeIndex(table, "v", fanout=4, page_size=64)
        assert planner.estimate_cost(index, Equals("v", 1)) == float(
            index.height
        )

    def test_btree_range_grows_with_delta(self, setup):
        table, _, planner = setup
        index = BPlusTreeIndex(table, "v", fanout=4, page_size=64)
        narrow = planner.estimate_cost(index, Range("v", 0, 3))
        wide = planner.estimate_cost(index, Range("v", 0, 60))
        assert wide > narrow

    def test_projection_is_scan_shaped(self, setup):
        table, _, planner = setup
        index = ProjectionIndex(table, "v")
        cost = planner.estimate_cost(index, Equals("v", 1))
        assert cost == len(table) / 100.0

    def test_other_kinds_have_estimates(self, setup):
        table, _, planner = setup
        for index in (
            ValueListIndex(table, "v"),
            RangeBitmapIndex(table, "v", buckets=4),
            HybridBitmapBTreeIndex(table, "v"),
            BitSlicedIndex(table, "v"),
        ):
            cost = planner.estimate_cost(index, Range("v", 0, 10))
            assert cost > 0


class TestChoicesFollowThePaper:
    def test_ranking_matches_actual_costs(self, setup):
        """The planner's preference (simple for points, encoded for
        wide ranges) agrees with the measured vector counts."""
        table, catalog, planner = setup
        simple = SimpleBitmapIndex(table, "v")
        encoded = EncodedBitmapIndex(table, "v")
        catalog.register_index(simple, attach=False)
        catalog.register_index(encoded, attach=False)

        point = Equals("v", 7)
        plan = planner.plan(table, point)
        chosen = plan.steps[0].index
        simple.lookup(point)
        encoded.lookup(point)
        best_actual = min(
            (simple.last_cost.vectors_accessed, simple),
            (encoded.last_cost.vectors_accessed, encoded),
            key=lambda pair: pair[0],
        )[1]
        assert chosen.kind == best_actual.kind

        wide = InList("v", list(range(32)))
        plan = planner.plan(table, wide)
        assert plan.steps[0].index.kind == "encoded-bitmap"
