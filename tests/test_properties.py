"""Property-based tests (hypothesis) for core invariants.

These encode the library's load-bearing correctness properties:

* BitVector logical ops agree with Python integer bitwise semantics.
* RLE compression is a lossless round trip and op-compatible.
* Logical reduction preserves Boolean function semantics exactly.
* The reduced DNF evaluated over bitmap vectors equals a row-by-row
  evaluation (index result == scan result).
* Chain/prime-chain checkers agree with their definitions.
* Encoded bitmap index lookups equal a naive table scan.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap.bitvector import BitVector
from repro.bitmap.rle import RunLengthBitmap
from repro.boolean.reduction import reduce_values
from repro.boolean.support import minimal_support
from repro.encoding.chain import find_chain, is_chain
from repro.encoding.distance import binary_distance
from repro.encoding.gray import gray_code, inverse_gray
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.query.predicates import InList
from repro.table.table import Table

bool_lists = st.lists(st.booleans(), min_size=0, max_size=300)


class TestBitVectorProperties:
    @given(bool_lists, st.data())
    def test_ops_match_integer_semantics(self, bits, data):
        other = data.draw(
            st.lists(
                st.booleans(), min_size=len(bits), max_size=len(bits)
            )
        )
        a = BitVector.from_bools(bits)
        b = BitVector.from_bools(other)
        int_a = sum(1 << i for i, bit in enumerate(bits) if bit)
        int_b = sum(1 << i for i, bit in enumerate(other) if bit)
        mask = (1 << len(bits)) - 1 if bits else 0
        assert int(
            sum(1 << i for i, bit in enumerate(a & b) if bit)
        ) == int_a & int_b
        assert int(
            sum(1 << i for i, bit in enumerate(a | b) if bit)
        ) == int_a | int_b
        assert int(
            sum(1 << i for i, bit in enumerate(a ^ b) if bit)
        ) == int_a ^ int_b
        assert int(
            sum(1 << i for i, bit in enumerate(~a) if bit)
        ) == (~int_a) & mask

    @given(bool_lists)
    def test_double_negation(self, bits):
        vec = BitVector.from_bools(bits)
        assert ~~vec == vec

    @given(bool_lists)
    def test_count_matches_sum(self, bits):
        assert BitVector.from_bools(bits).count() == sum(bits)

    @given(bool_lists)
    def test_de_morgan(self, bits):
        vec = BitVector.from_bools(bits)
        ones = BitVector.ones(len(bits))
        assert ~(vec & ones) == (~vec | ~ones)


class TestRleProperties:
    @given(bool_lists)
    def test_roundtrip(self, bits):
        vec = BitVector.from_bools(bits)
        assert RunLengthBitmap.from_bitvector(vec).to_bitvector() == vec

    @given(bool_lists, st.data())
    def test_ops_agree_with_uncompressed(self, bits, data):
        other = data.draw(
            st.lists(
                st.booleans(), min_size=len(bits), max_size=len(bits)
            )
        )
        a_vec = BitVector.from_bools(bits)
        b_vec = BitVector.from_bools(other)
        a = RunLengthBitmap.from_bitvector(a_vec)
        b = RunLengthBitmap.from_bitvector(b_vec)
        assert (a & b).to_bitvector() == (a_vec & b_vec)
        assert (a | b).to_bitvector() == (a_vec | b_vec)
        assert (a ^ b).to_bitvector() == (a_vec ^ b_vec)

    @given(bool_lists)
    def test_runs_are_canonical(self, bits):
        bitmap = RunLengthBitmap.from_bools(bits)
        runs = bitmap.runs
        assert all(length > 0 for _, length in runs)
        assert all(
            runs[i][0] != runs[i + 1][0] for i in range(len(runs) - 1)
        )


@st.composite
def on_dc_sets(draw, width=4):
    universe = list(range(1 << width))
    on = draw(st.lists(st.sampled_from(universe), max_size=12))
    dc = draw(st.lists(st.sampled_from(universe), max_size=6))
    return sorted(set(on)), sorted(set(dc) - set(on)), width


class TestReductionProperties:
    @given(on_dc_sets())
    @settings(max_examples=60, deadline=None)
    def test_reduction_preserves_semantics(self, spec):
        on, dc, width = spec
        reduced = reduce_values(on, width, dont_cares=dc)
        for value in range(1 << width):
            result = reduced.evaluate_value(value)
            if value in on:
                assert result
            elif value not in dc:
                assert not result

    @given(on_dc_sets())
    @settings(max_examples=60, deadline=None)
    def test_reduced_vector_count_lower_bounded_by_support(self, spec):
        """The reduced DNF can never use fewer variables than the
        exact minimal support (it is an upper bound on optimality)."""
        on, dc, width = spec
        if not on:
            return
        reduced = reduce_values(on, width, dont_cares=dc)
        support = minimal_support(on, width, dont_cares=dc)
        assert reduced.vector_count() >= len(support)

    @given(on_dc_sets())
    @settings(max_examples=40, deadline=None)
    def test_greedy_reduction_also_correct(self, spec):
        on, dc, width = spec
        reduced = reduce_values(on, width, dont_cares=dc, exact=False)
        for value in range(1 << width):
            if value in on:
                assert reduced.evaluate_value(value)
            elif value not in dc:
                assert not reduced.evaluate_value(value)


class TestChainProperties:
    @given(st.lists(st.integers(0, 15), min_size=2, max_size=8,
                    unique=True))
    @settings(max_examples=80, deadline=None)
    def test_found_chain_satisfies_definition(self, codes):
        chain = find_chain(codes)
        if chain is not None:
            assert is_chain(chain)
            assert sorted(chain) == sorted(codes)

    @given(st.integers(0, 4095))
    def test_gray_roundtrip(self, index):
        assert inverse_gray(gray_code(index)) == index

    @given(st.integers(0, 2000))
    def test_gray_adjacency(self, index):
        assert binary_distance(
            gray_code(index), gray_code(index + 1)
        ) == 1


class TestEncodedIndexProperties:
    @given(
        st.lists(st.integers(0, 20), min_size=1, max_size=120),
        st.lists(st.integers(0, 20), min_size=1, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_lookup_equals_scan(self, values, selected):
        table = Table("t", ["A"])
        for value in values:
            table.append({"A": value})
        index = EncodedBitmapIndex(table, "A")
        predicate = InList("A", selected)
        got = sorted(index.lookup(predicate).indices().tolist())
        want = [
            row_id
            for row_id in range(len(table))
            if predicate.matches(table.row(row_id))
        ]
        assert got == want

    @given(
        st.lists(st.integers(0, 20), min_size=2, max_size=80),
        st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_lookup_correct_after_deletions(self, values, data):
        table = Table("t", ["A"])
        for value in values:
            table.append({"A": value})
        index = EncodedBitmapIndex(table, "A")
        table.attach(index)
        victims = data.draw(
            st.lists(
                st.integers(0, len(values) - 1),
                max_size=5,
                unique=True,
            )
        )
        for victim in victims:
            table.delete(victim)
        predicate = InList("A", list(range(0, 21, 2)))
        got = sorted(index.lookup(predicate).indices().tolist())
        want = [
            row_id
            for row_id in range(len(table))
            if not table.is_void(row_id)
            and predicate.matches(table.row(row_id))
        ]
        assert got == want
