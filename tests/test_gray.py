"""Unit tests for repro.encoding.gray."""

import pytest

from repro.encoding.chain import is_chain, is_prime_chain
from repro.encoding.distance import binary_distance
from repro.encoding.gray import (
    gray_code,
    gray_pairs,
    gray_sequence,
    inverse_gray,
)


class TestGrayCode:
    def test_first_values(self):
        assert [gray_code(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gray_code(-1)

    def test_consecutive_distance_one(self):
        for i in range(100):
            assert binary_distance(gray_code(i), gray_code(i + 1)) == 1

    def test_bijective_on_cube(self):
        codes = [gray_code(i) for i in range(64)]
        assert sorted(codes) == list(range(64))


class TestInverseGray:
    def test_roundtrip(self):
        for i in range(256):
            assert inverse_gray(gray_code(i)) == i

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            inverse_gray(-1)


class TestGraySequence:
    def test_sequence_is_prime_chain(self):
        """The full Gray sequence of a cube is a prime chain."""
        for width in (1, 2, 3):
            seq = gray_sequence(width)
            assert is_prime_chain(seq)

    def test_sequence_is_chain(self):
        assert is_chain(gray_sequence(3))

    def test_width_zero(self):
        assert gray_sequence(0) == [0]

    def test_gray_pairs_all_adjacent(self):
        for a, b in gray_pairs(4):
            assert binary_distance(a, b) == 1

    def test_aligned_window_lies_in_subcube(self):
        """A 2^p-aligned window of the Gray sequence fills a subcube."""
        seq = gray_sequence(4)
        window = seq[8:12]  # aligned block of 4
        common_or = 0
        common_and = (1 << 4) - 1
        for code in window:
            common_or |= code
            common_and &= code
        free_bits = (common_or & ~common_and).bit_count()
        assert 1 << free_bits == len(window)
