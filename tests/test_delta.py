"""Delta tier: arrival-order deltas, compaction, snapshot epochs.

The invariant under test everywhere: merging base-plane results with
the delta is *bit-identical* — same rows, same ``c_e`` — to rebuilding
the planes from scratch.  The delta only changes when work happens
(plane rebuilds), never what a query returns or what it is charged.
"""

from __future__ import annotations

import threading

import pytest

from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.query.predicates import Equals, InList, NotPredicate
from repro.query.snapshot import pinned_rows, snapshot_rows
from repro.table.table import Table

VALUES = ["a", "b", "c", "d"]


def make(n=80, **options):
    table = Table.from_columns(
        "T", {"v": [VALUES[i % 4] for i in range(n)]}
    )
    index = EncodedBitmapIndex(table, "v", **options)
    table.attach(index)
    return table, index


def assert_bit_identical(index, table, predicates=None):
    """Index results equal a from-scratch rebuild, rows and c_e."""
    rebuilt = EncodedBitmapIndex(table, "v", encoding=index.mapping)
    for predicate in predicates or [Equals("v", v) for v in VALUES]:
        expected = rebuilt.lookup(predicate)
        actual = index.lookup(predicate)
        assert list(actual) == list(expected), predicate
        assert (
            index.last_cost.vectors_accessed
            == rebuilt.last_cost.vectors_accessed
        ), predicate


class TestDeltaTier:
    def test_appends_land_in_delta_without_plane_rebuild(self):
        table, index = make()
        index.lookup(Equals("v", "a"))  # warm the planes
        rebuilds = index.plane_rebuilds
        for i in range(16):
            table.append({"v": VALUES[i % 4]})
        assert index.delta_rows() == 16
        index.lookup(Equals("v", "a"))
        assert index.plane_rebuilds == rebuilds

    def test_delta_merge_is_bit_identical(self):
        table, index = make()
        index.lookup(Equals("v", "a"))
        for i in range(16):
            table.append({"v": VALUES[(i + 2) % 4]})
        assert_bit_identical(
            index,
            table,
            [
                Equals("v", "a"),
                Equals("v", "d"),
                InList("v", ["a", "c"]),
                NotPredicate(Equals("v", "b")),
            ],
        )

    def test_update_and_delete_of_delta_rows(self):
        table, index = make()
        index.lookup(Equals("v", "a"))
        rebuilds = index.plane_rebuilds
        row_id = table.append({"v": "a"})
        table.update(row_id, "v", "b")  # rewrite inside the delta
        table.delete(table.append({"v": "c"}))  # void inside the delta
        assert index.plane_rebuilds == rebuilds
        assert_bit_identical(index, table)

    def test_update_of_base_row_invalidates_planes(self):
        table, index = make()
        index.lookup(Equals("v", "a"))
        table.update(0, "v", "b")  # base row: must invalidate
        assert_bit_identical(index, table)

    def test_compact_folds_and_swaps_atomically(self):
        table, index = make()
        index.lookup(Equals("v", "a"))
        for i in range(10):
            table.append({"v": VALUES[i % 4]})
        before = index.lookup(Equals("v", "b"))
        assert index.compact() is True
        assert index.delta_rows() == 0
        assert index.compactions == 1
        assert list(index.lookup(Equals("v", "b"))) == list(before)
        assert index.compact() is False  # nothing left to fold

    def test_threshold_triggers_auto_compaction(self):
        table, index = make(n=8)
        index.DELTA_COMPACT_THRESHOLD = 4
        index.lookup(Equals("v", "a"))
        for i in range(4):
            table.append({"v": VALUES[i % 4]})
        assert index.delta_rows() == 0  # folded on the 4th append
        assert index.compactions >= 1
        assert_bit_identical(index, table)

    def test_epoch_moves_on_every_mutation(self):
        table, index = make()
        epochs = {index.epoch()}
        table.append({"v": "a"})
        epochs.add(index.epoch())
        table.update(0, "v", "b")
        epochs.add(index.epoch())
        index.compact()
        epochs.add(index.epoch())
        assert len(epochs) == 4

    def test_legacy_modes_bypass_the_delta(self):
        table, index = make(null_mode="vector")
        index.lookup(Equals("v", "a"))
        table.append({"v": "a"})
        assert index.delta_rows() == 0  # ablation configs: no delta
        assert_bit_identical(index, table)

    def test_fsck_passes_with_live_delta(self):
        from repro.index.verify import verify_index

        table, index = make()
        index.lookup(Equals("v", "a"))
        for i in range(6):
            table.append({"v": VALUES[i % 4]})
        assert index.delta_rows() == 6
        assert verify_index(index).ok


class TestSnapshotPinning:
    def test_pin_bounds_results_to_watermark(self):
        table, index = make(n=20)
        with pinned_rows(table):
            assert snapshot_rows(table) == 20
            table.append({"v": "a"})
            result = index.lookup(Equals("v", "a"))
            assert len(result) == 20
        assert len(index.lookup(Equals("v", "a"))) == 21

    def test_pins_nest_innermost_wins(self):
        table, index = make(n=20)
        with pinned_rows(table):
            table.append({"v": "a"})
            with pinned_rows(table):
                assert snapshot_rows(table) == 21
            assert snapshot_rows(table) == 20

    def test_pin_is_per_table(self):
        table, _ = make(n=20)
        other = Table.from_columns("O", {"v": ["x"]})
        with pinned_rows(table):
            assert snapshot_rows(other) is None

    def test_batch_appends_move_watermark_once(self):
        """A concurrent reader pinning mid-batch sees none of it: the
        watermark is batch-atomic (moved once, under the write lock)."""
        table, index = make(n=20)
        seen = []
        barrier = threading.Barrier(2)

        class Spy:
            def on_append(self, row_id, row):
                if row_id == 25:
                    barrier.wait()  # let the reader pin mid-batch
                    barrier.wait()

            def on_update(self, *a):  # pragma: no cover
                pass

            def on_delete(self, *a):  # pragma: no cover
                pass

        table.attach(Spy())

        def reader():
            barrier.wait()
            seen.append(table.published_rows())
            barrier.wait()

        thread = threading.Thread(target=reader)
        thread.start()
        table.append_rows([{"v": VALUES[i % 4]} for i in range(10)])
        thread.join()
        assert seen == [20]  # none of the batch, not rows 0..i of it
        assert table.published_rows() == 30

    def test_execute_many_batches_are_not_torn(self):
        """ParallelExecutor pins each partition for the whole batch."""
        from repro.shard.executor import ParallelExecutor
        from repro.shard.partition import PartitionedTable

        ptable = PartitionedTable.from_columns(
            "P", {"v": [VALUES[i % 4] for i in range(128)]}, partitions=2
        )
        executor = ParallelExecutor(ptable, workers=1)
        results = executor.execute_many(
            [Equals("v", "a"), Equals("v", "b")]
        )
        assert len(results[0].vector) == len(results[1].vector) == 128
