"""Unit tests for repro.storage (page, pager, buffer pool, stats)."""

import pytest

from repro.errors import InvalidPageError, PageOverflowError
from repro.storage.buffer_pool import BufferPool
from repro.storage.page import PAGE_SIZE_DEFAULT, Page
from repro.storage.pager import Pager
from repro.storage.stats import IOStatistics


class TestPage:
    def test_default_size_matches_paper(self):
        """Section 2.1 assumes p = 4K."""
        assert PAGE_SIZE_DEFAULT == 4096

    def test_read_write(self):
        page = Page(0, size=64)
        page.write(b"hello", offset=3)
        assert page.read(3, 5) == b"hello"
        assert page.dirty

    def test_read_whole(self):
        page = Page(0, size=8)
        assert page.read() == b"\x00" * 8

    def test_overflow(self):
        page = Page(0, size=8)
        with pytest.raises(PageOverflowError):
            page.write(b"123456789")
        with pytest.raises(PageOverflowError):
            page.read(4, 8)

    def test_clear(self):
        page = Page(0, size=8)
        page.write(b"xx")
        page.clear()
        assert page.read(0, 2) == b"\x00\x00"

    def test_free_after(self):
        page = Page(0, size=100)
        assert page.free_after(40) == 60

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Page(0, size=0)


class TestPager:
    def test_allocate_sequential_ids(self):
        pager = Pager(page_size=64)
        a = pager.allocate()
        b = pager.allocate()
        assert (a.page_id, b.page_id) == (0, 1)
        assert pager.page_count == 2
        assert pager.stats.allocations == 2

    def test_read_counts_physical(self):
        pager = Pager(page_size=64)
        page = pager.allocate()
        pager.read(page.page_id)
        pager.read(page.page_id)
        assert pager.stats.physical_reads == 2

    def test_read_unknown(self):
        pager = Pager()
        with pytest.raises(InvalidPageError):
            pager.read(99)

    def test_write_clears_dirty(self):
        pager = Pager(page_size=64)
        page = pager.allocate()
        page.write(b"x")
        pager.write(page)
        assert not page.dirty
        assert pager.stats.writes == 1

    def test_free(self):
        pager = Pager(page_size=64)
        page = pager.allocate()
        pager.free(page.page_id)
        assert page.page_id not in pager
        with pytest.raises(InvalidPageError):
            pager.free(page.page_id)

    def test_total_bytes(self):
        pager = Pager(page_size=128)
        pager.allocate()
        pager.allocate()
        assert pager.total_bytes() == 256


class TestBufferPool:
    def test_hit_avoids_physical_read(self):
        pager = Pager(page_size=64)
        pool = BufferPool(pager, capacity=2)
        page = pool.new_page()
        pool.fetch(page.page_id)
        pool.fetch(page.page_id)
        assert pager.stats.logical_reads == 2
        assert pager.stats.physical_reads == 0

    def test_miss_reads_physically(self):
        pager = Pager(page_size=64)
        pool = BufferPool(pager, capacity=1)
        a = pool.new_page()
        b = pool.new_page()  # evicts a
        pool.fetch(a.page_id)  # miss
        assert pager.stats.physical_reads == 1
        assert pager.stats.evictions >= 1

    def test_lru_order(self):
        pager = Pager(page_size=64)
        pool = BufferPool(pager, capacity=2)
        a = pool.new_page()
        b = pool.new_page()
        pool.fetch(a.page_id)  # a most recent
        c = pool.new_page()  # evicts b
        assert a.page_id in pool
        assert b.page_id not in pool
        assert c.page_id in pool

    def test_dirty_eviction_writes_back(self):
        pager = Pager(page_size=64)
        pool = BufferPool(pager, capacity=1)
        a = pool.new_page()
        a.write(b"z")
        pool.new_page()  # evict dirty a
        assert pager.stats.writes == 1

    def test_flush(self):
        pager = Pager(page_size=64)
        pool = BufferPool(pager, capacity=4)
        page = pool.new_page()
        page.write(b"q")
        pool.flush()
        assert not page.dirty

    def test_clear(self):
        pager = Pager(page_size=64)
        pool = BufferPool(pager, capacity=4)
        pool.new_page()
        pool.clear()
        assert pool.resident == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(Pager(), capacity=0)


class TestIOStatistics:
    def test_hit_ratio(self):
        stats = IOStatistics(logical_reads=10, physical_reads=2)
        assert stats.hit_ratio() == 0.8

    def test_hit_ratio_empty(self):
        assert IOStatistics().hit_ratio() == 0.0

    def test_reset(self):
        stats = IOStatistics(logical_reads=5, writes=2)
        stats.reset()
        assert stats.logical_reads == 0
        assert stats.writes == 0

    def test_snapshot_and_subtract(self):
        stats = IOStatistics(logical_reads=10, physical_reads=4)
        before = stats.snapshot()
        stats.record_logical_read()
        stats.record_physical_read()
        delta = stats - before
        assert delta.logical_reads == 1
        assert delta.physical_reads == 1
