"""End-to-end pins of every worked example in the paper.

Each test reconstructs one of the paper's figures with library objects
and asserts the exact artefacts the paper prints (mapping tables,
reduced expressions, vector counts).
"""

import pytest

from repro.boolean.reduction import reduce_values
from repro.encoding.mapping import MappingTable, VOID
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.query.predicates import Equals, InList
from repro.table.table import Table


@pytest.fixture
def figure1_table():
    """Six rows over domain {a, b, c}, per Figure 1's vectors."""
    table = Table("T", ["A"])
    for value in ["a", "b", "c", "b", "a", "c"]:
        table.append({"A": value})
    return table


@pytest.fixture
def figure1_index(figure1_table):
    mapping = MappingTable.from_pairs(
        [("a", 0b00), ("b", 0b01), ("c", 0b10)], width=2
    )
    return EncodedBitmapIndex(
        figure1_table, "A", encoding=mapping,
        void_mode="vector", null_mode="vector",
    )


class TestFigure1:
    def test_mapping_table(self, figure1_index):
        rows = dict(figure1_index.mapping.to_rows())
        assert rows == {"a": "00", "b": "01", "c": "10"}

    def test_two_vectors_instead_of_three(
        self, figure1_table, figure1_index
    ):
        simple = SimpleBitmapIndex(figure1_table, "A")
        assert simple.vector_count == 3
        assert figure1_index.width == 2

    def test_bitmap_vector_contents(self, figure1_index):
        """B1/B0 hold the MSB/LSB of each row's code."""
        # rows: a b c b a c -> codes 00 01 10 01 00 10
        assert figure1_index.vector(0).to_bitstring() == "010100"
        assert figure1_index.vector(1).to_bitstring() == "001001"

    def test_retrieval_functions(self, figure1_index):
        """f_a = B1'B0', f_b = B1'B0, f_c = B1B0'."""
        assert figure1_index.retrieval_function("a").to_string() == "B1'B0'"
        assert figure1_index.retrieval_function("b").to_string() == "B1'B0"
        assert figure1_index.retrieval_function("c").to_string() == "B1B0'"

    def test_q2_reduces_to_b1_negated(self, figure1_index):
        """f_a + f_b = B1'B0' + B1'B0 = B1' (Section 2.2)."""
        reduced = figure1_index.reduced_function(["a", "b"])
        assert reduced.to_string() == "B1'"
        assert reduced.vector_count() == 1

    def test_q1_vs_q2_costs(self, figure1_table, figure1_index):
        """Section 3.1's Q1/Q2 comparison: simple wins the point
        query (1 vs 2 vectors), encoded wins the range (1 vs 2)."""
        simple = SimpleBitmapIndex(figure1_table, "A")

        simple.lookup(Equals("A", "a"))
        assert simple.last_cost.vectors_accessed == 1
        figure1_index.lookup(Equals("A", "a"))
        # 2 data vectors + existence (vector mode)
        assert figure1_index.last_cost.vectors_accessed - 1 == 2

        simple.lookup(InList("A", ["a", "b"]))
        assert simple.last_cost.vectors_accessed == 2
        figure1_index.lookup(InList("A", ["a", "b"]))
        assert figure1_index.last_cost.vectors_accessed - 1 == 1


class TestFigure2:
    """Maintenance under domain expansion."""

    def test_2a_add_d_no_new_vector(self, figure1_table):
        mapping = MappingTable.from_pairs(
            [("a", 0b00), ("b", 0b01), ("c", 0b10)], width=2
        )
        index = EncodedBitmapIndex(
            figure1_table, "A", encoding=mapping, void_mode="vector"
        )
        figure1_table.attach(index)
        figure1_table.append({"A": "d"})
        assert index.width == 2
        assert index.mapping.encode("d") == 0b11
        assert index.retrieval_function("d").to_string() == "B1B0"
        figure1_table.detach(index)

    def test_2b_add_e_new_vector(self, figure1_table):
        mapping = MappingTable.from_pairs(
            [("a", 0b00), ("b", 0b01), ("c", 0b10), ("d", 0b11)],
            width=2,
        )
        index = EncodedBitmapIndex(
            figure1_table, "A", encoding=mapping, void_mode="vector"
        )
        figure1_table.attach(index)
        figure1_table.append({"A": "e"})
        assert index.width == 3
        assert index.mapping.encode("e") == 0b100
        # step 4: functions revised by ANDing B2'
        assert index.retrieval_function("a").to_string() == "B2'B1'B0'"
        assert index.retrieval_function("e").to_string() == "B2B1'B0'"
        # B2 is zero everywhere except the new row
        assert index.vector(2).indices().tolist() == [6]
        figure1_table.detach(index)


class TestTheorem21Example:
    """The NULL/void encoding example of Section 2.2."""

    ENCODING = {
        "NULL": 0b010, "a": 0b011, "b": 0b100,
        "c": 0b101, "d": 0b110, "e": 0b111,
    }  # VOID (NotExist) at 000, 001 unused

    def test_selection_ignores_void_term(self):
        """Selecting {NULL, a, b, c} reduces to (B2'B1 + B2B1')
        without any existence conjunct."""
        codes = [self.ENCODING[v] for v in ("NULL", "a", "b", "c")]
        reduced = reduce_values(codes, 3, dont_cares=[0b001])
        assert reduced.vector_count() == 2
        assert set(str(reduced).split(" + ")) == {"B2'B1", "B2B1'"}
        # void code 000 excluded
        assert not reduced.evaluate_value(0)


class TestSection4GroupSet:
    def test_vector_arithmetic(self):
        """10^7 simple vectors vs ~20 encoded for cards 100/200/500."""
        from repro.analysis.cost_models import encoded_vectors
        from repro.index.groupset import GroupSetIndex

        cards = [100, 200, 500]
        assert GroupSetIndex.simple_vector_count(cards) == 10**7
        encoded_total = sum(encoded_vectors(m) for m in cards)
        # ceil(log2 100)+ceil(log2 200)+ceil(log2 500) = 7+8+9 = 24
        # (the paper rounds its example to "only 20 bit vectors")
        assert encoded_total == 24
        assert encoded_total < 30
