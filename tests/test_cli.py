"""Unit tests for repro.cli."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig9_defaults(self):
        args = build_parser().parse_args(["fig9"])
        assert args.cardinality == 50


class TestCommands:
    def test_fig9(self, capsys):
        assert main(["fig9", "--cardinality", "50"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "c_e_best" in out
        assert "delta >= 7" in out

    def test_fig9_custom_cardinality(self, capsys):
        assert main(["fig9", "--cardinality", "1000",
                     "--points", "10"]) == 0
        out = capsys.readouterr().out
        assert "1000" in out

    def test_fig10(self, capsys):
        assert main(["fig10", "--max-cardinality", "64"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "64" in out

    def test_worst_case_defaults(self, capsys):
        assert main(["worst-case"]) == 0
        out = capsys.readouterr().out
        assert "0.843" in out
        assert "0.901" in out
        assert "83.3%" in out

    def test_worst_case_custom(self, capsys):
        assert main(["worst-case", "--cardinality", "100"]) == 0
        out = capsys.readouterr().out
        assert "100" in out

    def test_crossover(self, capsys):
        assert main(["crossover"]) == 0
        out = capsys.readouterr().out
        assert "92.2" in out

    def test_crossover_custom_params(self, capsys):
        assert main(["crossover", "--degree", "256",
                     "--page-size", "8192"]) == 0
        out = capsys.readouterr().out
        assert "368" in out  # 11.52 * 8192 / 256

    def test_tpcd(self, capsys):
        assert main(["tpcd"]) == 0
        out = capsys.readouterr().out
        assert "12/17" in out
        assert "Q16" in out
