"""OLAP on a star schema with hierarchy encoding (paper Section 2.3).

Rebuilds the paper's SALESPOINT example — 12 branches grouped into 5
companies grouped into 3 alliances (with m:N memberships) — derives a
hierarchy encoding, and runs roll-up selections and group-bys through
the planner/executor.

Run:  python examples/sales_star_schema.py
"""

from __future__ import annotations

import random

from repro import (
    Catalog,
    Dimension,
    EncodedBitmapIndex,
    Executor,
    FactTable,
    GroupSetIndex,
    Hierarchy,
    InList,
    StarSchema,
    Table,
    hierarchy_encoding,
)

COMPANIES = {
    "a": [1, 2, 3, 4],
    "b": [5, 6],
    "c": [7, 8],
    "d": [3, 4, 9, 10],  # branches 3, 4 belong to a AND d (m:N)
    "e": [9, 10, 11, 12],
}
ALLIANCES = {"X": ["a", "b", "c"], "Y": ["c", "d"], "Z": ["d", "e"]}


def main() -> None:
    # 1. Dimension with hierarchy.
    hierarchy = Hierarchy(
        range(1, 13), {"company": COMPANIES, "alliance": ALLIANCES}
    )
    salespoint = Table("salespoint", ["branch", "city"])
    for branch in range(1, 13):
        salespoint.append({"branch": branch, "city": f"city{branch}"})
    dimension = Dimension(salespoint, key="branch", hierarchy=hierarchy)

    # 2. Fact table.
    rng = random.Random(42)
    sales = Table("sales", ["branch", "amount"])
    for _ in range(2000):
        sales.append(
            {"branch": rng.randint(1, 12),
             "amount": rng.randint(1, 1000)}
        )
    schema = StarSchema(FactTable(sales, {"branch": dimension}))

    # 3. A hierarchy encoding: well-defined w.r.t. every company and
    #    alliance selection (the construction behind Figure 5).
    mapping = hierarchy_encoding(hierarchy, seed=0)
    print("hierarchy encoding of the 12 branches:")
    for value, code in mapping.to_rows():
        print(f"  branch {value:>2} -> {code}")

    catalog = Catalog()
    catalog.register_table(sales)
    index = EncodedBitmapIndex(
        sales, "branch", encoding=mapping, void_mode="vector"
    )
    catalog.register_index(index)
    executor = Executor(catalog)

    # 4. Roll-up selections: 'sales of all companies in alliance Z'.
    print("\nroll-up selections:")
    for level in ("company", "alliance"):
        for element in hierarchy.elements(level):
            members = schema.rollup_in_list("salespoint", level, element)
            result = executor.select(sales, InList("branch", members))
            print(
                f"  {level} = {element}: {result.count():>4} rows, "
                f"{result.cost.vectors_accessed} bitmap vectors read "
                f"(worst case {index.width})"
            )

    # 5. Group-by through a group-set index: totals per branch.
    groupset = GroupSetIndex(sales, ["branch"])
    totals = groupset.group_by("amount")
    print("\nSUM(amount) GROUP BY branch:")
    for (branch,), total in sorted(totals.items()):
        print(f"  branch {branch:>2}: {total:>9,.0f}")
    print(
        f"\ngroup-set index uses {groupset.vector_count} bitmap "
        "vectors (a simple group-set index would need one per "
        "combination)"
    )


if __name__ == "__main__":
    main()
