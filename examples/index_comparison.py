"""Compare every index family the paper discusses on one workload.

Builds all nine index types over the same column and reports, for a
point query and range searches of growing width: result agreement,
access cost in each index's native unit, and size in bytes — a
miniature of the paper's Section 3/4 comparison.

Run:  python examples/index_comparison.py
"""

from __future__ import annotations

import random

from repro import (
    BitSlicedIndex,
    BPlusTreeIndex,
    DynamicBitmapIndex,
    EncodedBitmapIndex,
    Equals,
    HybridBitmapBTreeIndex,
    InList,
    ProjectionIndex,
    RangeBitmapIndex,
    SimpleBitmapIndex,
    Table,
    ValueListIndex,
)


def main() -> None:
    rng = random.Random(9)
    table = Table("fact", ["v"])
    m = 128
    for _ in range(5000):
        table.append({"v": rng.randrange(m)})

    indexes = [
        SimpleBitmapIndex(table, "v"),
        EncodedBitmapIndex(table, "v"),
        BPlusTreeIndex(table, "v", fanout=32, page_size=256),
        ProjectionIndex(table, "v"),
        BitSlicedIndex(table, "v"),
        ValueListIndex(table, "v"),
        DynamicBitmapIndex(table, "v"),
        RangeBitmapIndex(table, "v", buckets=16),
        HybridBitmapBTreeIndex(table, "v"),
    ]

    print(f"{len(table)} rows, cardinality {m}\n")
    print(f"{'index':<16} {'bytes':>10}")
    for index in indexes:
        print(f"{index.kind:<16} {index.nbytes():>10,}")

    queries = [
        ("point v=42", Equals("v", 42)),
        ("range delta=8", InList("v", list(range(40, 48)))),
        ("range delta=32", InList("v", list(range(32, 64)))),
        ("range delta=64", InList("v", list(range(0, 64)))),
    ]

    for label, predicate in queries:
        print(f"\n--- {label} ---")
        reference = None
        for index in indexes:
            result = index.lookup(predicate)
            if reference is None:
                reference = result
                print(f"matching rows: {result.count()}")
            assert result == reference, f"{index.kind} disagrees!"
            cost = index.last_cost
            unit = []
            if cost.vectors_accessed:
                unit.append(f"{cost.vectors_accessed} vectors")
            if cost.node_accesses:
                unit.append(f"{cost.node_accesses} nodes")
            if cost.rows_checked:
                unit.append(f"{cost.rows_checked} row checks")
            print(f"  {index.kind:<16} {', '.join(unit) or 'free'}")

    print(
        "\nShape check (paper Section 3): the simple bitmap's vector "
        "count grows linearly with the range width while the encoded "
        "bitmap's stays at or below "
        f"ceil(log2 m) = {EncodedBitmapIndex(table, 'v').width}."
    )


if __name__ == "__main__":
    main()
