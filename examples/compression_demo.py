"""Compressed execution: row reordering x word-aligned run kernels.

Builds the same Zipf-skewed fact table under each row ordering
(``unordered``, ``lex``, ``gray``, ``hist``), snapshots the encoded
index's bit planes as word-aligned runs, and prints the space x speed
frontier the compression bench measures: plane bytes, page reads for
a query batch, and run-kernel wall time — all checked bit-identical
against the packed kernel.  A second act shows the same pass through
the ``Database`` facade: ``reorder()`` physically rewrites the rows,
rebuilds every attached index, and records the permutation so saved
results still map back to arrival order.

Run:  python examples/compression_demo.py
(See docs/compression.md for the theory and the full 1M-row bench.)
"""

from __future__ import annotations

import random
import time

from repro import Database, InList, Table
from repro.boolean.evaluator import AccessCounter
from repro.encoding.mapping import MappingTable
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.kernels.compiler import compile_function
from repro.kernels.runs import CompressedPlaneSet
from repro.shard.reorder import ORDERINGS, row_permutation
from repro.storage.page import PAGE_SIZE_DEFAULT
from repro.workload.generators import uniform_column, zipf_column

N = 65_536
DOMAIN = 64


def frontier() -> None:
    fact = zipf_column(N, DOMAIN, seed=31)
    secondary = uniform_column(N, 8, seed=32)
    rng = random.Random(7)
    selections = [sorted(rng.sample(range(DOMAIN), 8)) for _ in range(4)]
    mapping = MappingTable.from_values(
        list(range(DOMAIN)), reserve_void_zero=True
    )

    print(f"{N} rows, cardinality {DOMAIN} (Zipf), 4 IN-list queries\n")
    print(
        f"{'ordering':>10} {'plane bytes':>12} {'vs packed':>10} "
        f"{'page reads':>11} {'batch ms':>9}"
    )
    baseline = None
    for ordering in ORDERINGS:
        table = Table.from_columns(
            f"demo_{ordering}", {"v": fact, "w": secondary}
        )
        perm = row_permutation(table, ["v", "w"], ordering)
        if ordering != "unordered":
            table.apply_permutation(perm)
        index = EncodedBitmapIndex(table, "v", encoding=mapping)
        runs = CompressedPlaneSet.from_vectors(
            [index.vector(i) for i in range(index.width)], len(table)
        )
        packed = index.planes()

        kernels = [
            compile_function(index.reduced_function(values))
            for values in selections
        ]
        pages = 0
        for kernel in kernels:
            counter = AccessCounter()
            rows_runs = kernel.evaluate(runs, counter)
            rows_packed = kernel.evaluate(packed)
            assert rows_runs == rows_packed, "run kernel diverged!"
            for i in counter.touched:
                nbytes = runs.plane(i).nbytes()
                pages += -(-nbytes // PAGE_SIZE_DEFAULT)

        start = time.perf_counter()
        for kernel in kernels:
            kernel.evaluate(runs)
        elapsed = (time.perf_counter() - start) * 1000
        nbytes = runs.nbytes()
        if baseline is None:
            baseline = runs.packed_nbytes()
        print(
            f"{ordering:>10} {nbytes:>12,} "
            f"{baseline / nbytes:>9.1f}x {pages:>11} {elapsed:>9.2f}"
        )
    print(f"\npacked baseline: {baseline:,} bytes per ordering")


def database_reorder() -> None:
    print("\n--- Database.reorder -------------------------------------")
    db = Database()
    rng = random.Random(11)
    db.create_table(
        "sales",
        {"v": [rng.randrange(16) for _ in range(4096)]},
        partitions=4,
    )
    db.create_index("sales", "v")
    before = db.query("sales", InList("v", [3, 5])).row_ids()

    permutations = db.reorder("sales", ["v"], ordering="gray")
    after = db.query("sales", InList("v", [3, 5])).row_ids()
    meta = db.reorder_metadata("sales")
    assert meta is not None and meta["ordering"] == "gray"

    # Map the post-reorder hits back to arrival order via the
    # recorded per-partition permutations.
    offsets = [0, 1024, 2048, 3072]
    mapped = set()
    for row_id in after:
        part = min(row_id // 1024, 3)
        offset = offsets[part]
        mapped.add(offset + permutations[part][row_id - offset])
    assert mapped == set(before), "reorder changed the selected rows!"
    print(
        f"gray reorder over {len(permutations)} partitions: "
        f"{len(after)} hits, identical original rows before/after"
    )


def main() -> None:
    frontier()
    database_reorder()


if __name__ == "__main__":
    main()
