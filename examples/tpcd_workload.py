"""Run the TPC-D-like workload of the paper's Section 3.2.

The paper motivates encoded bitmap indexing with the observation that
12 of TPC-D's 17 query classes involve range search.  This example
generates a synthetic LINEITEM-like fact table, one query per class,
and executes the whole workload against simple bitmap, encoded bitmap
and B-tree indexing, printing per-class and total access costs.

Run:  python examples/tpcd_workload.py
"""

from __future__ import annotations

import random

from repro import BPlusTreeIndex, EncodedBitmapIndex, SimpleBitmapIndex
from repro.workload.tpcd import (
    TPCD_QUERY_CLASSES,
    build_tpcd_schema,
    generate_query,
    range_query_share,
)


def main() -> None:
    ranges, total = range_query_share()
    print(
        f"TPC-D query classes involving range search: {ranges}/{total} "
        "(the paper's motivation)\n"
    )

    table = build_tpcd_schema(n=5000, seed=1)
    columns = sorted({qc.column for qc in TPCD_QUERY_CLASSES})
    families = {
        "simple": {c: SimpleBitmapIndex(table, c) for c in columns},
        "encoded": {c: EncodedBitmapIndex(table, c) for c in columns},
        "btree": {
            c: BPlusTreeIndex(table, c, fanout=32, page_size=256)
            for c in columns
        },
    }

    rng = random.Random(5)
    totals = {name: 0 for name in families}
    print(f"{'class':<5} {'kind':<6} {'rows':>5}  "
          f"{'simple':>7} {'encoded':>8} {'btree':>6}")
    for query_class in TPCD_QUERY_CLASSES:
        predicate = generate_query(query_class, table, rng)
        row = {}
        count = 0
        for name, indexes in families.items():
            index = indexes[query_class.column]
            result = index.lookup(predicate)
            count = result.count()
            cost = index.last_cost.total_accesses()
            row[name] = cost
            totals[name] += cost
        kind = "range" if query_class.involves_range else "point"
        print(
            f"{query_class.name:<5} {kind:<6} {count:>5}  "
            f"{row['simple']:>7} {row['encoded']:>8} {row['btree']:>6}"
        )

    print("\ntotal accesses over the 17-query workload:")
    for name, value in totals.items():
        print(f"  {name:<8} {value}")
    print(
        "\nShape check: the encoded bitmap index wins the workload "
        "because range classes dominate; simple bitmaps win only the "
        "5 point classes."
    )


if __name__ == "__main__":
    main()
