"""OLAP aggregates and star joins on bitmap indexes (Section 5).

Demonstrates the extension features: SUM/AVG/MEDIAN/N-tile computed
directly on encoded bitmap indexes (no table scan), a bitmapped join
index answering star-join selections, and the query-history miner
deriving an encoding from a log.

Run:  python examples/olap_aggregates.py
"""

from __future__ import annotations

import random

from repro import (
    BitmapJoinIndex,
    BitSlicedIndex,
    EncodedBitmapIndex,
    Equals,
    InList,
    Range,
    Table,
    average_bitsliced,
    count,
    encoding_from_history,
    median,
    ntile_boundaries,
    sum_bitsliced,
)


def build_star():
    rng = random.Random(11)
    dimension = Table("stores", ["sid", "region"])
    for sid in range(24):
        dimension.append(
            {"sid": sid, "region": ["north", "south", "west"][sid % 3]}
        )
    fact = Table("sales", ["sid", "units"])
    for _ in range(6000):
        fact.append(
            {"sid": rng.randrange(24), "units": rng.randint(1, 60)}
        )
    return fact, dimension


def main() -> None:
    fact, dimension = build_star()

    # --- aggregates straight off the index --------------------------
    units_index = BitSlicedIndex(fact, "units")
    print("aggregates computed on bitmap vectors only:")
    print(f"  COUNT(*)            = {count(units_index):,}")
    print(f"  SUM(units)          = {sum_bitsliced(units_index):,.0f}")
    print(f"  AVG(units)          = {average_bitsliced(units_index):.2f}")
    print(f"  MEDIAN(units)       = {median(units_index)}")
    quartiles = ntile_boundaries(units_index, 4)
    print(f"  quartile boundaries = {quartiles}")

    selection = units_index.lookup(Range("units", 30, 60))
    print(
        f"  SUM(units | units >= 30) = "
        f"{sum_bitsliced(units_index, selection):,.0f}"
    )

    # --- star join through a bitmapped join index -------------------
    join = BitmapJoinIndex(fact, "sid", dimension, "sid")
    north = join.lookup(Equals("region", "north"))
    print(
        f"\nstar join 'region = north': {north.count():,} fact rows, "
        f"fact side read {join.last_cost.vectors_accessed} bitmap "
        f"vectors (of {join.fact_index.width})"
    )
    joined = join.join_rows(Equals("region", "west"))
    print(f"materialised join for 'west': {len(joined):,} rows, "
          f"sample: {joined[0]}")

    # --- mine an encoding from a query log --------------------------
    rng = random.Random(2)
    history = []
    for _ in range(60):
        start = rng.choice([0, 8, 16])
        history.append(InList("sid", list(range(start, start + 8))))
    domain = sorted(fact.column("sid").distinct_values())
    mined_mapping = encoding_from_history(
        history, "sid", domain, min_support=3, seed=0
    )
    tuned = EncodedBitmapIndex(fact, "sid", encoding=mined_mapping)
    hot = InList("sid", list(range(8, 16)))
    tuned.lookup(hot)
    print(
        f"\nencoding mined from 60 logged queries: hot selection "
        f"{hot} reads {tuned.last_cost.vectors_accessed} vectors "
        f"(worst case {tuned.width})"
    )


if __name__ == "__main__":
    main()
