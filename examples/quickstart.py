"""Quickstart: the ``repro.Database`` facade end to end.

One object fronts the whole reproduction: create a table, index an
attribute with ``ceil(log2 m)`` bitmap vectors plus a mapping table,
run planned selections, inspect EXPLAIN, and persist the lot.  The
encoded/simple comparison at the end shows the paper's core saving
through the same facade.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random
import tempfile

from repro import Database, Equals, InList


def build(kind: str) -> Database:
    rng = random.Random(7)
    db = Database()
    db.create_table(
        "sales",
        {
            "product": [rng.randint(100, 149) for _ in range(1000)],
            "amount": [rng.randint(1, 500) for _ in range(1000)],
        },
    )
    db.create_index("sales", "product", kind=kind)
    return db


def main() -> None:
    db = build("encoded")

    # 1. A point query, planned and executed through the facade.
    point = Equals("product", 120)
    result = db.query("sales", point)
    print(
        f"{point}: {result.count()} rows, "
        f"{result.cost.vectors_accessed} bitmap vector(s) read"
    )

    # 2. EXPLAIN shows the reduced expression without reading vectors.
    print("\nEXPLAIN:")
    print(db.explain("sales", point))

    # 3. A wide IN-list: the logical reduction keeps reads at <= k
    #    vectors while a simple bitmap index pays one per value.
    wide = InList("product", list(range(100, 132)))  # delta = 32
    encoded_cost = db.query("sales", wide).cost.vectors_accessed
    simple_cost = build("simple").query(
        "sales", wide
    ).cost.vectors_accessed
    print("\nproduct IN [100, 132), delta = 32:")
    print(
        f"  simple bitmap index reads  {simple_cost} vectors "
        "(c_s = delta)"
    )
    print(f"  encoded bitmap index reads {encoded_cost} vectors (reduced)")

    # 4. Batches share leaf-vector reads across queries.
    batch = db.query_many("sales", [point, wide, point])
    print(
        f"\nbatch of 3 queries: "
        f"{[result.count() for result in batch]} rows each"
    )

    # 5. Maintenance flows through the table, even domain expansion.
    table = db.table("sales")
    table.append({"product": 999, "amount": 1})
    found = db.query("sales", Equals("product", 999))
    print(f"\nafter appending unseen product 999: {found.count()} row")

    # 6. Persistence: manifest + checksummed .ebi payloads.
    with tempfile.TemporaryDirectory() as directory:
        db.save(directory)
        reloaded = Database.load(directory)
        again = reloaded.query("sales", point)
        print(
            f"\nsave/load round-trip: {again.count()} rows for {point}, "
            f"fsck says "
            f"{'ok' if all(r.ok for r in reloaded.fsck().values()) else 'BAD'}"
        )


if __name__ == "__main__":
    main()
