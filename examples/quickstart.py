"""Quickstart: build an encoded bitmap index and query it.

Walks through the paper's core loop: create a table, index an
attribute with ``ceil(log2 m)`` bitmap vectors plus a mapping table,
run selections, and watch the logical reduction keep the number of
bitmap vectors read small.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    EncodedBitmapIndex,
    Equals,
    InList,
    SimpleBitmapIndex,
    Table,
)


def main() -> None:
    # 1. A sales table with a 50-product dimension attribute.
    rng = random.Random(7)
    table = Table("sales", ["product", "amount"])
    for _ in range(1000):
        table.append(
            {
                "product": rng.randint(100, 149),
                "amount": rng.randint(1, 500),
            }
        )
    print(f"table: {table}")

    # 2. Index it both ways.
    simple = SimpleBitmapIndex(table, "product")
    encoded = EncodedBitmapIndex(table, "product")
    print(
        f"simple bitmap index : {simple.vector_count} vectors "
        f"({simple.nbytes():,} bytes)"
    )
    print(
        f"encoded bitmap index: {encoded.width} vectors "
        f"({encoded.nbytes():,} bytes)   "
        f"[= ceil(log2 m), the paper's saving]"
    )

    # 3. A point query: simple bitmap wins (1 vector).
    point = Equals("product", 120)
    rows = simple.lookup(point)
    print(
        f"\n{point}: {rows.count()} rows, simple reads "
        f"{simple.last_cost.vectors_accessed} vector(s)"
    )
    encoded.lookup(point)
    print(
        f"{point}: encoded reads "
        f"{encoded.last_cost.vectors_accessed} vector(s)"
    )

    # 4. A wide range query: encoded wins.
    wide = InList("product", list(range(100, 132)))  # delta = 32
    simple.lookup(wide)
    encoded_result = encoded.lookup(wide)
    print(
        f"\nproduct IN [100, 132): {encoded_result.count()} rows"
    )
    print(
        f"  simple reads  {simple.last_cost.vectors_accessed} vectors "
        "(one per value: c_s = delta)"
    )
    print(
        f"  encoded reads {encoded.last_cost.vectors_accessed} vectors "
        f"(reduced expression: "
        f"{encoded.reduced_function(wide.values)})"
    )

    # 5. Maintenance: appends flow through, even new domain values.
    table.attach(encoded)
    table.append({"product": 999, "amount": 1})  # domain expansion
    print(
        f"\nafter appending unseen product 999: width = "
        f"{encoded.width}, lookup finds "
        f"{encoded.lookup(Equals('product', 999)).count()} row"
    )

    # 6. Deletion: the row becomes a void tuple encoded as 0
    #    (Theorem 2.1) and silently drops out of every selection.
    victim = encoded.lookup(Equals("product", 120)).indices()[0]
    table.delete(int(victim))
    rows_after = encoded.lookup(Equals("product", 120))
    print(
        f"after deleting row {int(victim)}: {rows_after.count()} rows "
        "match product=120 (no existence vector consulted)"
    )


if __name__ == "__main__":
    main()
