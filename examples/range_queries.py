"""Range search three ways (paper Sections 2.3 and 4).

Shows the three range-capable encodings on one numeric attribute:

1. range-based encoding over pre-defined predicates (Figures 7-8),
2. total-order preserving encoding with a hot IN-list (Figure 6),
3. the bit-sliced index with the O'Neil-Quass slice algorithm.

Run:  python examples/range_queries.py
"""

from __future__ import annotations

import random

from repro import (
    BitSlicedIndex,
    EncodedBitmapIndex,
    Range,
    Table,
    order_preserving_encoding,
    partition_from_predicates,
    range_encoding,
    reduce_values,
)


def range_based_demo() -> None:
    print("=== 1. range-based encoding (paper Figures 7-8) ===")
    predicates = [(6, 10), (8, 12), (10, 13), (16, 20)]
    partition = partition_from_predicates(6, 20, predicates)
    print("partitions:", ", ".join(str(i) for i in partition.intervals))

    mapping = range_encoding(partition, predicates, seed=0)
    print("interval encoding:")
    for value, code in mapping.to_rows():
        print(f"  {value:>8} -> {code}")

    for low, high in predicates:
        covering = partition.covering(low, high)
        codes = [mapping.encode(interval) for interval in covering]
        reduced = reduce_values(
            codes, mapping.width, dont_cares=mapping.unused_codes()
        )
        print(
            f"  {low:>2} <= A < {high:<2}: retrieval fn = {reduced}  "
            f"({reduced.vector_count()} vector(s))"
        )


def total_order_demo() -> None:
    print("\n=== 2. total-order preserving encoding (Figure 6) ===")
    domain = [101, 102, 103, 104, 105, 106]
    hot = [101, 102, 104, 105]
    mapping = order_preserving_encoding(domain, hot_sets=[hot])
    print("encoding (order preserved, hot set aligned):")
    for value, code in mapping.to_rows():
        print(f"  {value} -> {code}")
    codes = [mapping.encode(v) for v in hot]
    reduced = reduce_values(
        codes, mapping.width, dont_cares=mapping.unused_codes()
    )
    print(f"hot IN-list {hot}: retrieval fn = {reduced}")


def bit_sliced_demo() -> None:
    print("\n=== 3. bit-sliced index + slice comparison algorithm ===")
    rng = random.Random(3)
    table = Table("measurements", ["temp"])
    for _ in range(5000):
        table.append({"temp": rng.randint(-20, 80)})
    index = BitSlicedIndex(table, "temp")
    print(
        f"{len(table)} rows, domain size "
        f"{table.column('temp').cardinality()}, "
        f"{index.width} bit slices"
    )
    for low, high in ((0, 25), (-20, 0), (60, 80)):
        predicate = Range("temp", low, high)
        result = index.lookup(predicate)
        print(
            f"  {low} <= temp <= {high}: {result.count():>4} rows, "
            f"{index.last_cost.vectors_accessed} slices read "
            "(O'Neil-Quass comparison, no IN-list rewrite)"
        )


if __name__ == "__main__":
    range_based_demo()
    total_order_demo()
    bit_sliced_demo()
