"""Partition-parallel queries and the degraded/fsck recovery loop.

A 20,000-row fact table split into four word-aligned row-range
partitions, one encoded bitmap child index per partition, queried
through the ``repro.Database`` facade: parallel execution with a
per-partition breakdown, batched queries sharing vector reads,
persistence with one ``.ebi`` payload per partition child, and what
happens when one of those payloads is damaged on disk.

Run:  python examples/partitioned_database.py
"""

from __future__ import annotations

import os
import random
import tempfile

from repro import Database, Equals, InList, QueryOptions, Range


def build() -> Database:
    rng = random.Random(42)
    n = 20_000
    db = Database()
    db.create_table(
        "fact",
        {
            "product": [rng.randrange(64) for _ in range(n)],
            "qty": [rng.randrange(100) for _ in range(n)],
        },
        partitions=4,
    )
    db.create_index("fact", "product")
    return db


def main() -> None:
    db = build()
    table = db.table("fact")
    spans = ", ".join(
        f"p{p.id}[{p.offset}:{p.offset + len(p)}]"
        for p in table.partitions
    )
    print(f"fact table: {len(table):,} rows in 4 partitions ({spans})")

    # 1. One query, four partitions, merged deterministically.
    predicate = InList("product", [3, 17, 42])
    result = db.query("fact", predicate)
    print(
        f"\n{predicate}: {result.count():,} rows, "
        f"workers={result.workers}"
    )
    for part in result.partitions:
        print(
            f"  partition {part.partition_id}: {part.rows:,} rows, "
            f"{part.cost.vectors_accessed} vectors"
        )

    # 2. Worker count never changes the answer — only the schedule.
    one = db.query("fact", predicate, QueryOptions(workers=1))
    print(
        f"\nworkers=1 vs workers=4 identical: "
        f"{one.vector == result.vector}"
    )

    # 3. The unindexed column falls back to whole-column numpy scans.
    scan = db.query("fact", Range("qty", 10, 20))
    print(
        f"qty in [10, 20]: {scan.count():,} rows via "
        f"{'vector scan' if scan.used_scan else 'index'}"
    )

    # 4. Batches share leaf reads per partition.
    batch = db.query_many(
        "fact", [predicate, Equals("product", 17), predicate]
    )
    print(f"batch counts: {[r.count() for r in batch]}")

    # 5. Persistence: one payload per partition child.  Damage one
    #    and the load degrades that child instead of failing.
    expected = result.row_ids()
    with tempfile.TemporaryDirectory() as directory:
        db.save(directory)
        payloads = sorted(
            name for name in os.listdir(directory)
            if name.endswith(".ebi")
        )
        print(f"\nsaved payloads: {payloads}")

        victim = os.path.join(directory, "fact.product.p2.ebi")
        with open(victim, "r+b") as handle:
            handle.seek(40)
            byte = handle.read(1)
            handle.seek(40)
            handle.write(bytes([byte[0] ^ 0xFF]))

        loaded = Database.load(directory)
        damaged = loaded.query("fact", predicate)
        print(
            f"after corrupting p2: degraded={damaged.degraded}, "
            f"rows still correct={damaged.row_ids() == expected}"
        )
        print(
            "  per-partition degraded flags: "
            f"{[part.degraded for part in damaged.partitions]}"
        )

        # fsck re-audits the rebuilt child and lifts the quarantine.
        reports = loaded.fsck()
        clean = loaded.query("fact", predicate)
        print(
            f"after fsck ({len(reports)} indexes audited): "
            f"degraded={clean.degraded}, "
            f"rows correct={clean.row_ids() == expected}"
        )


if __name__ == "__main__":
    main()
