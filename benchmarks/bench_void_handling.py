"""Ablation — Theorem 2.1: void handling schemes.

Compares the paper's recommended scheme (void tuples encoded at code
0, no existence vector) against the explicit-existence-vector scheme
on a table with deletions: per-query vector accesses and index size.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import print_table
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.query.predicates import Equals, InList
from repro.workload.generators import build_table, uniform_column

N = 3000
M = 60


@pytest.fixture(scope="module")
def deleted_table():
    table = build_table(
        "t", N, {"v": uniform_column(N, M, seed=8)}
    )
    rng = random.Random(4)
    for row_id in rng.sample(range(N), 300):
        table.delete(row_id)
    return table


def _queries():
    rng = random.Random(2)
    queries = [Equals("v", rng.randrange(M)) for _ in range(5)]
    for width in (4, 8, 16, 32):
        start = rng.randint(0, M - width)
        queries.append(InList("v", list(range(start, start + width))))
    return queries


class TestVoidHandling:
    def test_access_comparison(self, deleted_table, benchmark):
        encode_mode = EncodedBitmapIndex(
            deleted_table, "v", void_mode="encode"
        )
        vector_mode = EncodedBitmapIndex(
            deleted_table, "v", void_mode="vector"
        )
        queries = _queries()

        def run_both():
            totals = [0, 0]
            for predicate in queries:
                encode_mode.lookup(predicate)
                totals[0] += encode_mode.last_cost.vectors_accessed
                vector_mode.lookup(predicate)
                totals[1] += vector_mode.last_cost.vectors_accessed
            return totals

        encode_total, vector_total = benchmark.pedantic(
            run_both, iterations=1, rounds=1
        )
        print_table(
            "Theorem 2.1 ablation: total vector accesses, 9 queries "
            f"(n = {N}, 10% deleted)",
            ["void handling", "total accesses", "extra vectors stored"],
            [
                ("encode at 0 (paper)", encode_total, 0),
                ("explicit existence vector", vector_total, 1),
            ],
        )
        # vector mode pays +1 per query (9 queries here)
        assert vector_total >= encode_total

    def test_results_identical(self, deleted_table):
        encode_mode = EncodedBitmapIndex(
            deleted_table, "v", void_mode="encode"
        )
        vector_mode = EncodedBitmapIndex(
            deleted_table, "v", void_mode="vector"
        )
        for predicate in _queries():
            assert encode_mode.lookup(predicate) == vector_mode.lookup(
                predicate
            )

    def test_deleted_rows_never_returned(self, deleted_table):
        index = EncodedBitmapIndex(deleted_table, "v")
        void = deleted_table.void_rows()
        for predicate in _queries():
            hits = set(index.lookup(predicate).indices().tolist())
            assert not (hits & void)

    def test_size_overhead(self, deleted_table):
        encode_mode = EncodedBitmapIndex(
            deleted_table, "v", void_mode="encode"
        )
        vector_mode = EncodedBitmapIndex(
            deleted_table, "v", void_mode="vector"
        )
        assert vector_mode.nbytes() > encode_mode.nbytes() or (
            vector_mode.vector_count > encode_mode.width
        )
