"""Extension bench — bitmapped join indexes (Section 4 references).

Star join: select fact rows through a dimension predicate.  The join
index pays a small-dimension scan plus an encoded-bitmap fact lookup;
the baseline pays a full fact scan with a hash probe per row.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import print_table
from repro.index.join_index import BitmapJoinIndex
from repro.query.predicates import Equals
from repro.table.table import Table

N_FACT = 8000
N_DIM = 50


@pytest.fixture(scope="module")
def star():
    dimension = Table("products", ["pid", "category"])
    for pid in range(N_DIM):
        dimension.append(
            {"pid": pid, "category": f"cat{pid % 5}"}
        )
    fact = Table("sales", ["pid", "amount"])
    rng = random.Random(3)
    for _ in range(N_FACT):
        fact.append(
            {"pid": rng.randrange(N_DIM),
             "amount": rng.randint(1, 100)}
        )
    return fact, dimension


def _hash_join(fact, dimension, predicate):
    keys = {
        row["pid"] for row in dimension.scan() if predicate.matches(row)
    }
    return [
        row_id
        for row_id in range(len(fact))
        if not fact.is_void(row_id)
        and fact.row(row_id)["pid"] in keys
    ]


class TestStarJoin:
    def test_join_index_vs_hash_join(self, star, benchmark):
        fact, dimension = star
        join = BitmapJoinIndex(fact, "pid", dimension, "pid")
        predicate = Equals("category", "cat2")

        def run_both():
            started = time.perf_counter()
            via_index = sorted(
                join.lookup(predicate).indices().tolist()
            )
            index_time = time.perf_counter() - started
            started = time.perf_counter()
            via_hash = _hash_join(fact, dimension, predicate)
            hash_time = time.perf_counter() - started
            return via_index, index_time, via_hash, hash_time

        via_index, index_time, via_hash, hash_time = (
            benchmark.pedantic(run_both, iterations=1, rounds=1)
        )
        print_table(
            f"star join: {N_FACT}-row fact x {N_DIM}-row dimension",
            ["method", "rows", "seconds", "fact-side cost"],
            [
                (
                    "bitmap join index", len(via_index),
                    f"{index_time:.4f}",
                    f"{join.last_cost.vectors_accessed} vectors",
                ),
                (
                    "scan + hash probe", len(via_hash),
                    f"{hash_time:.4f}",
                    f"{N_FACT} row probes",
                ),
            ],
        )
        assert via_index == via_hash

    def test_fact_cost_logarithmic(self, star):
        """However many dimension rows qualify, the fact side reads at
        most ceil(log2 m) vectors."""
        fact, dimension = star
        join = BitmapJoinIndex(fact, "pid", dimension, "pid")
        for category in range(5):
            join.lookup(Equals("category", f"cat{category}"))
            assert (
                join.last_cost.vectors_accessed
                <= join.fact_index.width
            )

    def test_join_rows_wallclock(self, star, benchmark):
        fact, dimension = star
        join = BitmapJoinIndex(fact, "pid", dimension, "pid")
        rows = benchmark(
            join.join_rows, Equals("category", "cat0")
        )
        assert rows
        assert all("products.category" in row for row in rows)
