"""Figure 10 — space requirements vs attribute cardinality.

The paper plots the number of bit vectors: ``m`` for simple bitmap
indexes (linear) vs ``ceil(log2 m)`` for encoded (logarithmic).  This
bench prints the analytic curves and confirms them with real indexes
built over synthetic columns, comparing actual byte sizes.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import print_table
from repro.analysis.figures import figure10_series
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.workload.generators import build_table, uniform_column

CARDINALITIES = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1000]


class TestFigure10:
    def test_analytic_series(self, benchmark):
        series = benchmark(figure10_series, CARDINALITIES)
        print_table(
            "Figure 10 analytic: bit vectors vs cardinality",
            ["m", "simple (m)", "encoded ceil(log2 m)"],
            [
                (r.m, r.simple_vectors, r.encoded_vectors)
                for r in series
            ],
        )
        for row in series:
            assert row.simple_vectors == row.m
            assert row.encoded_vectors == math.ceil(math.log2(row.m))

    def test_measured_vector_counts(self, benchmark):
        def build_and_measure():
            rows = []
            n = 800
            for m in [4, 16, 64, 256]:
                table = build_table(
                    "t", n, {"v": uniform_column(n, m, seed=m)}
                )
                simple = SimpleBitmapIndex(table, "v")
                encoded = EncodedBitmapIndex(table, "v")
                rows.append(
                    (m, simple.vector_count, encoded.width,
                     simple.nbytes(), encoded.nbytes())
                )
            return rows

        rows = benchmark.pedantic(
            build_and_measure, iterations=1, rounds=1
        )
        print_table(
            "Figure 10 measured: real index sizes (n = 800)",
            ["m", "simple vecs", "encoded vecs", "simple bytes",
             "encoded bytes"],
            rows,
        )
        for m, simple_vecs, encoded_vecs, simple_b, encoded_b in rows:
            # one vector per OBSERVED value (n = 800 may not draw the
            # full domain at m = 256)
            assert m * 0.9 <= simple_vecs <= m
            # +1 bit possible for the VOID sentinel
            assert encoded_vecs <= math.ceil(math.log2(m)) + 1
            assert encoded_b < simple_b

    def test_growth_shapes(self):
        """Linear vs logarithmic growth: doubling m doubles simple's
        vectors but adds exactly one encoded vector."""
        series = figure10_series([64, 128, 256, 512])
        for a, b in zip(series, series[1:]):
            assert b.simple_vectors == 2 * a.simple_vectors
            assert b.encoded_vectors == a.encoded_vectors + 1
