"""Section 3.1 — sparsity: (m-1)/m for simple vs ~1/2 for encoded.

Also benchmarks the standard remedy the paper cites (run-length
compression) to show why encoded bitmaps don't need it: simple
vectors compress superbly *because* they are sparse, but there are m
of them; encoded vectors are half-dense (incompressible) but only
ceil(log2 m) exist.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.analysis.cost_models import encoded_sparsity, simple_sparsity
from repro.bitmap.rle import RunLengthBitmap
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.workload.generators import build_table, uniform_column

M_SWEEP = [4, 16, 64, 256]
N = 4000


def _indexes_for(m):
    table = build_table(
        "t", N, {"v": uniform_column(N, m, seed=m)}
    )
    return (
        SimpleBitmapIndex(table, "v"),
        EncodedBitmapIndex(table, "v"),
    )


class TestSparsity:
    def test_sparsity_sweep(self, benchmark):
        def sweep():
            rows = []
            for m in M_SWEEP:
                simple, encoded = _indexes_for(m)
                rows.append(
                    (
                        m,
                        simple_sparsity(m),
                        simple.average_sparsity(),
                        encoded_sparsity(),
                        1.0 - encoded.average_density(),
                    )
                )
            return rows

        rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
        print_table(
            "Section 3.1 sparsity (model vs measured, n = 4000)",
            ["m", "simple model", "simple measured",
             "encoded model", "encoded measured"],
            [
                (m, f"{sm:.3f}", f"{sm_meas:.3f}", f"{em:.2f}",
                 f"{em_meas:.3f}")
                for m, sm, sm_meas, em, em_meas in rows
            ],
        )
        for m, sm, sm_meas, em, em_meas in rows:
            assert sm_meas == pytest.approx(sm, abs=0.02)
            assert em_meas == pytest.approx(0.5, abs=0.15)

    def test_encoded_sparsity_independent_of_m(self):
        """The paper's point: encoded density ~1/2 regardless of m."""
        densities = []
        for m in (16, 256):
            _, encoded = _indexes_for(m)
            densities.append(encoded.average_density())
        assert abs(densities[0] - densities[1]) < 0.15


class TestCompression:
    def test_rle_on_simple_vs_encoded(self, benchmark):
        """Sparse simple vectors compress; half-dense encoded vectors
        do not — but raw encoded storage is already smaller than
        compressed simple storage at high m."""
        m = 256

        def measure():
            simple, encoded = _indexes_for(m)
            simple_raw = simple.nbytes()
            simple_rle = sum(
                RunLengthBitmap.from_bitvector(
                    simple.vector_for(value)
                ).nbytes()
                for value in
                simple.table.column("v").distinct_values()
            )
            encoded_raw = encoded.nbytes()
            encoded_rle = sum(
                RunLengthBitmap.from_bitvector(
                    encoded.vector(i)
                ).nbytes()
                for i in range(encoded.width)
            )
            return simple_raw, simple_rle, encoded_raw, encoded_rle

        simple_raw, simple_rle, encoded_raw, encoded_rle = (
            benchmark.pedantic(measure, iterations=1, rounds=1)
        )
        print_table(
            f"RLE compression at m = {m} (n = {N})",
            ["index", "raw bytes", "RLE bytes"],
            [
                ("simple bitmap", simple_raw, simple_rle),
                ("encoded bitmap", encoded_raw, encoded_rle),
            ],
        )
        assert simple_rle < simple_raw  # sparse -> compresses
        assert encoded_rle > encoded_raw * 0.5  # dense -> doesn't
        assert encoded_raw < simple_rle * 4  # and raw encoded is tiny


class TestCompressedIndex:
    """Section 4's remedy in index form: the run-length compressed
    simple bitmap index shrinks the space but keeps c_s = delta."""

    def test_compressed_index_tradeoff(self, benchmark):
        from repro.index.compressed import CompressedBitmapIndex
        from repro.index.encoded_bitmap import EncodedBitmapIndex
        from repro.query.predicates import InList

        m = 256
        table = build_table(
            "t", N, {"v": uniform_column(N, m, seed=m)}
        )

        def build_all():
            return (
                SimpleBitmapIndex(table, "v"),
                CompressedBitmapIndex(table, "v"),
                EncodedBitmapIndex(table, "v"),
            )

        simple, compressed, encoded = benchmark.pedantic(
            build_all, iterations=1, rounds=1
        )
        predicate = InList("v", list(range(64)))
        simple.lookup(predicate)
        compressed.lookup(predicate)
        encoded.lookup(predicate)
        print_table(
            f"Compression trade-off at m = {m} (n = {N}, delta = 64)",
            ["index", "bytes", "vectors accessed"],
            [
                ("simple", simple.nbytes(),
                 simple.last_cost.vectors_accessed),
                ("compressed simple", compressed.nbytes(),
                 compressed.last_cost.vectors_accessed),
                ("encoded", encoded.nbytes(),
                 encoded.last_cost.vectors_accessed),
            ],
        )
        # compression fixes space, not access counts
        assert compressed.nbytes() < simple.nbytes()
        assert (
            compressed.last_cost.vectors_accessed
            == simple.last_cost.vectors_accessed
        )
        assert (
            encoded.last_cost.vectors_accessed
            < compressed.last_cost.vectors_accessed
        )
