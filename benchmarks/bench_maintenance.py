"""Section 3.1 — maintenance costs (and Figure 2's expansion cases).

The paper's model: per-append cost is O(h) for both families
(h = m simple, h = ceil(log2 m) encoded); domain expansion costs
O(|T|) + O(h) for simple (a full new vector) but between O(h) and
O(|T|) + O(h) for encoded (often just a mapping entry).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.table.table import Table
from repro.workload.generators import build_table, uniform_column


def _fresh(m, n=2000):
    table = build_table(
        "t", n, {"v": uniform_column(n, m, seed=m)}
    )
    simple = SimpleBitmapIndex(table, "v")
    encoded = EncodedBitmapIndex(table, "v")
    table.attach(simple)
    table.attach(encoded)
    return table, simple, encoded


class TestAppendWithoutExpansion:
    def test_ops_per_append(self, benchmark):
        table, simple, encoded = _fresh(m=256)

        def append_batch():
            before_s = simple.stats.maintenance_ops
            before_e = encoded.stats.maintenance_ops
            for i in range(100):
                table.append({"v": i % 256})
            return (
                (simple.stats.maintenance_ops - before_s) / 100,
                (encoded.stats.maintenance_ops - before_e) / 100,
            )

        simple_ops, encoded_ops = benchmark.pedantic(
            append_batch, iterations=1, rounds=1
        )
        print_table(
            "Per-append maintenance ops (no domain expansion, m = 256)",
            ["index", "ops/append (model)", "ops/append (measured)"],
            [
                ("simple bitmap", "O(1) bit + resize", f"{simple_ops:.1f}"),
                ("encoded bitmap", "O(log2 m) bits",
                 f"{encoded_ops:.1f}"),
            ],
        )
        # encoded writes k bits; simple writes 1 bit but in 1-of-m
        # vectors — both constant per append.
        assert encoded_ops < 20

    def test_wallclock_append(self, benchmark):
        table, simple, encoded = _fresh(m=64, n=500)
        counter = iter(range(10**9))

        def one_append():
            table.append({"v": next(counter) % 64})

        benchmark(one_append)


class TestDomainExpansion:
    def test_simple_pays_full_vector(self):
        """A brand-new value charges O(|T|) to the simple index."""
        table, simple, encoded = _fresh(m=100, n=2000)
        before_s = simple.stats.maintenance_ops
        before_e = encoded.stats.maintenance_ops
        table.append({"v": 10**6})  # unseen value
        simple_cost = simple.stats.maintenance_ops - before_s
        encoded_cost = encoded.stats.maintenance_ops - before_e
        print_table(
            "Domain-expansion cost for ONE new value (n = 2000)",
            ["index", "model", "measured ops"],
            [
                ("simple bitmap", "O(|T|) + O(h)", simple_cost),
                ("encoded bitmap", "O(h)..O(|T|)+O(h)", encoded_cost),
            ],
        )
        assert simple_cost >= len(table) - 1
        assert encoded_cost < simple_cost

    def test_encoded_expansion_with_new_vector(self):
        """Figure 2(b): when ceil(log2) steps up, the encoded index
        adds one zeroed vector — still far below m new vectors."""
        table = Table("t", ["v"])
        for i in range(1000):
            table.append({"v": i % 3})  # {VOID,0,1,2} fills width 2
        encoded = EncodedBitmapIndex(table, "v")
        table.attach(encoded)
        width_before = encoded.width
        table.append({"v": 99})  # 5th mapped value -> width 3
        assert encoded.width == width_before + 1
        from repro.query.predicates import Equals

        assert encoded.lookup(Equals("v", 99)).count() == 1
        assert encoded.lookup(Equals("v", 1)).count() == 333

    def test_expansion_sweep(self, benchmark):
        """Ops to insert 20 unseen values at several table sizes —
        simple grows linearly with n, encoded stays near-flat."""

        def sweep():
            rows = []
            for n in (500, 1000, 2000):
                table, simple, encoded = _fresh(m=50, n=n)
                before_s = simple.stats.maintenance_ops
                before_e = encoded.stats.maintenance_ops
                for i in range(20):
                    table.append({"v": 10**6 + i})
                rows.append(
                    (
                        n,
                        simple.stats.maintenance_ops - before_s,
                        encoded.stats.maintenance_ops - before_e,
                    )
                )
            return rows

        rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
        print_table(
            "20 domain expansions: total maintenance ops vs n",
            ["n", "simple ops", "encoded ops"],
            rows,
        )
        assert rows[-1][1] > rows[0][1] * 2  # linear in n
        assert rows[-1][2] < rows[-1][1]
