"""Extension bench — dynamic re-encoding economics (Section 5).

When the predefined predicates drift, is rebuilding the encoding
worth it?  The model charges O(n*k) bit writes for the rebuild and
earns the per-execution vector savings; this bench sweeps the planning
horizon and table size to locate the break-even frontier, then
actually performs one rebuild and verifies the earned savings.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.encoding.heuristics import random_encoding
from repro.encoding.reencoding import (
    apply_reencoding,
    evaluate_reencoding,
)
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.query.predicates import InList
from repro.workload.generators import build_table
from repro.workload.generators import uniform_column

DOMAIN = list(range(32))
NEW_PREDICATES = [list(range(0, 16)), list(range(8, 24)),
                  list(range(16, 32))]


class TestBreakEvenFrontier:
    def test_horizon_sweep(self, benchmark):
        current = random_encoding(DOMAIN, seed=77,
                                  reserve_void_zero=False)

        def sweep():
            rows = []
            for n in (10_000, 1_000_000):
                decision = evaluate_reencoding(
                    current, NEW_PREDICATES, table_size=n,
                    horizon_executions=0,
                )
                rows.append(
                    (
                        n,
                        f"{decision.current_cost:.0f}",
                        f"{decision.candidate_cost:.0f}",
                        f"{decision.rebuild_cost:.0f}",
                        f"{decision.break_even_executions:.0f}",
                    )
                )
            return rows

        rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
        print_table(
            "Re-encoding break-even (vectors/query units)",
            ["n", "cost now", "cost after", "rebuild cost",
             "break-even runs"],
            rows,
        )
        # bigger tables need longer horizons
        assert float(rows[1][4]) > float(rows[0][4])

    def test_decision_flips_with_horizon(self):
        current = random_encoding(DOMAIN, seed=77,
                                  reserve_void_zero=False)
        probe = evaluate_reencoding(
            current, NEW_PREDICATES, table_size=100_000,
            horizon_executions=0,
        )
        if probe.saving_per_execution <= 0:
            pytest.skip("random start happened to be optimal")
        beyond = probe.break_even_executions * 2
        before = evaluate_reencoding(
            current, NEW_PREDICATES, table_size=100_000,
            horizon_executions=probe.break_even_executions / 2,
        )
        after = evaluate_reencoding(
            current, NEW_PREDICATES, table_size=100_000,
            horizon_executions=beyond,
        )
        assert not before.worthwhile
        assert after.worthwhile


class TestActualRebuild:
    def test_rebuild_realises_predicted_saving(self, benchmark):
        n = 2000
        table = build_table(
            "t", n, {"v": uniform_column(n, 32, seed=5)}
        )
        bad = random_encoding(DOMAIN, seed=77)
        index = EncodedBitmapIndex(table, "v", mapping=bad)

        costs_before = []
        for predicate_values in NEW_PREDICATES:
            index.lookup(InList("v", predicate_values))
            costs_before.append(index.last_cost.vectors_accessed)

        decision = evaluate_reencoding(
            index.mapping, NEW_PREDICATES, table_size=n,
            horizon_executions=10**6,
        )
        benchmark.pedantic(
            apply_reencoding, args=(index, decision),
            iterations=1, rounds=1,
        )

        costs_after = []
        for predicate_values in NEW_PREDICATES:
            index.lookup(InList("v", predicate_values))
            costs_after.append(index.last_cost.vectors_accessed)

        print_table(
            "Vectors accessed per predicate, before/after re-encoding",
            ["predicate", "before", "after"],
            [
                (f"IN [{values[0]}..{values[-1]}]", before, after)
                for values, before, after in zip(
                    NEW_PREDICATES, costs_before, costs_after
                )
            ],
        )
        assert sum(costs_after) <= sum(costs_before)
