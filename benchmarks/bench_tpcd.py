"""Section 3.2 — the TPC-D motivation and a workload-weighted
comparison.

The paper's argument: 12 of TPC-D's 17 query classes involve range
search, and encoded bitmap indexes win range searches, so they matter
for DW workloads.  This bench prints the classification and then runs
a synthetic TPC-D-like workload against simple bitmap, encoded bitmap
and B-tree indexes, reporting total accesses per index family.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import print_table
from repro.index.btree import BPlusTreeIndex
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.workload.tpcd import (
    TPCD_QUERY_CLASSES,
    build_tpcd_schema,
    generate_workload,
    range_query_share,
)


class TestRangeShare:
    def test_12_of_17(self):
        ranges, total = range_query_share()
        print(f"\nTPC-D range-search share: {ranges}/{total} "
              "(paper: 12/17)")
        assert (ranges, total) == (12, 17)

    def test_classification_table(self):
        print_table(
            "TPC-D query classes (paper's classification)",
            ["class", "involves range search", "dominant column"],
            [
                (qc.name, "yes" if qc.involves_range else "no",
                 qc.column)
                for qc in TPCD_QUERY_CLASSES
            ],
        )
        assert len(TPCD_QUERY_CLASSES) == 17


@pytest.fixture(scope="module")
def tpcd_setup():
    table = build_tpcd_schema(n=4000, seed=7)
    columns = sorted({qc.column for qc in TPCD_QUERY_CLASSES})
    simple = {c: SimpleBitmapIndex(table, c) for c in columns}
    encoded = {c: EncodedBitmapIndex(table, c) for c in columns}
    btree = {
        c: BPlusTreeIndex(table, c, fanout=32, page_size=256)
        for c in columns
    }
    workload = generate_workload(table, queries_per_class=3, seed=11)
    return table, simple, encoded, btree, workload


def _run(indexes, workload):
    total = 0
    per_class = {}
    for query_class, predicate in workload:
        index = indexes[query_class.column]
        index.lookup(predicate)
        cost = index.last_cost.total_accesses()
        total += cost
        per_class[query_class.name] = (
            per_class.get(query_class.name, 0) + cost
        )
    return total, per_class


class TestWorkloadComparison:
    def test_total_accesses(self, tpcd_setup, benchmark):
        table, simple, encoded, btree, workload = tpcd_setup

        def run_all():
            return (
                _run(simple, workload),
                _run(encoded, workload),
                _run(btree, workload),
            )

        (s_total, s_per), (e_total, e_per), (b_total, b_per) = (
            benchmark.pedantic(run_all, iterations=1, rounds=1)
        )
        print_table(
            "TPC-D-like workload: total index accesses "
            "(51 queries, n = 4000)",
            ["index family", "total accesses"],
            [
                ("simple bitmap", s_total),
                ("encoded bitmap", e_total),
                ("B-tree", b_total),
            ],
        )
        rows = []
        for qc in TPCD_QUERY_CLASSES:
            rows.append(
                (qc.name, "range" if qc.involves_range else "point",
                 s_per.get(qc.name, 0), e_per.get(qc.name, 0),
                 b_per.get(qc.name, 0))
            )
        print_table(
            "Per-class accesses",
            ["class", "kind", "simple", "encoded", "btree"],
            rows,
        )
        # The paper's claim: encoded wins the workload because ranges
        # dominate.
        assert e_total < s_total

    def test_results_agree(self, tpcd_setup):
        """All three index families return identical row sets."""
        table, simple, encoded, btree, workload = tpcd_setup
        for query_class, predicate in workload[::5]:
            column = query_class.column
            a = simple[column].lookup(predicate)
            b = encoded[column].lookup(predicate)
            c = btree[column].lookup(predicate)
            assert a == b == c

    def test_point_queries_favor_simple(self, tpcd_setup):
        """The paper concedes single-value selections to simple
        bitmaps (1 vector vs up to k)."""
        table, simple, encoded, btree, workload = tpcd_setup
        point_queries = [
            (qc, p) for qc, p in workload if not qc.involves_range
        ]
        s_total, _ = _run(simple, point_queries)
        e_total, _ = _run(encoded, point_queries)
        assert s_total <= e_total
