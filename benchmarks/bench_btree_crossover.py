"""Section 2.1 — the bitmap-vs-B-tree space/time break-even.

The paper: with page size p = 4K and degree M = 512, a simple bitmap
index is smaller than a B-tree iff m < 11.52 p / M = 93 (approx).
This bench prints the analytic break-even, sweeps m with *real*
indexes and locates the measured crossover, and also reproduces the
build-time comparison ``O(n m)`` vs ``O(n log_{M/2} m + n log2(p/4))``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.analysis.cost_models import (
    bitmap_build_cost,
    btree_build_cost,
    btree_bytes,
    btree_space_crossover,
    simple_bitmap_bytes,
)
from repro.index.btree import BPlusTreeIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.workload.generators import build_table, uniform_column

M_SWEEP = [8, 32, 64, 92, 128, 256, 512]


class TestSpaceCrossover:
    def test_analytic_crossover_is_93(self):
        crossover = btree_space_crossover(degree=512, page_size=4096)
        print(f"\nanalytic crossover: m < {crossover:.2f} "
              "favours simple bitmaps (paper: 93)")
        assert 92 <= crossover < 93

    def test_analytic_sweep(self, benchmark):
        n = 1_000_000

        def sweep():
            return [
                (m, simple_bitmap_bytes(n, m), btree_bytes(n))
                for m in M_SWEEP
            ]

        rows = benchmark(sweep)
        print_table(
            "Section 2.1 analytic space (n = 1e6, p = 4K, M = 512)",
            ["m", "simple bitmap bytes", "btree bytes"],
            [(m, f"{s:.0f}", f"{b:.0f}") for m, s, b in rows],
        )
        for m, simple, btree in rows:
            if m <= 92:
                assert simple < btree
            if m >= 93:
                assert simple > btree

    def test_measured_crossover_shape(self, benchmark):
        """Real indexes over n=4000 rows: the bitmap's size grows
        linearly with m while the B-tree's stays flat, so their ratio
        crosses 1 somewhere near the analytic point (the constant is
        implementation-dependent; the *shape* is the claim)."""
        n = 4000

        def sweep():
            rows = []
            for m in [8, 64, 256, 1024]:
                table = build_table(
                    "t", n, {"v": uniform_column(n, m, seed=m)}
                )
                simple = SimpleBitmapIndex(table, "v")
                btree = BPlusTreeIndex(table, "v")
                rows.append((m, simple.nbytes(), btree.nbytes()))
            return rows

        rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
        print_table(
            "Section 2.1 measured sizes (n = 4000)",
            ["m", "simple bytes", "btree bytes"],
            rows,
        )
        simple_growth = rows[-1][1] / rows[0][1]
        btree_growth = rows[-1][2] / rows[0][2]
        assert simple_growth > 20  # linear in m (m grew 128x)
        assert btree_growth < 8  # roughly flat in m


class TestBuildTime:
    def test_analytic_build_costs(self):
        n = 1_000_000
        rows = [
            (m, bitmap_build_cost(n, m), btree_build_cost(n, m))
            for m in [4, 16, 64, 256, 4096]
        ]
        print_table(
            "Section 2.1 analytic build cost (abstract ops, n = 1e6)",
            ["m", "simple bitmap O(nm)", "btree O(n log m + n log p/4)"],
            [(m, f"{b:.2e}", f"{t:.2e}") for m, b, t in rows],
        )
        # small m: bitmap cheaper; large m: btree cheaper
        assert rows[0][1] < rows[0][2]
        assert rows[-1][1] > rows[-1][2]

    def test_measured_build_time(self, benchmark):
        """Wall-clock build of both indexes at moderate cardinality."""
        n = 3000
        table = build_table(
            "t", n, {"v": uniform_column(n, 64, seed=9)}
        )

        def build_both():
            return (
                SimpleBitmapIndex(table, "v"),
                BPlusTreeIndex(table, "v", fanout=64, page_size=512),
            )

        simple, btree = benchmark(build_both)
        assert simple.vector_count == 64
        assert btree.node_count >= 1
