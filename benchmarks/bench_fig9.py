"""Figure 9 — vectors accessed vs range width (the headline result).

Regenerates both panels: |A| = 50 (9a) and |A| = 1000 (9b), printing
the paper's three curves (c_s, best-case c_e, worst-case line) from
the analytic model AND a measured series from a real encoded bitmap
index with an aligned (well-defined w.r.t. contiguous ranges)
encoding.  Shape expectations from the paper:

* c_s is linear in delta,
* c_e stays at or below ceil(log2 |A|) for every delta,
* encoded (even at worst case) beats simple for delta > log2|A| + 1.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.analysis.cost_models import c_e_best, c_e_worst, c_s
from repro.analysis.figures import crossover_point, figure9_series
from repro.encoding.mapping import MappingTable
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.query.predicates import InList

SMALL_DELTAS = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 50]
LARGE_DELTAS = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1000]


def _aligned_index(table):
    """Encoded index whose mapping is the identity on values —
    well-defined for [0, delta) contiguous selections."""
    values = sorted(table.column("v").distinct_values())
    mapping = MappingTable.from_pairs(
        [(value, value) for value in values]
    )
    return EncodedBitmapIndex(
        table, "v", mapping=mapping, void_mode="vector",
        null_mode="vector",
    )


def _measured_series(table, deltas):
    """Measured (c_s, c_e) for [0, delta) selections."""
    simple = SimpleBitmapIndex(table, "v")
    encoded = _aligned_index(table)
    values = sorted(table.column("v").distinct_values())
    rows = []
    for delta in deltas:
        selected = values[:delta]
        simple.lookup(InList("v", selected))
        measured_cs = simple.last_cost.vectors_accessed
        measured_ce = encoded.reduced_function(selected).vector_count()
        rows.append((delta, measured_cs, measured_ce))
    return rows


class TestFigure9a:
    M = 50

    def test_analytic_series(self, benchmark):
        series = benchmark(figure9_series, self.M)
        print_table(
            "Figure 9(a) analytic: |A| = 50",
            ["delta", "c_s", "c_e_best", "c_e_worst"],
            [
                (r.delta, r.c_s, r.c_e_best, r.c_e_worst)
                for r in series
                if r.delta in SMALL_DELTAS
            ],
        )
        assert all(r.c_e_worst == 6 for r in series)
        assert crossover_point(self.M) == 7

    def test_measured_matches_model(self, fig9_table_small, benchmark):
        rows = benchmark.pedantic(
            _measured_series,
            args=(fig9_table_small, SMALL_DELTAS),
            iterations=1,
            rounds=1,
        )
        print_table(
            "Figure 9(a) measured (real indexes, [0, delta) ranges)",
            ["delta", "measured c_s", "measured c_e", "model c_e_best"],
            [
                (delta, cs, ce, c_e_best(delta, self.M))
                for delta, cs, ce in rows
            ],
        )
        for delta, cs, ce in rows:
            assert cs == c_s(delta)  # simple reads one vector/value
            assert ce <= c_e_worst(self.M)
            # the aligned encoding achieves the model's best case
            assert ce == c_e_best(delta, self.M) or ce <= c_e_best(
                delta, self.M
            ) + 1

    def test_encoded_wins_beyond_crossover(self, fig9_table_small):
        rows = _measured_series(fig9_table_small, [8, 16, 32, 50])
        for delta, cs, ce in rows:
            assert ce < cs  # delta > log2(50)+1 ~ 6.6


class TestFigure9b:
    M = 1000

    def test_analytic_series(self, benchmark):
        series = benchmark(figure9_series, self.M)
        print_table(
            "Figure 9(b) analytic: |A| = 1000",
            ["delta", "c_s", "c_e_best", "c_e_worst"],
            [
                (r.delta, r.c_s, r.c_e_best, r.c_e_worst)
                for r in series
                if r.delta in LARGE_DELTAS
            ],
        )
        assert all(r.c_e_worst == 10 for r in series)
        assert crossover_point(self.M) == 11

    def test_measured_matches_model(self, fig9_table_large, benchmark):
        deltas = [1, 2, 4, 8, 16, 64, 256, 512]
        rows = benchmark.pedantic(
            _measured_series,
            args=(fig9_table_large, deltas),
            iterations=1,
            rounds=1,
        )
        print_table(
            "Figure 9(b) measured (real indexes, [0, delta) ranges)",
            ["delta", "measured c_s", "measured c_e", "model c_e_best"],
            [
                (delta, cs, ce, c_e_best(delta, self.M))
                for delta, cs, ce in rows
            ],
        )
        for delta, cs, ce in rows:
            assert cs == delta
            assert ce <= c_e_worst(self.M)

    def test_lookup_wallclock(self, fig9_table_large, benchmark):
        """Time an actual delta=512 range lookup through the encoded
        index (the reduced expression touches ~1 vector)."""
        index = _aligned_index(fig9_table_large)
        values = sorted(
            fig9_table_large.column("v").distinct_values()
        )[:512]
        predicate = InList("v", values)
        index.lookup(predicate)  # warm the reduction cache
        result = benchmark(index.lookup, predicate)
        assert result.count() > 0
