"""Section 2.3 / Figure 5 — hierarchy encoding.

Rebuilds the paper's SALESPOINT hierarchy (12 branches, 5 companies,
3 alliances with m:N membership), derives a hierarchy encoding, and
measures vectors accessed for every hierarchy-element selection —
the paper's Figure 5(b) achieves 1 vector for ``alliance = X``.
Compares against a sequential (naive) encoding.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.encoding.heuristics import encoding_cost, sequential_encoding
from repro.encoding.hierarchy import Hierarchy, hierarchy_encoding
from repro.encoding.well_defined import verify_well_defined_cost
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.query.predicates import InList
from repro.table.table import Table
from repro.workload.generators import uniform_column

COMPANIES = {
    "a": [1, 2, 3, 4], "b": [5, 6], "c": [7, 8],
    "d": [3, 4, 9, 10], "e": [9, 10, 11, 12],
}
ALLIANCES = {"X": ["a", "b", "c"], "Y": ["c", "d"], "Z": ["d", "e"]}

#: The paper's hand-crafted Figure 5(b) mapping.
FIG5B = {
    1: 0b0000, 2: 0b0001, 3: 0b0100, 4: 0b0101,
    5: 0b0010, 6: 0b0011, 7: 0b0110, 8: 0b0111,
    9: 0b1100, 10: 0b1101, 11: 0b1111, 12: 0b1110,
}


@pytest.fixture(scope="module")
def salespoint():
    return Hierarchy(
        range(1, 13), {"company": COMPANIES, "alliance": ALLIANCES}
    )


class TestFigure5:
    def test_paper_mapping_costs(self, salespoint):
        """Replay the paper's own Figure 5(b) mapping and report the
        vectors accessed per hierarchy element."""
        from repro.boolean.reduction import reduce_values

        dont_cares = [
            c for c in range(16) if c not in FIG5B.values()
        ]
        rows = []
        for level in salespoint.level_names:
            for element in salespoint.elements(level):
                members = sorted(
                    salespoint.base_members(level, element)
                )
                codes = [FIG5B[b] for b in members]
                reduced = reduce_values(codes, 4, dont_cares=dont_cares)
                rows.append(
                    (f"{level}={element}", len(members),
                     reduced.vector_count(), reduced.to_string())
                )
        print_table(
            "Figure 5(b): the paper's hierarchy encoding",
            ["selection", "|members|", "vectors", "retrieval fn"],
            rows,
        )
        cost_by_selection = {row[0]: row[2] for row in rows}
        # the paper's headline: alliance = X reads ONE vector
        assert cost_by_selection["alliance=X"] == 1

    def test_heuristic_vs_sequential(self, salespoint, benchmark):
        predicates = salespoint.selection_predicates()

        def search():
            return hierarchy_encoding(salespoint, seed=0)

        tuned = benchmark.pedantic(search, iterations=1, rounds=1)
        naive = sequential_encoding(
            range(1, 13), reserve_void_zero=False
        )
        tuned_cost = encoding_cost(tuned, predicates)
        naive_cost = encoding_cost(naive, predicates)
        fig5b_cost = sum(
            r for r in _fig5b_costs(salespoint)
        )
        print_table(
            "Hierarchy encoding quality (total vectors over all "
            "8 hierarchy selections)",
            ["encoding", "total vectors"],
            [
                ("paper Figure 5(b)", fig5b_cost),
                ("our heuristic", f"{tuned_cost:.0f}"),
                ("sequential (naive)", f"{naive_cost:.0f}"),
            ],
        )
        assert tuned_cost <= naive_cost


def _fig5b_costs(salespoint):
    from repro.boolean.reduction import reduce_values

    dont_cares = [c for c in range(16) if c not in FIG5B.values()]
    for level in salespoint.level_names:
        for element in salespoint.elements(level):
            members = sorted(salespoint.base_members(level, element))
            codes = [FIG5B[b] for b in members]
            yield reduce_values(
                codes, 4, dont_cares=dont_cares
            ).vector_count()


class TestRollupLatency:
    def test_rollup_query_wallclock(self, salespoint, benchmark):
        """Time an actual roll-up selection over a fact table indexed
        with the hierarchy encoding."""
        n = 5000
        table = Table("sales", ["branch"])
        for value in uniform_column(n, 12, seed=3, base=1):
            table.append({"branch": value})
        mapping = hierarchy_encoding(salespoint, seed=0)
        index = EncodedBitmapIndex(
            table, "branch", mapping=mapping, void_mode="vector"
        )
        members = sorted(salespoint.base_members("alliance", "X"))
        predicate = InList("branch", members)
        index.lookup(predicate)  # warm cache
        result = benchmark(index.lookup, predicate)
        assert result.count() > 0


class TestOlapSession:
    """A 30-step roll-up/drill-down session (Section 2.3's OLAP
    motivation) served by three encodings of the same dimension."""

    def test_session_cost_comparison(self, salespoint, benchmark):
        import random as _random

        from repro.encoding.heuristics import (
            random_encoding,
            sequential_encoding,
        )
        from repro.workload.olap import (
            generate_session,
            session_predicates,
        )

        table = Table("sales", ["branch"])
        rng = _random.Random(1)
        for _ in range(2000):
            table.append({"branch": rng.randint(1, 12)})

        encodings = {
            "hierarchy (tuned)": hierarchy_encoding(salespoint, seed=0),
            "sequential": sequential_encoding(
                range(1, 13), reserve_void_zero=False
            ),
            "random": random_encoding(
                range(1, 13), seed=55, reserve_void_zero=False
            ),
        }
        session = generate_session(salespoint, "branch", length=30,
                                   seed=3)
        predicates = session_predicates(session)

        def run_all():
            totals = {}
            for name, mapping in encodings.items():
                index = EncodedBitmapIndex(
                    table, "branch", mapping=mapping,
                    void_mode="vector",
                )
                total = 0
                for predicate in predicates:
                    index.lookup(predicate)
                    total += index.last_cost.vectors_accessed
                totals[name] = total
            return totals

        totals = benchmark.pedantic(run_all, iterations=1, rounds=1)
        print_table(
            "30-step OLAP session: total bitmap vectors read",
            ["encoding", "total vectors"],
            sorted(totals.items(), key=lambda kv: kv[1]),
        )
        assert totals["hierarchy (tuned)"] <= totals["random"]
