"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's figures or in-text claims
and prints the rows/series the paper reports, so the output can be
eyeballed against the original.  ``pytest benchmarks/
--benchmark-only`` runs everything; printed tables appear with ``-s``.
"""

from __future__ import annotations

import sys
from typing import Iterable, List, Sequence

import pytest


def print_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence]
) -> None:
    """Print an aligned table (visible with pytest -s)."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    sys.stdout.flush()


@pytest.fixture(scope="session")
def fig9_table_small():
    """A table whose column is uniform over exactly 50 values."""
    from repro.workload.generators import build_table, uniform_column

    n = 3000
    return build_table(
        "fig9a", n, {"v": uniform_column(n, 50, seed=1)}
    )


@pytest.fixture(scope="session")
def fig9_table_large():
    """A table whose column is uniform over exactly 1000 values."""
    from repro.workload.generators import build_table, uniform_column

    n = 8000
    return build_table(
        "fig9b", n, {"v": uniform_column(n, 1000, seed=2)}
    )
