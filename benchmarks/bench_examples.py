"""Figures 1-3 and 6 — the paper's worked examples, regenerated.

Each test rebuilds one illustrative figure with library objects and
prints the same artefacts the paper shows (mapping tables, bitmap
vector contents, reduced retrieval expressions).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.boolean.reduction import reduce_values
from repro.encoding.mapping import MappingTable
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.query.predicates import Equals, InList
from repro.table.table import Table


def _figure1_table():
    table = Table("T", ["A"])
    for value in ["a", "b", "c", "b", "a", "c"]:
        table.append({"A": value})
    return table


class TestFigure1:
    def test_regenerate(self, benchmark):
        def build():
            table = _figure1_table()
            mapping = MappingTable.from_pairs(
                [("a", 0b00), ("b", 0b01), ("c", 0b10)], width=2
            )
            simple = SimpleBitmapIndex(table, "A")
            encoded = EncodedBitmapIndex(
                table, "A", mapping=mapping,
                void_mode="vector", null_mode="vector",
            )
            return table, simple, encoded

        table, simple, encoded = benchmark.pedantic(
            build, iterations=1, rounds=1
        )
        print_table(
            "Figure 1: simple vs encoded bitmap index on {a, b, c}",
            ["row", "A", "B_a", "B_b", "B_c", "B1", "B0"],
            [
                (
                    j, table.row(j)["A"],
                    int(simple.vector_for("a")[j]),
                    int(simple.vector_for("b")[j]),
                    int(simple.vector_for("c")[j]),
                    int(encoded.vector(1)[j]),
                    int(encoded.vector(0)[j]),
                )
                for j in range(len(table))
            ],
        )
        print_table(
            "Figure 1 mapping table",
            ["value", "code"],
            encoded.mapping.to_rows(),
        )
        reduced = encoded.reduced_function(["a", "b"])
        print(f"\nf_a + f_b reduces to: {reduced}  "
              "(paper: B1')")
        assert str(reduced) == "B1'"


class TestFigure2:
    def test_regenerate_expansion(self):
        table = _figure1_table()
        mapping = MappingTable.from_pairs(
            [("a", 0b00), ("b", 0b01), ("c", 0b10)], width=2
        )
        index = EncodedBitmapIndex(
            table, "A", mapping=mapping, void_mode="vector"
        )
        table.attach(index)
        table.append({"A": "d"})  # Figure 2(a)
        width_after_d = index.width
        table.append({"A": "e"})  # Figure 2(b)
        print_table(
            "Figure 2: mapping after inserting d then e",
            ["value", "code"],
            index.mapping.to_rows(),
        )
        print(f"width after d: {width_after_d} (paper: unchanged), "
              f"after e: {index.width} (paper: +1 vector)")
        assert width_after_d == 2
        assert index.width == 3
        assert index.lookup(Equals("A", "e")).count() == 1


class TestFigure3:
    MAPPINGS = {
        "(a) well-defined": [
            ("a", 0b000), ("c", 0b001), ("g", 0b010), ("e", 0b011),
            ("b", 0b100), ("d", 0b101), ("h", 0b110), ("f", 0b111),
        ],
        "(a') also optimal": [
            ("a", 0b000), ("b", 0b001), ("c", 0b010), ("d", 0b011),
            ("g", 0b100), ("h", 0b101), ("e", 0b110), ("f", 0b111),
        ],
        "(b) improper": [
            ("a", 0b000), ("c", 0b001), ("g", 0b010), ("b", 0b011),
            ("e", 0b100), ("d", 0b101), ("h", 0b110), ("f", 0b111),
        ],
    }

    def test_regenerate(self, benchmark):
        def reduce_all():
            rows = []
            for name, pairs in self.MAPPINGS.items():
                mapping = dict(pairs)
                for selection in ("abcd", "cdef"):
                    codes = [mapping[v] for v in selection]
                    reduced = reduce_values(codes, 3)
                    rows.append(
                        (name, "{" + ",".join(selection) + "}",
                         reduced.to_string(),
                         reduced.vector_count())
                    )
            return rows

        rows = benchmark(reduce_all)
        print_table(
            "Figure 3: proper vs improper mappings "
            "(paper: 1 vector vs 3 vectors)",
            ["mapping", "selection", "retrieval fn", "vectors"],
            rows,
        )
        by_key = {(r[0], r[1]): r[3] for r in rows}
        assert by_key[("(a) well-defined", "{a,b,c,d}")] == 1
        assert by_key[("(a) well-defined", "{c,d,e,f}")] == 1
        assert by_key[("(b) improper", "{a,b,c,d}")] == 3
        assert by_key[("(b) improper", "{c,d,e,f}")] == 3


class TestFigure6:
    def test_regenerate(self):
        fig6 = {101: 0b000, 102: 0b001, 103: 0b010,
                104: 0b100, 105: 0b101, 106: 0b110}
        print_table(
            "Figure 6: total-order preserving encoding",
            ["value", "code"],
            [(v, format(c, "03b")) for v, c in fig6.items()],
        )
        codes = sorted(fig6.values())
        assert codes == [fig6[v] for v in sorted(fig6)]  # order kept
        hot = [fig6[v] for v in (101, 102, 104, 105)]
        dont_cares = [c for c in range(8) if c not in fig6.values()]
        reduced = reduce_values(hot, 3, dont_cares=dont_cares)
        print(f"hot IN-list {{101,102,104,105}} reduces to: {reduced}")
        assert str(reduced) == "B1'"
