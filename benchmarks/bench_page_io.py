"""Page-level I/O — grounding footnote 4 in a simulated disk.

The paper equates query cost with bitmap vectors accessed because
each vector read is disk I/O.  Here the vectors actually live on
simulated 4 KiB pages behind an LRU buffer pool, and the Figure 9
comparison is re-run counting *pages*: the encoded index's advantage
survives the translation (pages scale with vectors), and the buffer
pool shows how repeated queries amortise.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.index.paged import (
    PagedEncodedBitmapIndex,
    PagedSimpleBitmapIndex,
)
from repro.query.predicates import InList
from repro.workload.generators import build_table, uniform_column

N = 20000  # large enough that one vector spans > 1 small page
M = 50
PAGE = 1024
DELTAS = [1, 4, 8, 16, 32]


@pytest.fixture(scope="module")
def paged_setup():
    table = build_table(
        "t", N, {"v": uniform_column(N, M, seed=21)}
    )
    simple = PagedSimpleBitmapIndex(
        table, "v", page_size=PAGE, pool_capacity=4
    )
    encoded = PagedEncodedBitmapIndex(
        table, "v", page_size=PAGE, pool_capacity=4
    )
    return table, simple, encoded


class TestPageLevelFigure9:
    def test_page_reads_vs_delta(self, paged_setup, benchmark):
        table, simple, encoded = paged_setup
        values = sorted(table.column("v").distinct_values())

        def sweep():
            rows = []
            for delta in DELTAS:
                predicate = InList("v", values[:delta])
                simple.store.stats.reset()
                simple.lookup(predicate)
                simple_pages = simple.store.stats.logical_reads
                encoded.store.stats.reset()
                encoded.lookup(predicate)
                encoded_pages = encoded.store.stats.logical_reads
                rows.append((delta, simple_pages, encoded_pages))
            return rows

        rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
        pages_per_vector = simple.store.pages_per_vector(N)
        print_table(
            f"Figure 9 at page level (n = {N}, page = {PAGE}B, "
            f"{pages_per_vector} pages/vector)",
            ["delta", "simple pages", "encoded pages"],
            rows,
        )
        # linear vs bounded, same as the vector-level claim
        assert rows[-1][1] > rows[0][1] * 8
        k = encoded.width
        for _, _, encoded_pages in rows:
            assert encoded_pages <= k * pages_per_vector

    def test_buffer_pool_amortises_repeats(self, paged_setup):
        """With a pool that fits the query's working set, repeated
        queries are served from memory.  (The module-level fixture's
        4-frame pool deliberately demonstrates the opposite: LRU
        sequential flooding keeps its hit ratio at zero.)"""
        table, _, _ = paged_setup
        values = sorted(table.column("v").distinct_values())
        roomy = PagedEncodedBitmapIndex(
            table, "v", page_size=PAGE, pool_capacity=64
        )
        predicate = InList("v", values[:8])
        roomy.lookup(predicate)  # populate pool + reduction cache
        roomy.store.stats.reset()
        roomy.lookup(predicate)
        stats = roomy.store.stats
        print(
            f"\nrepeat-query hit ratio with a fitting pool: "
            f"{stats.hit_ratio():.2f}"
        )
        assert stats.hit_ratio() == 1.0

    def test_physical_reads_bounded_by_logical(self, paged_setup):
        table, simple, encoded = paged_setup
        values = sorted(table.column("v").distinct_values())
        encoded.store.stats.reset()
        encoded.lookup(InList("v", values[:16]))
        stats = encoded.store.stats
        assert stats.physical_reads <= stats.logical_reads
