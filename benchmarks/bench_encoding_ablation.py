"""Ablation — how much the encoding choice matters (Theorems 2.2/2.3).

Fixes a predicate workload and compares the total vectors accessed
under four encodings of the same domain:

* well-defined (our heuristic search),
* sequential (values in order — the paper's default construction),
* bit-slice / total-order,
* random (adversarial baseline).

The paper's Section 3.2 estimates the well-defined benefit at 10-16%
on average and up to 83-90% for specific selections.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import print_table
from repro.encoding.heuristics import (
    encode_for_predicates,
    encoding_cost,
    random_encoding,
    sequential_encoding,
)
from repro.encoding.total_order import bit_slice_encoding

DOMAIN = list(range(64))


def _workload(seed=0, count=10):
    """Contiguous IN-lists of mixed widths, some aligned."""
    rng = random.Random(seed)
    predicates = []
    for width in (4, 4, 8, 8, 16, 16, 32, 2, 2, 6)[:count]:
        start = rng.randint(0, len(DOMAIN) - width)
        predicates.append(DOMAIN[start : start + width])
    return predicates


class TestEncodingAblation:
    def test_four_encodings(self, benchmark):
        predicates = _workload()

        def build_all():
            return {
                "well-defined (heuristic)": encode_for_predicates(
                    DOMAIN, predicates, reserve_void_zero=False,
                    seed=0,
                ),
                "sequential": sequential_encoding(
                    DOMAIN, reserve_void_zero=False
                ),
                "bit-slice (order)": bit_slice_encoding(DOMAIN),
                "random": random_encoding(
                    DOMAIN, seed=99, reserve_void_zero=False
                ),
            }

        encodings = benchmark.pedantic(
            build_all, iterations=1, rounds=1
        )
        rows = []
        costs = {}
        for name, mapping in encodings.items():
            cost = encoding_cost(mapping, predicates)
            costs[name] = cost
            rows.append((name, f"{cost:.0f}"))
        worst_case = 6.0 * len(predicates)  # k = 6 for |A| = 64
        rows.append(("worst case (k per query)", f"{worst_case:.0f}"))
        print_table(
            "Encoding ablation: total vectors over 10 range selections",
            ["encoding", "total vectors accessed"],
            rows,
        )
        assert costs["well-defined (heuristic)"] <= costs["sequential"]
        assert costs["well-defined (heuristic)"] <= costs["random"]
        assert costs["well-defined (heuristic)"] < worst_case

    def test_saving_magnitude(self):
        """The heuristic's saving vs the worst case lands in the
        ballpark the paper derives (>= 10%)."""
        predicates = _workload()
        tuned = encode_for_predicates(
            DOMAIN, predicates, reserve_void_zero=False, seed=0
        )
        cost = encoding_cost(tuned, predicates)
        worst = 6.0 * len(predicates)
        saving = 1 - cost / worst
        print(f"\nwell-defined saving vs worst case: {saving:.1%} "
              "(paper: 10-16% average, more for aligned selections)")
        assert saving >= 0.10

    def test_aligned_selection_peak_saving(self):
        """delta = 32 of 64 values: the aligned selection reduces to
        a single vector — the 83%-style peak saving."""
        predicates = [DOMAIN[:32]]
        tuned = encode_for_predicates(
            DOMAIN, predicates, reserve_void_zero=False, seed=0
        )
        cost = encoding_cost(tuned, predicates)
        assert cost == 1.0  # 1 - 1/6 = 83% saving vs worst case
