"""Section 2.1 — cooperativity of bitmap indexes.

The paper: to cover every combination of selection conditions over n
attributes, B-trees need 2^n - 1 compound indexes, while n
single-attribute bitmap indexes combine through cheap logical ANDs.
This bench prints the exponential-vs-linear index count and executes
real multi-attribute conjunctions through the executor.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.analysis.cost_models import compound_btrees_needed
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.query.executor import Executor
from repro.query.predicates import Equals, InList, Range
from repro.table.catalog import Catalog
from repro.workload.generators import (
    build_table,
    uniform_column,
    zipf_column,
)


class TestIndexCounts:
    def test_exponential_vs_linear(self):
        rows = [
            (n, n, compound_btrees_needed(n))
            for n in (1, 2, 3, 5, 8, 10)
        ]
        print_table(
            "Indexes needed to cover all condition combinations",
            ["attributes", "bitmap indexes", "compound B-trees (2^n-1)"],
            rows,
        )
        assert rows[-1][2] == 1023


@pytest.fixture(scope="module")
def multi_attribute_setup():
    n = 4000
    table = build_table(
        "fact",
        n,
        {
            "a": uniform_column(n, 30, seed=1),
            "b": uniform_column(n, 12, seed=2),
            "c": zipf_column(n, 50, seed=3),
            "d": uniform_column(n, 8, seed=4),
        },
    )
    catalog = Catalog()
    catalog.register_table(table)
    for column in "abcd":
        catalog.register_index(EncodedBitmapIndex(table, column))
    return table, catalog


class TestConjunctiveQueries:
    def test_any_combination_served(self, multi_attribute_setup):
        """Four single-attribute indexes serve every subset of
        conditions — 15 combinations, no compound index."""
        table, catalog = multi_attribute_setup
        executor = Executor(catalog)
        leaves = {
            "a": Equals("a", 5),
            "b": Range("b", 2, 8),
            "c": InList("c", [0, 1, 2]),
            "d": Equals("d", 3),
        }
        from itertools import combinations

        served = 0
        for size in range(1, 5):
            for combo in combinations("abcd", size):
                predicate = leaves[combo[0]]
                for col in combo[1:]:
                    predicate = predicate & leaves[col]
                result = executor.select(table, predicate)
                expected = [
                    row_id
                    for row_id in range(len(table))
                    if predicate.matches(table.row(row_id))
                ]
                assert result.row_ids() == expected
                served += 1
        print(f"\nall {served} condition combinations served by "
              "4 bitmap indexes (B-trees would need 15 compounds)")
        assert served == 15

    def test_conjunction_wallclock(self, multi_attribute_setup, benchmark):
        table, catalog = multi_attribute_setup
        executor = Executor(catalog)
        predicate = (
            Equals("a", 5) & Range("b", 2, 8) & InList("c", [0, 1, 2])
        )
        result = benchmark(executor.select, table, predicate)
        assert result.count() >= 0

    def test_cost_is_sum_of_parts(self, multi_attribute_setup):
        """AND-combining costs the sum of per-index accesses — no
        multiplicative blow-up."""
        table, catalog = multi_attribute_setup
        executor = Executor(catalog)
        single_costs = []
        for predicate in (Equals("a", 5), Equals("b", 3)):
            result = executor.select(table, predicate)
            single_costs.append(result.cost.vectors_accessed)
        combined = executor.select(
            table, Equals("a", 5) & Equals("b", 3)
        )
        assert combined.cost.vectors_accessed == sum(single_costs)
