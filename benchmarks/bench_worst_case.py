"""Section 3.2 — worst-case analysis and the benefit of well-defined
encodings.

Reproduces every constant the paper prints:

* area ratio 0.84 at |A| = 50  (16% average saving),
* area ratio 0.90 at |A| = 1000 (10% average saving),
* peak saving 83% at delta = 32, |A| = 50,
* peak saving 90% at delta = 512, |A| = 1000.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.analysis.savings import (
    area_ratio,
    average_saving,
    paper_reference_numbers,
    point_saving,
    worst_case_summary,
)


class TestWorstCaseConstants:
    def test_summary_table(self, benchmark):
        def summaries():
            return [worst_case_summary(m) for m in (50, 1000)]

        rows = benchmark(summaries)
        refs = paper_reference_numbers()
        print_table(
            "Section 3.2 worst-case analysis (paper vs computed)",
            ["|A|", "k", "area ratio (paper)", "area ratio (ours)",
             "peak delta", "peak saving (paper)", "peak saving (ours)"],
            [
                (
                    s.m, s.k,
                    refs["area_ratio_m50"] if s.m == 50
                    else refs["area_ratio_m1000"],
                    f"{s.area_ratio:.3f}",
                    s.best_delta,
                    "83%" if s.m == 50 else "90%",
                    f"{s.best_saving:.1%}",
                )
                for s in rows
            ],
        )
        small, large = rows
        assert small.area_ratio == pytest.approx(0.84, abs=0.005)
        assert large.area_ratio == pytest.approx(0.90, abs=0.005)
        assert small.best_saving == pytest.approx(0.833, abs=0.001)
        assert large.best_saving == pytest.approx(0.90, abs=0.001)

    def test_average_savings(self):
        assert average_saving(50) == pytest.approx(0.16, abs=0.005)
        assert average_saving(1000) == pytest.approx(0.10, abs=0.005)

    def test_point_savings(self):
        assert point_saving(32, 50) == pytest.approx(5 / 6, abs=1e-9)
        assert point_saving(512, 1000) == pytest.approx(0.9, abs=1e-9)


class TestMeasuredBestCase:
    """Empirical confirmation: an aligned encoding really achieves the
    best-case curve the analysis integrates (not just on paper)."""

    def test_measured_area_ratio_m50(self, benchmark):
        from repro.boolean.reduction import reduce_values

        m, k = 50, 6
        dont_cares = list(range(m, 1 << k))

        def measure():
            total = 0
            for delta in range(1, m + 1):
                reduced = reduce_values(
                    range(delta), k, dont_cares=dont_cares
                )
                total += reduced.vector_count()
            return total / (k * m)

        ratio = benchmark.pedantic(measure, iterations=1, rounds=1)
        print(f"\nmeasured area ratio at |A|=50: {ratio:.3f} "
              "(paper: 0.84; don't-cares can only improve it)")
        # real reductions may exploit don't-cares and beat the model
        assert ratio <= area_ratio(50) + 0.005
