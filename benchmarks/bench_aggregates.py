"""Extension bench — aggregates directly on bitmaps (Section 5).

The paper defers aggregate algorithms to future work; this bench
implements and measures them: SUM/AVG/MEDIAN evaluated purely on the
index versus a full table scan, for both the slice-arithmetic path
(bit-sliced encoding) and the per-value decomposition (any encoding).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table
from repro.aggregate.counts import count
from repro.aggregate.quantiles import median
from repro.aggregate.sums import sum_bitsliced, sum_encoded
from repro.index.bitsliced import BitSlicedIndex
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.query.predicates import Range
from repro.workload.generators import build_table, uniform_column

N = 6000
M = 100


@pytest.fixture(scope="module")
def agg_table():
    return build_table(
        "t", N, {"v": uniform_column(N, M, seed=13, base=1)}
    )


def _scan_sum(table, predicate=None):
    total = 0
    for row in table.scan():
        if predicate is None or predicate.matches(row):
            total += row["v"]
    return total


class TestAggregates:
    def test_sum_correctness_and_timing(self, agg_table, benchmark):
        sliced = BitSlicedIndex(agg_table, "v")
        encoded = EncodedBitmapIndex(agg_table, "v")

        def run_all():
            timings = {}
            started = time.perf_counter()
            scan_total = _scan_sum(agg_table)
            timings["table scan"] = (
                scan_total, time.perf_counter() - started
            )
            started = time.perf_counter()
            slice_total = sum_bitsliced(sliced)
            timings["bit-sliced arithmetic"] = (
                slice_total, time.perf_counter() - started
            )
            started = time.perf_counter()
            encoded_total = sum_encoded(encoded)
            timings["encoded decomposition"] = (
                encoded_total, time.perf_counter() - started
            )
            return timings

        timings = benchmark.pedantic(run_all, iterations=1, rounds=1)
        print_table(
            f"SUM(v) over {N} rows, m = {M}",
            ["method", "result", "seconds"],
            [
                (name, f"{total:.0f}", f"{seconds:.4f}")
                for name, (total, seconds) in timings.items()
            ],
        )
        results = {total for total, _ in timings.values()}
        assert len(results) == 1  # all three agree

    def test_sum_under_selection(self, agg_table):
        sliced = BitSlicedIndex(agg_table, "v")
        predicate = Range("v", 20, 60)
        selection = sliced.lookup(predicate)
        assert sum_bitsliced(sliced, selection) == _scan_sum(
            agg_table, predicate
        )

    def test_median_off_the_index(self, agg_table, benchmark):
        encoded = EncodedBitmapIndex(agg_table, "v")
        result = benchmark(median, encoded)
        values = sorted(row["v"] for row in agg_table.scan())
        assert result == values[(len(values) - 1) // 2]

    def test_count_is_one_popcount(self, agg_table, benchmark):
        encoded = EncodedBitmapIndex(agg_table, "v")
        predicate = Range("v", 10, 30)
        total = benchmark(count, encoded, predicate)
        assert total == sum(
            1 for row in agg_table.scan() if predicate.matches(row)
        )
