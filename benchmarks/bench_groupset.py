"""Section 4 — group-set indexing.

The paper: GROUP BY over attributes with cardinalities 100, 200, 500
needs 10^7 simple bitmap vectors (one per combination) but only
~20 encoded vectors (7 + 8 + 9 = 24 exactly).  This bench prints the
arithmetic and runs real group-by computations through the encoded
construction, including the density observation (only occurring
combinations are materialised).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.analysis.cost_models import encoded_vectors
from repro.index.groupset import GroupSetIndex
from repro.workload.generators import build_table, uniform_column, zipf_column


class TestVectorArithmetic:
    def test_paper_example(self):
        cards = [100, 200, 500]
        simple = GroupSetIndex.simple_vector_count(cards)
        encoded = sum(encoded_vectors(m) for m in cards)
        print_table(
            "Group-set vectors for cardinalities 100 x 200 x 500",
            ["construction", "bit vectors"],
            [
                ("simple (one per combination)", f"{simple:,}"),
                ("encoded (sum of widths)", encoded),
            ],
        )
        assert simple == 10**7
        assert encoded == 24  # the paper rounds to "only 20"

    def test_scaling_table(self):
        rows = []
        for cards in ([10, 10], [100, 200], [100, 200, 500],
                      [1000, 1000, 1000]):
            rows.append(
                (
                    "x".join(map(str, cards)),
                    f"{GroupSetIndex.simple_vector_count(cards):,}",
                    sum(encoded_vectors(m) for m in cards),
                )
            )
        print_table(
            "Group-set vector scaling",
            ["cardinalities", "simple vectors", "encoded vectors"],
            rows,
        )


@pytest.fixture(scope="module")
def grouped_table():
    n = 3000
    return build_table(
        "fact",
        n,
        {
            "a": uniform_column(n, 20, seed=1),
            "b": zipf_column(n, 30, seed=2),
            "amount": uniform_column(n, 1000, seed=3),
        },
    )


class TestGroupByExecution:
    def test_group_by_count(self, grouped_table, benchmark):
        index = GroupSetIndex(grouped_table, ["a", "b"])
        counts = benchmark(index.group_by)
        assert sum(counts.values()) == len(grouped_table)

    def test_group_by_sum(self, grouped_table):
        index = GroupSetIndex(grouped_table, ["a", "b"])
        sums = index.group_by("amount")
        total = sum(
            row["amount"] for row in grouped_table.scan()
        )
        assert sum(sums.values()) == pytest.approx(total)

    def test_density_observation(self, grouped_table):
        """The paper's footnote: of the m1*m2 possible combinations
        only a fraction occurs; the encoded group-set enumerates only
        those."""
        index = GroupSetIndex(grouped_table, ["a", "b"])
        occurring = len(list(index.groups()))
        possible = 20 * 30
        density = occurring / possible
        print(f"\ngroup density: {occurring}/{possible} = "
              f"{density:.1%} of the cross product occurs")
        assert occurring <= possible

    def test_single_combination_lookup(self, grouped_table, benchmark):
        index = GroupSetIndex(grouped_table, ["a", "b"])
        vector = benchmark(
            index.group_vector, {"a": 5, "b": 0}
        )
        expected = sum(
            1
            for row in grouped_table.scan()
            if row["a"] == 5 and row["b"] == 0
        )
        assert vector.count() == expected

    def test_member_vector_budget(self, grouped_table):
        index = GroupSetIndex(grouped_table, ["a", "b"])
        # widths include the VOID sentinel bit
        assert index.vector_count <= (
            encoded_vectors(20 + 1) + encoded_vectors(30 + 1)
        )
