"""Ablation — logical reduction strategies (Section 3.2's 'Logical
Reduction' discussion).

The paper notes exact reduction is exponential but worthwhile because
it is a one-time cost per predefined predicate.  This bench compares
three strategies on the same selections:

* none       — evaluate the raw minterm DNF (worst case, k vectors),
* greedy     — QM primes + greedy cover,
* exact      — QM primes + Petrick minimal cover,

reporting vectors accessed and reduction wall-clock.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import print_table
from repro.boolean.reduction import minterm_dnf, reduce_values

WIDTH = 8
M = 200  # codes 0..199, 56 don't-cares


def _selections(seed=0, count=12, delta=24):
    rng = random.Random(seed)
    selections = []
    for _ in range(count):
        start = rng.randint(0, M - delta)
        selections.append(list(range(start, start + delta)))
    return selections


class TestReductionAblation:
    def test_strategy_comparison(self, benchmark):
        selections = _selections()
        dont_cares = list(range(M, 1 << WIDTH))

        def run():
            results = {}
            for name in ("none", "greedy", "exact"):
                started = time.perf_counter()
                vectors = 0
                for codes in selections:
                    if name == "none":
                        function = minterm_dnf(codes, WIDTH)
                    else:
                        function = reduce_values(
                            codes, WIDTH, dont_cares=dont_cares,
                            exact=(name == "exact"),
                        )
                    vectors += function.vector_count()
                results[name] = (
                    vectors, time.perf_counter() - started
                )
            return results

        results = benchmark.pedantic(run, iterations=1, rounds=1)
        print_table(
            f"Reduction ablation: 12 selections of width 24, k = {WIDTH}",
            ["strategy", "total vectors", "reduction time (s)"],
            [
                (name, vectors, f"{seconds:.4f}")
                for name, (vectors, seconds) in results.items()
            ],
        )
        assert results["exact"][0] <= results["greedy"][0]
        assert results["greedy"][0] <= results["none"][0]
        # reduction must actually help on contiguous ranges
        assert results["exact"][0] < results["none"][0]

    def test_semantics_identical_across_strategies(self):
        dont_cares = list(range(M, 1 << WIDTH))
        for codes in _selections(seed=3, count=4):
            exact = reduce_values(
                codes, WIDTH, dont_cares=dont_cares, exact=True
            )
            greedy = reduce_values(
                codes, WIDTH, dont_cares=dont_cares, exact=False
            )
            for value in range(M):  # only real codes matter
                assert exact.evaluate_value(value) == (value in codes)
                assert greedy.evaluate_value(value) == (value in codes)

    def test_reduction_is_one_time_cost(self, benchmark):
        """Reductions are cached per predicate by the index; repeat
        lookups skip the QM pass entirely."""
        from repro.index.encoded_bitmap import EncodedBitmapIndex
        from repro.query.predicates import InList
        from repro.workload.generators import build_table, uniform_column

        n = 2000
        table = build_table(
            "t", n, {"v": uniform_column(n, M, seed=1)}
        )
        index = EncodedBitmapIndex(table, "v")
        predicate = InList("v", list(range(40, 72)))
        index.lookup(predicate)  # pays the reduction once

        result = benchmark(index.lookup, predicate)
        assert result.count() > 0


class TestIntervalFastPath:
    """The O(k) binary interval decomposition vs QM on contiguous
    selections (the fast path the encoded index takes automatically
    above its threshold)."""

    def test_interval_vs_qm(self, benchmark):
        import time

        from repro.boolean.intervals import reduce_interval

        width = 10
        cases = [(0, 511), (100, 611), (37, 1000), (512, 1023)]

        def run():
            rows = []
            for lo, hi in cases:
                started = time.perf_counter()
                fast = reduce_interval(lo, hi, width)
                fast_time = time.perf_counter() - started
                started = time.perf_counter()
                exact = reduce_values(range(lo, hi + 1), width)
                qm_time = time.perf_counter() - started
                rows.append(
                    (f"[{lo},{hi}]", fast.vector_count(),
                     exact.vector_count(),
                     f"{fast_time*1000:.2f}", f"{qm_time*1000:.1f}")
                )
            return rows

        rows = benchmark.pedantic(run, iterations=1, rounds=1)
        from benchmarks.conftest import print_table

        print_table(
            "Interval fast path vs Quine-McCluskey (k = 10)",
            ["interval", "fast vectors", "QM vectors",
             "fast ms", "QM ms"],
            rows,
        )
        for _, fast_vecs, qm_vecs, _, _ in rows:
            # distinct variables never exceed k for either method
            assert fast_vecs <= width
            assert qm_vecs <= width
