"""Meta-bench — the full paper-claim validation suite.

Runs every check in :mod:`repro.analysis.validation` (one per number
printed in the paper) and prints the PASS/FAIL table; doubles as a
timing of the whole analytical reproduction.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.analysis.validation import run_all_checks


class TestPaperValidation:
    def test_all_claims(self, benchmark):
        results = benchmark(run_all_checks)
        print_table(
            "Paper-claim validation",
            ["status", "claim", "paper", "ours"],
            [
                (
                    "PASS" if r.passed else "FAIL",
                    r.claim,
                    r.paper_value,
                    r.our_value,
                )
                for r in results
            ],
        )
        assert all(r.passed for r in results)
        assert len(results) == 16
