"""Section 2.3 / Figures 7-8 — range-based encoded bitmap indexing,
plus the Wu & Yu comparison from Section 4.

Reproduces the worked example: predicates 6<=A<10, 8<=A<12, 10<=A<13,
16<=A<20 over [6,20) partition into six intervals, the intervals are
encoded, and each predicate's retrieval function reduces to <= 2
vectors.  Then contrasts with the Wu & Yu equal-population range
bitmap, which must candidate-check edge buckets.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.boolean.reduction import reduce_values
from repro.encoding.range_based import (
    partition_from_predicates,
    range_encoding,
)
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.range_bitmap import RangeBitmapIndex
from repro.query.predicates import Range
from repro.table.table import Table
from repro.workload.generators import build_table, zipf_column

PAPER_PREDICATES = [(6, 10), (8, 12), (10, 13), (16, 20)]


class TestFigures7And8:
    def test_partitioning(self):
        partition = partition_from_predicates(6, 20, PAPER_PREDICATES)
        print_table(
            "Figure 7: induced partitions of [6, 20)",
            ["interval"],
            [(str(interval),) for interval in partition.intervals],
        )
        assert len(partition) == 6

    def test_encoding_and_retrieval_functions(self, benchmark):
        partition = partition_from_predicates(6, 20, PAPER_PREDICATES)

        def encode():
            return range_encoding(partition, PAPER_PREDICATES, seed=0)

        mapping = benchmark.pedantic(encode, iterations=1, rounds=1)
        rows = []
        for low, high in PAPER_PREDICATES:
            covering = partition.covering(low, high)
            codes = [mapping.encode(i) for i in covering]
            reduced = reduce_values(
                codes, mapping.width,
                dont_cares=mapping.unused_codes(),
            )
            rows.append(
                (f"{low} <= A < {high}", reduced.to_string(),
                 reduced.vector_count())
            )
        print_table(
            "Figure 8: retrieval functions for the predefined ranges",
            ["predicate", "retrieval fn", "vectors"],
            rows,
        )
        # the paper's own encoding achieves 2 per predicate; ours must
        # do at least as well
        assert all(nvec <= 2 for _, _, nvec in rows)


class TestVersusWuYu:
    """Section 4: predicate-driven vs distribution-driven partitions."""

    @pytest.fixture(scope="class")
    def skewed(self):
        n = 4000
        return build_table(
            "t", n, {"v": zipf_column(n, 200, skew=1.2, seed=5)}
        )

    def test_edge_bucket_candidate_checks(self, skewed, benchmark):
        """Wu & Yu buckets rarely align with query ranges, forcing
        candidate row checks; the predicate-driven encoded index has
        none for its predefined ranges."""
        wu_yu = RangeBitmapIndex(skewed, "v", buckets=16)
        encoded = EncodedBitmapIndex(skewed, "v")

        predicate = Range("v", 10, 37)

        def run_both():
            wu_yu.lookup(predicate)
            checks = wu_yu.last_cost.rows_checked
            encoded.lookup(predicate)
            return checks, encoded.last_cost.rows_checked

        wu_yu_checks, encoded_checks = benchmark.pedantic(
            run_both, iterations=1, rounds=1
        )
        print_table(
            "Candidate row checks for 10 <= v <= 37 (n = 4000)",
            ["index", "vectors", "row checks"],
            [
                ("Wu & Yu range bitmap",
                 wu_yu.last_cost.vectors_accessed, wu_yu_checks),
                ("encoded bitmap",
                 encoded.last_cost.vectors_accessed, encoded_checks),
            ],
        )
        assert encoded_checks == 0
        assert wu_yu_checks > 0

    def test_results_agree(self, skewed):
        wu_yu = RangeBitmapIndex(skewed, "v", buckets=16)
        encoded = EncodedBitmapIndex(skewed, "v")
        for predicate in (
            Range("v", 0, 10), Range("v", 50, 150),
            Range("v", 190, None),
        ):
            assert wu_yu.lookup(predicate) == encoded.lookup(predicate)

    def test_many_small_partitions_degenerate(self):
        """The paper: when predicates induce many 1-element
        partitions, range-based indexing reduces to an encoded bitmap
        index on single values — still only ceil(log2) vectors."""
        predicates = [(i, i + 1) for i in range(0, 32)]
        partition = partition_from_predicates(0, 32, predicates)
        assert len(partition) == 32
        mapping = range_encoding(
            partition, predicates, local_search_steps=0, seed=0
        )
        assert mapping.width == 5  # ceil(log2 32): same as value-level
