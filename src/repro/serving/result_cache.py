"""Result cache keyed on *reduced* retrieval expressions.

The reduction layer already proves that many syntactically different
predicates retrieve the same rows: every leaf reduces to a set of
matched codes over the column's mapping, and the mapping is bijective,
so *the set of matched domain values* identifies the retrieval
function exactly (Section 2.1's ``f_a``, extended over value sets).
This cache canonicalises predicates the same way — each leaf becomes
its sorted matched-value set over the index mapping's domain plus a
null-match flag — so ``Equals("c", "a") OR Equals("c", "b")``,
``InList("c", ["b", "a"])`` and a ``Range`` spanning exactly
``{a, b}`` all share one cache entry.

A key binds ``(table, data epoch, published watermark, canonical
expression)``.  The epoch is the database's per-table mutation
counter, bumped by every mutation path (append / update / delete /
compact / reorder and index DDL), so any write moves subsequent
queries to fresh keys and stale entries age out of the LRU; the
watermark additionally separates snapshot universes within one epoch.
Entries store the merged vector, cost and flags — everything a
:class:`~repro.query.executor.QueryResult` needs to be reconstructed
bit-identically (rows *and* ``c_e``), which
``tests/test_serving.py`` proves across all five mutation paths.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable, List, Optional, Tuple

from repro.cache import LRUCache
from repro.errors import InvalidArgumentError
from repro.index.base import LookupCost
from repro.query.executor import QueryResult
from repro.query.predicates import (
    AndPredicate,
    IsNull,
    NotPredicate,
    OrPredicate,
    Predicate,
)

#: Default entry budget: result vectors are word-packed and cheap, so
#: a serving tier can afford a deep cache.
DEFAULT_CAPACITY = 256

CacheKey = Tuple[Hashable, ...]


def _sort_token(value: Any) -> Tuple[str, str]:
    """Total order over mixed-type domain values."""
    return (type(value).__name__, repr(value))


def _domain_for(
    catalog: Any, table_name: str, column: str
) -> Optional[List[Any]]:
    """The union of mapping domains the column's indexes know.

    Partitioned indexes contribute every child's partition-local
    domain.  ``None`` when no index on the column exposes a mapping —
    the caller falls back to the structural key.
    """
    values: List[Any] = []
    seen = set()
    found = False
    for index in catalog.indexes_on(table_name, column):
        children = getattr(index, "children", None) or [index]
        for child in children:
            mapping = getattr(child, "mapping", None)
            if mapping is None or not hasattr(mapping, "domain"):
                continue
            found = True
            for value in mapping.domain():
                if value not in seen:
                    seen.add(value)
                    values.append(value)
    return values if found else None


def _canonical_leaf(
    predicate: Predicate, catalog: Any, table_name: str
) -> Hashable:
    columns = predicate.columns()
    if len(columns) != 1:
        return ("structural", predicate)
    (column,) = columns
    domain = _domain_for(catalog, table_name, column)
    if domain is None:
        return ("structural", predicate)
    matched: List[Any] = []
    for value in domain:
        try:
            if predicate.matches({column: value}):
                matched.append(value)
        except TypeError:
            # Mixed-type comparison (e.g. a Range over a column whose
            # partition-union domain spans types): that value cannot
            # match.
            continue
    matches_null = isinstance(predicate, IsNull)
    return (
        "leaf",
        column,
        tuple(sorted(matched, key=_sort_token)),
        matches_null,
    )


def _merge_same_column(
    children: List[Hashable], *, union: bool
) -> Optional[Hashable]:
    """Collapse AND/OR over same-column leaves into one leaf.

    ``Equals OR Equals`` unions the matched sets (so it keys like the
    equivalent ``InList``); AND intersects.  Returns ``None`` when the
    children are not all value-set leaves on one column — the caller
    keeps the structural frozenset form.
    """
    if not children:
        return None
    if len(children) == 1:
        # AND/OR of a single operand is that operand.
        return children[0]
    leaves = []
    for child in children:
        if not (isinstance(child, tuple) and child and child[0] == "leaf"):
            return None
        leaves.append(child)
    column = leaves[0][1]
    if any(leaf[1] != column for leaf in leaves[1:]):
        return None
    sets = [set(leaf[2]) for leaf in leaves]
    nulls = [leaf[3] for leaf in leaves]
    if union:
        merged = set().union(*sets)
        matches_null = any(nulls)
    else:
        merged = set.intersection(*sets)
        matches_null = all(nulls)
    return (
        "leaf",
        column,
        tuple(sorted(merged, key=_sort_token)),
        matches_null,
    )


def canonical_expression(
    predicate: Predicate, catalog: Any, table_name: str
) -> Hashable:
    """The predicate's retrieval-equivalence class, as a hashable key.

    AND/OR collapse to *frozensets* of child keys (commutative,
    idempotent — ``a AND b`` and ``b AND a AND a`` share an entry);
    NOT wraps its child; leaves canonicalise to matched-value sets
    (module docstring).  Predicates the canonicaliser cannot decompose
    fall back to their own (frozen, hashable) structure — correct,
    merely less sharing.
    """
    if isinstance(predicate, (AndPredicate, OrPredicate)):
        union = isinstance(predicate, OrPredicate)
        children = [
            canonical_expression(op, catalog, table_name)
            for op in predicate.operands
        ]
        merged = _merge_same_column(children, union=union)
        if merged is not None:
            return merged
        return ("or" if union else "and", frozenset(children))
    if isinstance(predicate, NotPredicate):
        return (
            "not",
            canonical_expression(predicate.operand, catalog, table_name),
        )
    return _canonical_leaf(predicate, catalog, table_name)


def cache_key(
    catalog: Any,
    table_name: str,
    predicate: Predicate,
    *,
    epoch: int,
    published: int,
) -> Optional[CacheKey]:
    """The full cache key, or ``None`` when the predicate cannot be
    hashed at all (an unhashable custom predicate type)."""
    try:
        expr = canonical_expression(predicate, catalog, table_name)
        hash(expr)
    except TypeError:
        return None
    return (table_name, epoch, published, expr)


class _Entry:
    """Frozen copy of a result's cache-relevant state."""

    __slots__ = ("words", "nbits", "cost", "used_scan", "degraded")

    def __init__(self, result: QueryResult) -> None:
        self.words = result.vector.words.copy()
        self.nbits = len(result.vector)
        self.cost = LookupCost(
            vectors_accessed=result.cost.vectors_accessed,
            node_accesses=result.cost.node_accesses,
            rows_checked=result.cost.rows_checked,
        )
        self.used_scan = result.used_scan
        self.degraded = result.degraded


class ResultCache:
    """Thread-safe LRU of canonicalised query results.

    Parameters (keyword-only)
    -------------------------
    capacity:
        Maximum entries (LRU eviction beyond it).
    metrics_prefix:
        Metrics namespace; hit/miss/eviction counters publish to the
        calling thread's registry as ``<prefix>.hits`` etc.
    """

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_CAPACITY,
        metrics_prefix: str = "serving.result_cache",
    ) -> None:
        if capacity < 1:
            raise InvalidArgumentError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self._entries: LRUCache[CacheKey, _Entry] = LRUCache(
            capacity, metrics_prefix=metrics_prefix
        )
        self._lock = threading.Lock()
        #: Monotonic fill counter, exposed for stampede accounting.
        self._fills = 0

    # ------------------------------------------------------------------
    def lookup(self, key: CacheKey) -> Optional[QueryResult]:
        """A fresh :class:`QueryResult` for ``key``, or ``None``.

        Every hit materialises its own vector copy — callers may
        mutate result vectors in place, and a shared copy would let
        one caller corrupt another's answer.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        from repro.bitmap.bitvector import BitVector

        vector = BitVector(entry.nbits)
        vector.words[:] = entry.words
        return QueryResult(
            vector=vector,
            cost=LookupCost(
                vectors_accessed=entry.cost.vectors_accessed,
                node_accesses=entry.cost.node_accesses,
                rows_checked=entry.cost.rows_checked,
            ),
            used_scan=entry.used_scan,
            degraded=entry.degraded,
            cached=True,
        )

    def store(self, key: CacheKey, result: QueryResult) -> None:
        """Freeze ``result`` under ``key`` (latest write wins)."""
        entry = _Entry(result)
        with self._lock:
            self._fills += 1
        self._entries.put(key, entry)

    def fills(self) -> int:
        with self._lock:
            return self._fills

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        return self._entries.hits

    @property
    def misses(self) -> int:
        return self._entries.misses


def results_identical(
    left: QueryResult, right: QueryResult
) -> bool:
    """Bit-identity check the serving tests and bench assert on:
    same rows (word arrays compare equal) *and* same ``c_e``."""
    return bool(
        len(left.vector) == len(right.vector)
        and left.vector.words.tobytes() == right.vector.words.tobytes()
        and left.cost.vectors_accessed == right.cost.vectors_accessed
    )


__all__ = [
    "DEFAULT_CAPACITY",
    "ResultCache",
    "cache_key",
    "canonical_expression",
    "results_identical",
]
