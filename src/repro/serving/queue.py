"""Bounded admission queue for the serving tier.

The queue is where the server converts *load* into *policy*.  Three
admission policies cover the classic trade-offs:

``reject``
    Full queue fails the new request immediately
    (:class:`~repro.errors.ServerOverloadedError`) — lowest latency
    for admitted work, hard feedback for callers.
``block``
    The producer waits for space until its deadline
    (:class:`~repro.errors.RequestTimeoutError` on expiry) — classic
    backpressure.
``shed``
    The *oldest* queued request is dropped to make room — freshest
    work wins, which suits interactive dashboards where a stale
    query's answer is worthless by the time it would run.

The queue never touches metrics registries or the requests'
callbacks itself: :meth:`BoundedRequestQueue.put` *returns* the shed
items so the caller (:class:`repro.serving.server.Server`) can fail
them and account for the drop outside any lock — the EBI303 lock
hygiene rule.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Generic, List, Optional, TypeVar

from repro.errors import (
    InvalidArgumentError,
    RequestTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
)

#: Admission policies, in the order documented above.
POLICIES = ("reject", "block", "shed")

T = TypeVar("T")


class BoundedRequestQueue(Generic[T]):
    """A FIFO of pending requests with a hard capacity.

    Parameters (keyword-only)
    -------------------------
    capacity:
        Maximum queued (not yet running) requests.
    policy:
        One of :data:`POLICIES`; what :meth:`put` does when full.
    """

    def __init__(
        self, *, capacity: int, policy: str = "block"
    ) -> None:
        if capacity < 1:
            raise InvalidArgumentError(
                f"queue capacity must be >= 1, got {capacity}"
            )
        if policy not in POLICIES:
            raise InvalidArgumentError(
                f"unknown admission policy {policy!r}; "
                f"expected one of {POLICIES}"
            )
        self.capacity = capacity  # ebi: shared-readonly
        self.policy = policy  # ebi: shared-readonly
        self._items: Deque[T] = deque()
        self._closed = False
        self._lock = threading.Lock()
        #: Both conditions share ``_lock`` so every wait/notify happens
        #: under the same guard the item deque uses.
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)

    # ------------------------------------------------------------------
    def put(
        self, item: T, *, timeout: Optional[float] = None
    ) -> List[T]:
        """Enqueue ``item``, applying the admission policy when full.

        Returns the list of requests *shed* to make room (empty unless
        the policy is ``shed`` and the queue was full).  Raises
        :class:`ServerOverloadedError` (policy ``reject``),
        :class:`RequestTimeoutError` (policy ``block``, deadline
        expired while waiting for space) or :class:`ServerClosedError`.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        shed: List[T] = []
        with self._lock:
            if self._closed:
                raise ServerClosedError("server is closed")
            while len(self._items) >= self.capacity:
                if self.policy == "reject":
                    raise ServerOverloadedError(
                        f"queue full ({self.capacity} pending)"
                    )
                if self.policy == "shed":
                    shed.append(self._items.popleft())
                    continue
                remaining: Optional[float] = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise RequestTimeoutError(
                            "timed out waiting for queue space"
                        )
                self._not_full.wait(remaining)
                if self._closed:
                    raise ServerClosedError("server is closed")
            self._items.append(item)
            self._not_empty.notify()
        return shed

    def get(self, *, timeout: Optional[float] = None) -> T:
        """Pop the oldest request, waiting up to ``timeout`` seconds.

        Raises :class:`ServerClosedError` once the queue is closed
        *and* drained (workers use this as their exit signal), and
        :class:`RequestTimeoutError` when the wait expires.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._lock:
            while not self._items:
                if self._closed:
                    raise ServerClosedError("queue closed")
                remaining: Optional[float] = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise RequestTimeoutError(
                            "timed out waiting for a request"
                        )
                self._not_empty.wait(remaining)
            item = self._items.popleft()
            self._not_full.notify()
        return item

    def close(self) -> List[T]:
        """Stop admissions and return everything still queued.

        Wakes every waiting producer and consumer; the caller fails
        the returned requests (outside this queue's lock).
        """
        with self._lock:
            self._closed = True
            drained = list(self._items)
            self._items.clear()
            self._not_empty.notify_all()
            self._not_full.notify_all()
        return drained

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed


__all__ = ["POLICIES", "BoundedRequestQueue"]
