"""Long-lived query server over a :class:`repro.Database`.

The server is a classic bounded-queue worker pool with admission
control in front of it:

1. :meth:`Server.submit` resolves the request's tenant against the
   :class:`~repro.serving.quotas.QuotaManager` (a quota breach fails
   fast, before the request can consume queue capacity), then
   enqueues it under the configured admission policy
   (:mod:`repro.serving.queue`).
2. Worker threads pop requests, enforce the end-to-end deadline
   (queue wait counts against it), and run them through
   ``Database.query`` — which means every serving request gets the
   result cache, the partition executor, and the paper's cost
   accounting for free.
3. Latency (submit → answer, in seconds) is recorded per tenant; the
   p50/p99 summaries in :meth:`Server.stats` are what the ``serving``
   bench publishes.

Metric accounting follows the executor's discipline: each worker
installs a *private* registry per request and the delta is merged
into the server's tally under the stats lock afterwards — worker
threads never race on shared counters, and no registry callback ever
happens under a lock (EBI303).
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.errors import (
    InvalidArgumentError,
    RequestTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.obs.metrics import (
    MetricsRegistry,
    MetricValue,
    merge_metric_deltas,
    use_registry,
)
from repro.query.executor import QueryResult
from repro.query.options import DEFAULT_OPTIONS, QueryOptions
from repro.query.predicates import Predicate
from repro.serving.queue import BoundedRequestQueue
from repro.serving.quotas import QuotaManager

#: Percentiles reported by :meth:`Server.stats` (and the bench).
LATENCY_PERCENTILES = (50.0, 99.0)

#: Per-tenant latency samples retained (oldest evicted beyond it).
MAX_LATENCY_SAMPLES = 100_000


def percentile(values: List[float], q: float) -> float:
    """The ``q``-th percentile (nearest-rank) of ``values``.

    >>> percentile([5.0, 1.0, 3.0], 50.0)
    3.0
    >>> percentile([1.0, 2.0], 99.0)
    2.0
    """
    if not values:
        return 0.0
    if not 0.0 < q <= 100.0:
        raise InvalidArgumentError(
            f"percentile must be in (0, 100], got {q}"
        )
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class Request:
    """One in-flight query: a small future the caller waits on."""

    __slots__ = (
        "table_name",
        "predicate",
        "options",
        "tenant",
        "submitted_at",
        "deadline",
        "_done",
        "_lock",
        "_result",
        "_error",
    )

    def __init__(
        self,
        table_name: str,
        predicate: Predicate,
        options: QueryOptions,
        tenant: str,
        deadline: Optional[float],
    ) -> None:
        self.table_name = table_name  # ebi: shared-readonly
        self.predicate = predicate  # ebi: shared-readonly
        self.options = options  # ebi: shared-readonly
        self.tenant = tenant  # ebi: shared-readonly
        self.submitted_at = time.monotonic()  # ebi: shared-readonly
        self.deadline = deadline  # ebi: shared-readonly
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._result: Optional[QueryResult] = None
        self._error: Optional[BaseException] = None

    # -- fulfilment (exactly one of these, exactly once) ---------------
    def fulfil(self, result: QueryResult) -> None:
        with self._lock:
            self._result = result
        self._done.set()

    def fail(self, error: BaseException) -> None:
        with self._lock:
            self._error = error
        self._done.set()

    # -- caller side ---------------------------------------------------
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> QueryResult:
        """Block until the request is answered; re-raise its failure."""
        if not self._done.wait(timeout):
            raise RequestTimeoutError(
                f"no answer within {timeout} seconds"
            )
        with self._lock:
            error = self._error
            result = self._result
        if error is not None:
            raise error
        assert result is not None
        return result


@dataclass
class TenantStats:
    """Per-tenant serving summary (one row of :class:`ServerStats`)."""

    tenant: str
    completed: int = 0
    failed: int = 0
    latency_percentiles: Dict[str, float] = field(default_factory=dict)


@dataclass
class ServerStats:
    """Point-in-time serving summary from :meth:`Server.stats`."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    timed_out: int = 0
    queue_depth: int = 0
    latency_percentiles: Dict[str, float] = field(default_factory=dict)
    tenants: Dict[str, TenantStats] = field(default_factory=dict)
    metrics: Dict[str, MetricValue] = field(default_factory=dict)


class Server:
    """Bounded-queue worker pool serving queries from one database.

    Parameters (keyword-only)
    -------------------------
    database:
        The :class:`repro.Database` to serve.
    workers:
        Worker thread count.
    queue_capacity / policy:
        Admission queue size and full-queue policy
        (:data:`repro.serving.queue.POLICIES`).
    quotas:
        Per-tenant ceilings; defaults to an unlimited
        :class:`QuotaManager`.
    default_timeout:
        End-to-end deadline (seconds, queue wait included) applied to
        requests whose options carry no ``timeout_seconds``.
    use_cache:
        When true (the default — the serving tier owns the result
        cache), every admitted request runs with
        ``QueryOptions(use_cache=True)``; run the server with
        ``use_cache=False`` to serve strictly uncached answers.
    """

    def __init__(
        self,
        *,
        database: Any,
        workers: int = 2,
        queue_capacity: int = 64,
        policy: str = "block",
        quotas: Optional[QuotaManager] = None,
        default_timeout: Optional[float] = None,
        use_cache: bool = True,
    ) -> None:
        if workers < 1:
            raise InvalidArgumentError(
                f"workers must be >= 1, got {workers}"
            )
        self.database = database  # ebi: shared-readonly
        self.quotas = quotas or QuotaManager()  # ebi: shared-readonly
        self.default_timeout = default_timeout  # ebi: shared-readonly
        self.use_cache = use_cache  # ebi: shared-readonly
        self._queue: BoundedRequestQueue[Request] = BoundedRequestQueue(
            capacity=queue_capacity, policy=policy
        )  # ebi: shared-readonly
        self._stats_lock = threading.Lock()
        self._counts: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "shed": 0,
            "timed_out": 0,
        }
        self._latencies: Deque[float] = deque(maxlen=MAX_LATENCY_SAMPLES)
        self._tenant_latencies: Dict[str, Deque[float]] = {}
        self._tenant_counts: Dict[str, Dict[str, int]] = {}
        self._metrics: Dict[str, MetricValue] = {}
        self._closed = False
        self._close_lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"serving-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        table_name: str,
        predicate: Predicate,
        *,
        options: Optional[QueryOptions] = None,
    ) -> Request:
        """Admit a query; returns a :class:`Request` to wait on.

        Raises :class:`~repro.errors.QuotaExceededError`,
        :class:`~repro.errors.ServerOverloadedError`,
        :class:`~repro.errors.RequestTimeoutError` or
        :class:`~repro.errors.ServerClosedError` per the admission
        pipeline described in the module docstring.
        """
        opts = options or DEFAULT_OPTIONS
        tenant = self.quotas.acquire(opts.tenant)
        if opts.tenant != tenant:
            opts = opts.replace(tenant=tenant)
        if self.use_cache and not opts.use_cache:
            opts = opts.replace(use_cache=True)
        timeout = (
            opts.timeout_seconds
            if opts.timeout_seconds is not None
            else self.default_timeout
        )
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        request = Request(table_name, predicate, opts, tenant, deadline)
        try:
            shed = self._queue.put(request, timeout=timeout)
        except BaseException:
            self.quotas.release(tenant)
            raise
        self._count("submitted")
        for victim in shed:
            victim.fail(
                ServerOverloadedError("shed by a newer request")
            )
            self.quotas.release(victim.tenant)
            self._count("shed")
            self._count_tenant(victim.tenant, "failed")
        return request

    def query(
        self,
        table_name: str,
        predicate: Predicate,
        *,
        options: Optional[QueryOptions] = None,
    ) -> QueryResult:
        """Submit and wait — the synchronous convenience path."""
        request = self.submit(table_name, predicate, options=options)
        remaining: Optional[float] = None
        if request.deadline is not None:
            remaining = max(
                request.deadline - time.monotonic(), 0.001
            )
        return request.result(remaining)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:  # ebi: worker-entry
        while True:
            try:
                request = self._queue.get()
            except ServerClosedError:
                return
            self._serve(request)

    def _serve(self, request: Request) -> None:
        registry = MetricsRegistry()
        started = time.monotonic()
        result: Optional[QueryResult] = None
        failure: Optional[BaseException] = None
        # The whole request — execution *and* quota release — runs
        # under a private registry, so tenant counters and query
        # metrics land in the per-request delta and merge into the
        # server tally deterministically (no cross-worker counter
        # races on a shared registry).
        with use_registry(registry):
            try:
                if (
                    request.deadline is not None
                    and started >= request.deadline
                ):
                    raise RequestTimeoutError(
                        "deadline expired while queued"
                    )
                opts = request.options
                if request.deadline is not None:
                    opts = opts.replace(
                        timeout_seconds=request.deadline - started
                    )
                result = self.database.query(
                    request.table_name, request.predicate, opts
                )
            except BaseException as error:
                failure = error
            finally:
                self.quotas.release(request.tenant)
        if failure is not None:
            request.fail(failure)
            self._record(request, registry=registry, error=failure)
        else:
            assert result is not None
            request.fulfil(result)
            self._record(request, registry=registry)

    def _record(
        self,
        request: Request,
        *,
        registry: Optional[MetricsRegistry] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        latency = time.monotonic() - request.submitted_at
        delta = registry.snapshot() if registry is not None else {}
        with self._stats_lock:
            if error is None:
                self._counts["completed"] += 1
                self._latencies.append(latency)
                per_tenant = self._tenant_latencies.setdefault(
                    request.tenant,
                    deque(maxlen=MAX_LATENCY_SAMPLES),
                )
                per_tenant.append(latency)
                self._tenant_count_locked(request.tenant, "completed")
            else:
                self._counts["failed"] += 1
                if isinstance(error, RequestTimeoutError):
                    self._counts["timed_out"] += 1
                self._tenant_count_locked(request.tenant, "failed")
            if delta:
                self._metrics = merge_metric_deltas(
                    [self._metrics, delta]
                )

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------
    def _count(self, key: str) -> None:
        with self._stats_lock:
            self._counts[key] += 1

    def _count_tenant(self, tenant: str, key: str) -> None:
        with self._stats_lock:
            self._tenant_count_locked(tenant, key)

    def _tenant_count_locked(self, tenant: str, key: str) -> None:
        counts = self._tenant_counts.setdefault(
            tenant, {"completed": 0, "failed": 0}
        )
        counts[key] += 1

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def stats(self) -> ServerStats:
        """A consistent snapshot of counts, latencies and metrics."""
        with self._stats_lock:
            counts = dict(self._counts)
            latencies = list(self._latencies)
            tenant_latencies = {
                tenant: list(samples)
                for tenant, samples in self._tenant_latencies.items()
            }
            tenant_counts = {
                tenant: dict(values)
                for tenant, values in self._tenant_counts.items()
            }
            metrics = dict(self._metrics)
        tenants: Dict[str, TenantStats] = {}
        names = set(tenant_latencies) | set(tenant_counts)
        for tenant in sorted(names):
            samples = tenant_latencies.get(tenant, [])
            values = tenant_counts.get(tenant, {})
            tenants[tenant] = TenantStats(
                tenant=tenant,
                completed=values.get("completed", 0),
                failed=values.get("failed", 0),
                latency_percentiles={
                    f"p{q:g}": percentile(samples, q)
                    for q in LATENCY_PERCENTILES
                },
            )
        return ServerStats(
            submitted=counts["submitted"],
            completed=counts["completed"],
            failed=counts["failed"],
            shed=counts["shed"],
            timed_out=counts["timed_out"],
            queue_depth=len(self._queue),
            latency_percentiles={
                f"p{q:g}": percentile(latencies, q)
                for q in LATENCY_PERCENTILES
            },
            tenants=tenants,
            metrics=metrics,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop admissions, fail queued work, join the workers."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        drained = self._queue.close()
        for request in drained:
            request.fail(ServerClosedError("server closed"))
            self.quotas.release(request.tenant)
            self._count_tenant(request.tenant, "failed")
            self._count("failed")
        for thread in self._threads:
            thread.join(timeout=10.0)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "LATENCY_PERCENTILES",
    "Request",
    "Server",
    "ServerStats",
    "TenantStats",
    "percentile",
]
