"""Seeded zipf-skewed multi-tenant synthetic workload.

Serving benchmarks live or die by their workload shape, so this one
is explicit about its three axes:

* **Value skew** — read predicates target domain values with
  zipf-ranked popularity (rank ``r`` drawn with probability
  proportional to ``1 / r^skew``).  Skew is what makes a result
  cache interesting: a handful of hot expressions dominate.
* **Tenant skew** — tenants draw from the same zipf law, so one hot
  tenant saturates its quota while the tail trickles.
* **Read/write mix** — writes (appends) invalidate the result cache
  epoch, bounding how long any cached entry can live.

Everything derives from one ``random.Random(seed)``, so a workload is
reproducible across runs and backends — the property the serving
bench's bit-identity lines rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.errors import InvalidArgumentError
from repro.query.predicates import Equals, InList, OrPredicate, Predicate

#: Default attribute domain: low cardinality, the regime where the
#: paper's encoded bitmap beats simple bitmaps (Section 4).
DEFAULT_VALUES = (
    "berlin",
    "cairo",
    "darmstadt",
    "kyoto",
    "lima",
    "oslo",
    "quito",
    "sydney",
)


class ZipfSampler:
    """Draw ranks ``0..n-1`` with probability ∝ ``1/(rank+1)^skew``.

    >>> sampler = ZipfSampler(4, skew=1.0, rng=random.Random(7))
    >>> counts = [0, 0, 0, 0]
    >>> for _ in range(1000):
    ...     counts[sampler.sample()] += 1
    >>> counts[0] > counts[3]
    True
    """

    def __init__(
        self, n: int, *, skew: float, rng: random.Random
    ) -> None:
        if n < 1:
            raise InvalidArgumentError(f"n must be >= 1, got {n}")
        if skew < 0:
            raise InvalidArgumentError(
                f"skew must be >= 0, got {skew}"
            )
        self._rng = rng
        weights = [1.0 / (rank + 1) ** skew for rank in range(n)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    def sample(self) -> int:
        point = self._rng.random()
        for rank, bound in enumerate(self._cdf):
            if point <= bound:
                return rank
        return len(self._cdf) - 1


@dataclass(frozen=True)
class ReadOp:
    """One read request: a predicate issued by a tenant."""

    tenant: str
    predicate: Predicate


@dataclass(frozen=True)
class WriteOp:
    """One write request: a row appended by a tenant."""

    tenant: str
    row: Dict[str, Any]


Operation = Union[ReadOp, WriteOp]


class SyntheticWorkload:
    """A reproducible stream of serving operations.

    Parameters (keyword-only)
    -------------------------
    seed:
        Seeds the single RNG everything draws from.
    tenants:
        Tenant names (or a count; names become ``tenant-0`` …).
    values:
        Attribute domain for the indexed ``region`` column.
    rows:
        Initial table size built by :meth:`build`.
    read_fraction:
        Probability an operation is a read (the rest append).
    skew:
        Zipf exponent shared by the value and tenant laws.
    partitions:
        When set, :meth:`build` creates a partitioned table.
    table / column:
        Override the table and indexed column the operations target —
        ``repro serve`` uses this to drive a *recovered* database
        instead of the synthetic ``events`` table.
    """

    TABLE = "events"
    COLUMN = "region"

    def __init__(
        self,
        *,
        seed: int = 0,
        tenants: Union[int, Sequence[str]] = 4,
        values: Sequence[str] = DEFAULT_VALUES,
        rows: int = 2048,
        read_fraction: float = 0.9,
        skew: float = 1.1,
        partitions: Optional[int] = None,
        table: Optional[str] = None,
        column: Optional[str] = None,
    ) -> None:
        if isinstance(tenants, int):
            if tenants < 1:
                raise InvalidArgumentError(
                    f"tenants must be >= 1, got {tenants}"
                )
            tenant_names = [f"tenant-{i}" for i in range(tenants)]
        else:
            tenant_names = list(tenants)
            if not tenant_names:
                raise InvalidArgumentError("tenants must be non-empty")
        if not values:
            raise InvalidArgumentError("values must be non-empty")
        if not 0.0 <= read_fraction <= 1.0:
            raise InvalidArgumentError(
                f"read_fraction must be in [0, 1], got {read_fraction}"
            )
        if rows < 1:
            raise InvalidArgumentError(f"rows must be >= 1, got {rows}")
        if table is not None:
            self.TABLE = table  # instance override shadows the class
        if column is not None:
            self.COLUMN = column
        self.seed = seed
        self.tenants = tenant_names
        self.values = list(values)
        self.rows = rows
        self.read_fraction = read_fraction
        self.skew = skew
        self.partitions = partitions
        self._rng = random.Random(seed)
        self._value_sampler = ZipfSampler(
            len(self.values), skew=skew, rng=self._rng
        )
        self._tenant_sampler = ZipfSampler(
            len(tenant_names), skew=skew, rng=self._rng
        )
        self._sequence = 0

    # ------------------------------------------------------------------
    def build(self, database: Any) -> None:
        """Create and populate the workload table (plus its index)."""
        rng = random.Random(self.seed ^ 0x5EED)
        data = {
            self.COLUMN: [
                self.values[rng.randrange(len(self.values))]
                for _ in range(self.rows)
            ],
            "amount": [rng.randrange(10_000) for _ in range(self.rows)],
        }
        database.create_table(
            self.TABLE, data, partitions=self.partitions
        )
        database.create_index(self.TABLE, self.COLUMN, kind="encoded")

    # ------------------------------------------------------------------
    def _read(self, tenant: str) -> ReadOp:
        first = self.values[self._value_sampler.sample()]
        shape = self._rng.random()
        predicate: Predicate
        if shape < 0.6:
            predicate = Equals(self.COLUMN, first)
        elif shape < 0.8:
            second = self.values[self._value_sampler.sample()]
            predicate = InList(self.COLUMN, [first, second])
        else:
            # Syntactic variant of the InList shape: canonically equal
            # predicates that exercise the cache's reduction-keyed
            # sharing.
            second = self.values[self._value_sampler.sample()]
            predicate = OrPredicate(
                (
                    Equals(self.COLUMN, first),
                    Equals(self.COLUMN, second),
                )
            )
        return ReadOp(tenant=tenant, predicate=predicate)

    def _write(self, tenant: str) -> WriteOp:
        value = self.values[self._value_sampler.sample()]
        self._sequence += 1
        return WriteOp(
            tenant=tenant,
            row={
                self.COLUMN: value,
                "amount": self._rng.randrange(10_000),
            },
        )

    def operations(self, count: int) -> Iterator[Operation]:
        """Yield ``count`` seeded operations (reads and appends)."""
        for _ in range(count):
            tenant = self.tenants[self._tenant_sampler.sample()]
            if self._rng.random() < self.read_fraction:
                yield self._read(tenant)
            else:
                yield self._write(tenant)


__all__ = [
    "DEFAULT_VALUES",
    "Operation",
    "ReadOp",
    "SyntheticWorkload",
    "WriteOp",
    "ZipfSampler",
]
