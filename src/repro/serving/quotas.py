"""Per-tenant quotas and accounting for the serving tier.

A tenant is any string identity a request carries
(:attr:`repro.query.options.QueryOptions.tenant`).  The manager
enforces a concurrent in-flight ceiling per tenant and keeps
admitted / rejected / completed counts, published to the metrics
registry as ``serving.tenant.<id>.admitted`` etc. — the same
registry the rest of the stack reports through, so one bench snapshot
sees executor, cache and tenant accounting together.

Counter publication happens *outside* the manager's lock (EBI303):
the lock protects only the in-flight map, and metric increments are
issued after it is released.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.errors import InvalidArgumentError, QuotaExceededError
from repro.obs.metrics import get_registry

#: Tenant identity used when a request carries none.
DEFAULT_TENANT = "anonymous"


class QuotaManager:
    """Concurrent-request ceilings and accounting per tenant.

    Parameters (keyword-only)
    -------------------------
    default_limit:
        In-flight ceiling for tenants without an explicit entry.
        ``None`` means unlimited.
    limits:
        Per-tenant overrides (``{"analytics": 2}``); an explicit
        ``None`` value grants that tenant an unlimited lane.
    """

    def __init__(
        self,
        *,
        default_limit: Optional[int] = None,
        limits: Optional[Dict[str, Optional[int]]] = None,
    ) -> None:
        if default_limit is not None and default_limit < 1:
            raise InvalidArgumentError(
                f"default_limit must be >= 1 or None, got {default_limit}"
            )
        for tenant, limit in (limits or {}).items():
            if limit is not None and limit < 1:
                raise InvalidArgumentError(
                    f"limit for tenant {tenant!r} must be >= 1 or "
                    f"None, got {limit}"
                )
        self.default_limit = default_limit  # ebi: shared-readonly
        self._limits: Dict[str, Optional[int]] = dict(limits or {})  # ebi: shared-readonly
        self._inflight: Dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def limit_for(self, tenant: str) -> Optional[int]:
        """The in-flight ceiling for ``tenant`` (``None`` = unlimited)."""
        if tenant in self._limits:
            return self._limits[tenant]
        return self.default_limit

    def acquire(self, tenant: Optional[str]) -> str:
        """Claim an in-flight slot for ``tenant``.

        Returns the resolved tenant id (``anonymous`` when ``None``).
        Raises :class:`~repro.errors.QuotaExceededError` when the
        tenant is already at its ceiling — admission control, not
        queueing: a quota breach is the tenant's own backlog, so it
        must not consume shared queue capacity.
        """
        resolved = tenant or DEFAULT_TENANT
        limit = self.limit_for(resolved)
        with self._lock:
            current = self._inflight.get(resolved, 0)
            admitted = limit is None or current < limit
            if admitted:
                self._inflight[resolved] = current + 1
        registry = get_registry()
        if not admitted:
            registry.counter(
                f"serving.tenant.{resolved}.rejected"
            ).inc()
            raise QuotaExceededError(
                f"tenant {resolved!r} at its in-flight limit ({limit})"
            )
        registry.counter(f"serving.tenant.{resolved}.admitted").inc()
        return resolved

    def release(self, tenant: str) -> None:
        """Return the slot claimed by :meth:`acquire`."""
        with self._lock:
            current = self._inflight.get(tenant, 0)
            if current <= 1:
                self._inflight.pop(tenant, None)
            else:
                self._inflight[tenant] = current - 1
        get_registry().counter(
            f"serving.tenant.{tenant}.completed"
        ).inc()

    def inflight(self, tenant: Optional[str] = None) -> int:
        """In-flight requests for one tenant, or the total."""
        with self._lock:
            if tenant is not None:
                return self._inflight.get(tenant, 0)
            return sum(self._inflight.values())


__all__ = ["DEFAULT_TENANT", "QuotaManager"]
