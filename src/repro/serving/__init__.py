"""Query-serving tier: result cache, admission control, workloads.

The serving package turns a :class:`repro.Database` into a long-lived
multi-tenant query service:

* :mod:`repro.serving.result_cache` — results keyed on *reduced*
  retrieval expressions (the paper's bijective-mapping argument makes
  the matched-value set a sound cache key), invalidated by the
  database's per-table epoch counter.
* :mod:`repro.serving.queue` — bounded admission queue with
  ``reject`` / ``block`` / ``shed`` policies.
* :mod:`repro.serving.quotas` — per-tenant in-flight ceilings and
  accounting through :mod:`repro.obs`.
* :mod:`repro.serving.server` — the worker-pool server tying the
  above together, with p50/p99 latency summaries.
* :mod:`repro.serving.workload` — seeded zipf-skewed multi-tenant
  workloads for the bench and the ``repro serve`` CLI.

Every constructor in the package takes keyword-only configuration —
part of the request-API redesign that also introduced
:class:`repro.query.options.QueryOptions`.
"""

from repro.serving.queue import POLICIES, BoundedRequestQueue
from repro.serving.quotas import DEFAULT_TENANT, QuotaManager
from repro.serving.result_cache import (
    ResultCache,
    cache_key,
    canonical_expression,
    results_identical,
)
from repro.serving.server import (
    Request,
    Server,
    ServerStats,
    TenantStats,
    percentile,
)
from repro.serving.workload import (
    ReadOp,
    SyntheticWorkload,
    WriteOp,
    ZipfSampler,
)

__all__ = [
    "POLICIES",
    "DEFAULT_TENANT",
    "BoundedRequestQueue",
    "QuotaManager",
    "ReadOp",
    "Request",
    "ResultCache",
    "Server",
    "ServerStats",
    "SyntheticWorkload",
    "TenantStats",
    "WriteOp",
    "ZipfSampler",
    "cache_key",
    "canonical_expression",
    "percentile",
    "results_identical",
]
