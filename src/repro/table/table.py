"""Row-addressable columnar table with soft deletion.

Rows are identified by their append position (tuple-id).  Deleting a
row does not reclaim the position — the row becomes a *void* tuple,
exactly the situation the paper's Theorem 2.1 handles by reserving
code 0.  Indexes attached to the table are notified of appends,
updates and deletions so they stay consistent.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.bitmap.bitvector import BitVector
from repro.table.column import Column
from repro.errors import TableError


class Table:
    """A named collection of equal-length columns.

    Parameters
    ----------
    name:
        Table name.
    column_names:
        Ordered column names; rows are dicts or sequences over these.
    """

    def __init__(self, name: str, column_names: Sequence[str]) -> None:
        if not column_names:
            raise TableError("a table needs at least one column")
        if len(set(column_names)) != len(column_names):
            raise TableError("duplicate column names")
        self.name = name  # ebi: shared-readonly
        self._columns: Dict[str, Column] = {
            col_name: Column(col_name) for col_name in column_names
        }
        self._void: Set[int] = set()
        self._observers: List[Any] = []
        #: Serialises each mutation *with* its index notifications, so
        #: two concurrent writers to the same row cannot leave the
        #: column and its indexes applied in opposite orders (a lost
        #: update the interleaving stress tests reproduce).  Readers
        #: never take it.  Lock order is table -> index; indexes never
        #: call back into the table while holding their own lock.
        self._write_lock = threading.Lock()
        #: Batch-atomic row watermark: moves once per ``append`` /
        #: ``append_rows`` call, after the whole batch (values *and*
        #: index notifications) is applied.  Snapshot readers pin on
        #: this instead of ``len(self)``, so a pin can never land in
        #: the middle of a batch.
        self._published_rows = 0
        #: Monotonic mutation counter: bumps once per append batch,
        #: update, delete or permutation, under the write lock.  The
        #: process-pool backend (:mod:`repro.shard.process`) folds it
        #: into partition fingerprints so a worker's cached
        #: deserialisation is invalidated by *any* mutation, including
        #: an in-place update that moves no watermark.
        self._mutations = 0

    @classmethod
    def from_columns(
        cls, name: str, columns: Dict[str, Sequence[Any]]
    ) -> "Table":
        """Build a table from whole columns in one bulk step.

        Orders of magnitude faster than :meth:`append` in a loop for
        large tables because each column is extended once; observers
        cannot exist yet, so no per-row notifications fire.
        """
        table = cls(name, list(columns))
        lengths = {col: len(values) for col, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise TableError(f"unequal column lengths: {lengths}")
        for col_name, values in columns.items():
            table._columns[col_name].extend(values)
        table._published_rows = len(table)
        return table

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise TableError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    # ------------------------------------------------------------------
    # rows
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Physical row count, including void positions."""
        first = next(iter(self._columns.values()))
        return len(first)

    def live_count(self) -> int:
        """Rows that are not void."""
        return len(self) - len(self._void)

    def published_rows(self) -> int:
        """Rows visible to snapshot readers (batch-atomic watermark).

        Trails ``len(self)`` only in the middle of an append batch;
        equal otherwise.  See :mod:`repro.query.snapshot`.
        """
        return self._published_rows

    def mutation_count(self) -> int:
        """How many mutations (append batches, updates, deletes,
        permutations) this table has ever applied — a cheap change
        fingerprint for cross-process caches."""
        return self._mutations

    def append(self, row: Any) -> int:
        """Append one row (dict by column name, or positional sequence).

        Returns the new tuple-id and notifies attached indexes.
        """
        values = self._row_values(row)
        row_id = -1
        with self._write_lock:
            for col_name, value in zip(self._columns, values):
                row_id = self._columns[col_name].append(value)
            for observer in self._observers:
                observer.on_append(
                    row_id, dict(zip(self._columns, values))
                )
            self._published_rows = row_id + 1
            self._mutations += 1
        return row_id

    def append_rows(self, rows: Iterable[Any]) -> List[int]:
        """Append a batch of rows atomically.

        The write lock is held for the *whole* batch and the published
        watermark moves once at the end, so a concurrent snapshot
        reader (see :mod:`repro.query.snapshot`) observes either none
        of the batch or all of it — never rows 0..i of it.  Row
        validation happens up front, before any mutation, so a bad row
        fails the batch without applying a prefix.
        """
        batch = [self._row_values(row) for row in rows]
        if not batch:
            return []
        row_ids: List[int] = []
        with self._write_lock:
            for values in batch:
                row_id = -1
                for col_name, value in zip(self._columns, values):
                    row_id = self._columns[col_name].append(value)
                for observer in self._observers:
                    observer.on_append(
                        row_id, dict(zip(self._columns, values))
                    )
                row_ids.append(row_id)
            self._published_rows = row_ids[-1] + 1
            self._mutations += 1
        return row_ids

    def row(self, row_id: int) -> Dict[str, Any]:
        """Materialise one row as a dict (void rows raise)."""
        if row_id in self._void:
            raise TableError(f"row {row_id} is deleted")
        return {
            name: column[row_id] for name, column in self._columns.items()
        }

    def update(self, row_id: int, column_name: str, value: Any) -> None:
        """Overwrite one attribute of a live row."""
        with self._write_lock:
            if row_id in self._void:
                raise TableError(f"row {row_id} is deleted")
            old = self.column(column_name).update(row_id, value)
            for observer in self._observers:
                # Index maintenance must stay inside the write lock —
                # that atomicity is the whole point (see the lock's
                # docstring).  Some index kinds persist vectors
                # through the simulated pager, whose "I/O" is memory
                # copies, so the no-I/O-under-lock rule is suppressed
                # here deliberately.
                observer.on_update(row_id, column_name, old, value)  # ebilint: disable=EBI303
            self._mutations += 1

    def delete(self, row_id: int) -> None:
        """Soft-delete a row: the position becomes a void tuple."""
        if row_id < 0 or row_id >= len(self):
            raise TableError(f"row {row_id} out of range")
        with self._write_lock:
            if row_id in self._void:
                raise TableError(f"row {row_id} already deleted")
            self._void.add(row_id)
            for observer in self._observers:
                observer.on_delete(row_id)
            self._mutations += 1

    def is_void(self, row_id: int) -> bool:
        return row_id in self._void

    def void_rows(self) -> Set[int]:
        return set(self._void)

    def existence_vector(self) -> BitVector:
        """Bit per row: 1 = live — the simple-bitmap existence vector."""
        vector = BitVector.ones(len(self))
        for row_id in self._void:
            vector[row_id] = False
        return vector

    def scan(
        self, columns: Optional[Sequence[str]] = None
    ) -> Iterator[Dict[str, Any]]:
        """Yield live rows as dicts (a full table scan)."""
        names = list(columns) if columns else self.column_names
        for row_id in range(len(self)):
            if row_id in self._void:
                continue
            yield {name: self.column(name)[row_id] for name in names}

    def apply_permutation(self, order: Sequence[int]) -> None:
        """Physically reorder the rows: new row ``j`` takes its values
        from old row ``order[j]``.

        The column rewrite, the void-set remap and every attached
        index's :meth:`~repro.index.base.Index.rebuild` all run under
        the write lock, so a concurrent writer can never interleave
        with a half-permuted table (the same batch-atomicity contract
        as :meth:`append_rows`).  Used by :mod:`repro.shard.reorder`;
        raises :class:`~repro.errors.TableError` if ``order`` is not a
        permutation of the current row ids, and ``NotImplementedError``
        if an attached index kind cannot rebuild.
        """
        with self._write_lock:
            nrows = len(self)
            order = list(order)
            if sorted(order) != list(range(nrows)):
                raise TableError(
                    f"order is not a permutation of {nrows} row ids"
                )
            for name, column in list(self._columns.items()):
                values = column.values()
                self._columns[name] = Column(
                    name, [values[i] for i in order]
                )
            inverse = {old: new for new, old in enumerate(order)}
            self._void = {inverse[row_id] for row_id in self._void}
            for observer in self._observers:
                observer.rebuild()
            self._mutations += 1

    # ------------------------------------------------------------------
    # index attachment
    # ------------------------------------------------------------------
    def attach(self, observer: Any) -> None:
        """Register an index for change notifications."""
        self._observers.append(observer)

    def detach(self, observer: Any) -> None:
        self._observers.remove(observer)

    # ------------------------------------------------------------------
    def _row_values(self, row: Any) -> List[Any]:
        if isinstance(row, dict):
            unknown = set(row) - set(self._columns)
            if unknown:
                raise TableError(f"unknown columns {sorted(unknown)}")
            return [row.get(name) for name in self._columns]
        values = list(row)
        if len(values) != len(self._columns):
            raise TableError(
                f"row has {len(values)} values, expected "
                f"{len(self._columns)}"
            )
        return values

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, columns={self.column_names}, "
            f"rows={len(self)}, void={len(self._void)})"
        )
