"""Columnar table substrate.

A deliberately small warehouse storage layer: append-only columns with
NULL support, tables with soft row deletion (deleted rows become the
paper's *void* tuples), and star schemas with dimension hierarchies.
"""

from repro.table.column import Column
from repro.table.table import Table
from repro.table.schema import Dimension, FactTable, StarSchema
from repro.table.catalog import Catalog

__all__ = [
    "Column",
    "Table",
    "Dimension",
    "FactTable",
    "StarSchema",
    "Catalog",
]
