"""Catalog: the registry tying tables to their indexes.

The query planner asks the catalog which indexes exist on a column and
picks the cheapest applicable one.  Index registration also attaches
the index to the table for maintenance notifications.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.errors import TableError
from repro.table.table import Table


class Catalog:
    """Registry of tables and their per-column indexes."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._indexes: Dict[Tuple[str, str], List[Any]] = {}

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def register_table(self, table: Table) -> Table:
        if table.name in self._tables:
            raise TableError(f"table {table.name!r} already registered")
        self._tables[table.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise TableError(f"unknown table {name!r}") from None

    def tables(self) -> List[Table]:
        return list(self._tables.values())

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def register_index(self, index: Any, attach: bool = True) -> Any:
        """Register an index (anything with .table and .column_name)."""
        table = index.table
        key = (table.name, index.column_name)
        self._indexes.setdefault(key, []).append(index)
        if attach:
            table.attach(index)
        return index

    def indexes_on(self, table_name: str, column_name: str) -> List[Any]:
        return list(self._indexes.get((table_name, column_name), []))

    def all_indexes(self) -> List[Any]:
        return [
            index
            for index_list in self._indexes.values()
            for index in index_list
        ]

    def __repr__(self) -> str:
        return (
            f"Catalog(tables={list(self._tables)}, "
            f"indexes={sum(len(v) for v in self._indexes.values())})"
        )
