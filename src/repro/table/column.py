"""Append-only column with NULL support.

Values are stored positionally; ``None`` denotes SQL NULL.  The column
tracks its distinct non-NULL domain incrementally so index builders can
ask for the cardinality without a scan.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Set

from repro.errors import TableError


class Column:
    """A named, typed-by-convention, append-only value column."""

    def __init__(self, name: str, values: Optional[Iterable[Any]] = None) -> None:
        if not name:
            raise TableError("column name must be non-empty")
        self.name = name
        self._values: List[Any] = []
        self._distinct: Set[Any] = set()
        self._null_count = 0
        if values is not None:
            self.extend(values)

    # ------------------------------------------------------------------
    def append(self, value: Any) -> int:
        """Append one value (``None`` = NULL); returns its row id."""
        row_id = len(self._values)
        self._values.append(value)
        if value is None:
            self._null_count += 1
        else:
            self._distinct.add(value)
        return row_id

    def extend(self, values: Iterable[Any]) -> None:
        """Append many values at once (bulk form of :meth:`append`).

        Batches the list growth, null accounting and distinct-set
        update instead of paying per-value call overhead — the path
        :meth:`repro.table.table.Table.from_columns` uses to build
        million-row bench tables.
        """
        added = list(values)
        self._values.extend(added)
        self._null_count += sum(1 for value in added if value is None)
        self._distinct.update(
            value for value in added if value is not None
        )

    def update(self, row_id: int, value: Any) -> Any:
        """Overwrite a row; returns the previous value.

        The distinct set is grow-only (dropping a value would need a
        full scan); cardinality therefore never shrinks, matching how
        a warehouse treats its dimension domain.
        """
        old = self[row_id]
        self._values[row_id] = value
        if old is None and value is not None:
            self._null_count -= 1
        if old is not None and value is None:
            self._null_count += 1
        if value is not None:
            self._distinct.add(value)
        return old

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, row_id: int) -> Any:
        try:
            return self._values[row_id]
        except IndexError:
            raise TableError(
                f"row {row_id} out of range for column {self.name!r} "
                f"of length {len(self._values)}"
            ) from None

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def values(self) -> List[Any]:
        """A copy of the raw value list (NULLs as ``None``)."""
        return list(self._values)

    # ------------------------------------------------------------------
    def distinct_values(self) -> Set[Any]:
        """Distinct non-NULL values ever seen (the attribute domain)."""
        return set(self._distinct)

    def cardinality(self) -> int:
        """``|A|`` — the paper's ``m`` for this attribute."""
        return len(self._distinct)

    @property
    def null_count(self) -> int:
        return self._null_count

    def has_nulls(self) -> bool:
        return self._null_count > 0

    def value_positions(self) -> Dict[Any, List[int]]:
        """Inverted map value -> row ids (NULLs under ``None``)."""
        positions: Dict[Any, List[int]] = {}
        for row_id, value in enumerate(self._values):
            positions.setdefault(value, []).append(row_id)
        return positions

    def __repr__(self) -> str:
        return (
            f"Column({self.name!r}, rows={len(self)}, "
            f"cardinality={self.cardinality()})"
        )
