"""Star schema modelling: fact table, dimensions, hierarchies.

The paper's running warehouse example is a SALES fact table with a
PRODUCTS dimension (12000 products) and a SALESPOINT dimension with a
branch -> company -> alliance hierarchy.  :class:`StarSchema` wires
those pieces together and knows how to resolve a selection on a
hierarchy element into a base-level IN-list on the fact table's
foreign key column.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

from repro.encoding.hierarchy import Hierarchy
from repro.errors import SchemaError
from repro.table.table import Table


class Dimension:
    """A dimension table with an optional hierarchy over its key.

    Parameters
    ----------
    table:
        The dimension's backing table.
    key:
        Name of the key column referenced by the fact table.
    hierarchy:
        Optional :class:`Hierarchy` whose base values are key values.
    """

    def __init__(
        self,
        table: Table,
        key: str,
        hierarchy: Optional[Hierarchy] = None,
    ) -> None:
        if key not in table:
            raise SchemaError(
                f"dimension {table.name!r} has no key column {key!r}"
            )
        self.table = table
        self.key = key
        self.hierarchy = hierarchy

    @property
    def name(self) -> str:
        return self.table.name

    def key_values(self) -> Set[Hashable]:
        """Distinct dimension keys (the foreign-key domain)."""
        return self.table.column(self.key).distinct_values()

    def members_of(self, level: str, element: Hashable) -> Set[Hashable]:
        """Base key values under a hierarchy element."""
        if self.hierarchy is None:
            raise SchemaError(
                f"dimension {self.name!r} has no hierarchy"
            )
        return self.hierarchy.base_members(level, element)

    def __repr__(self) -> str:
        return f"Dimension({self.name!r}, key={self.key!r})"


class FactTable:
    """The fact table plus its foreign-key wiring.

    Parameters
    ----------
    table:
        The backing table.
    foreign_keys:
        Mapping from fact column name to the dimension it references.
    """

    def __init__(
        self, table: Table, foreign_keys: Dict[str, Dimension]
    ) -> None:
        for column_name in foreign_keys:
            if column_name not in table:
                raise SchemaError(
                    f"fact table {table.name!r} has no column "
                    f"{column_name!r}"
                )
        self.table = table
        self.foreign_keys = dict(foreign_keys)

    @property
    def name(self) -> str:
        return self.table.name

    def dimension_for(self, column_name: str) -> Dimension:
        try:
            return self.foreign_keys[column_name]
        except KeyError:
            raise SchemaError(
                f"column {column_name!r} is not a foreign key of "
                f"{self.name!r}"
            ) from None

    def __repr__(self) -> str:
        return (
            f"FactTable({self.name!r}, "
            f"foreign_keys={list(self.foreign_keys)})"
        )


class StarSchema:
    """A fact table with its dimensions.

    Provides the OLAP-flavoured resolution step used by the examples
    and benchmarks: turn "hierarchy element ``X`` at level ``L`` of
    dimension ``D``" into the IN-list of foreign-key values to select
    on the fact table.
    """

    def __init__(self, fact: FactTable) -> None:
        self.fact = fact
        self.dimensions: Dict[str, Dimension] = {
            dim.name: dim for dim in fact.foreign_keys.values()
        }

    def dimension(self, name: str) -> Dimension:
        try:
            return self.dimensions[name]
        except KeyError:
            raise SchemaError(f"unknown dimension {name!r}") from None

    def fact_column_for(self, dimension_name: str) -> str:
        """The fact-table column referencing the named dimension."""
        for column_name, dim in self.fact.foreign_keys.items():
            if dim.name == dimension_name:
                return column_name
        raise SchemaError(
            f"no fact column references dimension {dimension_name!r}"
        )

    def rollup_in_list(
        self, dimension_name: str, level: str, element: Hashable
    ) -> List[Hashable]:
        """IN-list of fact foreign keys under one hierarchy element."""
        dim = self.dimension(dimension_name)
        return sorted(dim.members_of(level, element), key=str)

    def hierarchy_predicates(
        self, dimension_name: str
    ) -> List[List[Hashable]]:
        """All hierarchy-element IN-lists of a dimension.

        This is the paper's predicate set ``P`` over which a hierarchy
        encoding should be well-defined.
        """
        dim = self.dimension(dimension_name)
        if dim.hierarchy is None:
            raise SchemaError(
                f"dimension {dimension_name!r} has no hierarchy"
            )
        return dim.hierarchy.selection_predicates()

    def __repr__(self) -> str:
        return (
            f"StarSchema(fact={self.fact.name!r}, "
            f"dimensions={list(self.dimensions)})"
        )
