"""Word-level helpers shared by the bitmap implementations.

The helpers here operate on raw numpy ``uint64`` arrays so that both the
uncompressed :class:`~repro.bitmap.bitvector.BitVector` and the
run-length compressed :class:`~repro.bitmap.rle.RunLengthBitmap` can
reuse them.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np
from repro.errors import InvalidArgumentError

WORD_BITS = 64
_FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)

#: True when numpy provides a native population count (numpy >= 2.0).
HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

_LUT16: Optional[np.ndarray] = None


def _popcount_lut16() -> np.ndarray:
    """Lazily built 64 KiB table: set-bit count of every 16-bit value."""
    global _LUT16
    if _LUT16 is None:
        lut8 = (
            np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1)
            .sum(axis=1)
            .astype(np.uint8)
        )
        values = np.arange(1 << 16, dtype=np.uint32)
        _LUT16 = (lut8[values >> 8] + lut8[values & 0xFF]).astype(np.uint8)
    return _LUT16


def packed_length(nbits: int) -> int:
    """Number of 64-bit words needed to hold ``nbits`` bits."""
    if nbits < 0:
        raise InvalidArgumentError(f"negative bit length: {nbits}")
    return (nbits + WORD_BITS - 1) // WORD_BITS


def tail_mask(nbits: int) -> np.uint64:
    """Mask selecting the valid bits of the final word of an
    ``nbits``-bit vector.  Returns a full word when ``nbits`` is a
    multiple of 64 (or zero)."""
    rem = nbits % WORD_BITS
    if rem == 0:
        return _FULL_WORD
    return np.uint64((1 << rem) - 1)


def popcount_words(words: np.ndarray) -> int:
    """Total number of set bits across a ``uint64`` array.

    Uses the native ``np.bitwise_count`` on numpy >= 2.0 (one vectorised
    pass, no intermediate expansion) and otherwise the 16-bit lookup
    table — both far cheaper than the historical ``np.unpackbits``
    detour, which materialised 64 bytes per word.  The legacy path is
    kept as :func:`popcount_words_unpackbits` so the benchmark suite
    can record the win.
    """
    if words.size == 0:
        return 0
    if HAS_BITWISE_COUNT:
        return int(np.bitwise_count(words).sum())
    return popcount_words_lut16(words)


def popcount_words_lut16(words: np.ndarray) -> int:
    """Portable popcount via a 16-bit lookup table (numpy < 2.0 path)."""
    if words.size == 0:
        return 0
    return int(_popcount_lut16()[words.view(np.uint16)].sum(dtype=np.int64))


def popcount_words_unpackbits(words: np.ndarray) -> int:
    """The pre-optimisation popcount, retained as a bench baseline."""
    if words.size == 0:
        return 0
    return int(np.unpackbits(words.view(np.uint8)).sum())


def _require_same_length(vectors: Sequence) -> int:
    from repro.errors import InvalidArgumentError, LengthMismatchError

    first = len(vectors[0])
    for vec in vectors[1:]:
        if len(vec) != first:
            raise LengthMismatchError(first, len(vec))
    return first


def and_all(vectors: Sequence) -> "BitVector":
    """AND together one or more :class:`BitVector` instances."""
    from repro.bitmap.bitvector import BitVector

    if not vectors:
        raise InvalidArgumentError("and_all() requires at least one vector")
    nbits = _require_same_length(vectors)
    words = vectors[0].words.copy()
    for vec in vectors[1:]:
        np.bitwise_and(words, vec.words, out=words)
    return BitVector._from_words(words, nbits)


def or_all(vectors: Sequence) -> "BitVector":
    """OR together one or more :class:`BitVector` instances."""
    from repro.bitmap.bitvector import BitVector

    if not vectors:
        raise InvalidArgumentError("or_all() requires at least one vector")
    nbits = _require_same_length(vectors)
    words = vectors[0].words.copy()
    for vec in vectors[1:]:
        np.bitwise_or(words, vec.words, out=words)
    return BitVector._from_words(words, nbits)


def xor_all(vectors: Sequence) -> "BitVector":
    """XOR together one or more :class:`BitVector` instances."""
    from repro.bitmap.bitvector import BitVector

    if not vectors:
        raise InvalidArgumentError("xor_all() requires at least one vector")
    nbits = _require_same_length(vectors)
    words = vectors[0].words.copy()
    for vec in vectors[1:]:
        np.bitwise_xor(words, vec.words, out=words)
    return BitVector._from_words(words, nbits)


def words_from_bools(bits: Iterable[bool]) -> "tuple[np.ndarray, int]":
    """Pack an iterable of booleans into a word array.

    Returns ``(words, nbits)``.
    """
    bool_array = np.fromiter((1 if b else 0 for b in bits), dtype=np.uint8)
    nbits = int(bool_array.size)
    nwords = packed_length(nbits)
    padded = np.zeros(nwords * WORD_BITS, dtype=np.uint8)
    padded[:nbits] = bool_array
    words = np.packbits(padded, bitorder="little").view(np.uint64)
    return words.copy(), nbits
