"""Fixed-length bit vector packed into 64-bit words.

``BitVector`` is the unit of storage for every bitmap index in this
library.  The paper measures query cost in "bitmap vectors accessed";
this class is the object being counted.  Bits are addressed little
endian within each word: bit ``j`` of the vector lives in word
``j // 64`` at position ``j % 64``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

import numpy as np

from repro.bitmap.ops import (
    WORD_BITS,
    packed_length,
    popcount_words,
    tail_mask,
    words_from_bools,
)
from repro.errors import InvalidArgumentError, LengthMismatchError


class BitVector:
    """A fixed-length sequence of bits with bulk logical operations.

    Instances are mutable in content (bits may be set/cleared/appended)
    but logical operators (``&``, ``|``, ``^``, ``~``) return new
    vectors, mirroring how a query engine combines read-only index
    vectors into a result vector.

    Parameters
    ----------
    nbits:
        Initial length of the vector.  All bits start cleared.
    """

    __slots__ = ("_words", "_nbits")

    def __init__(self, nbits: int = 0) -> None:
        if nbits < 0:
            raise InvalidArgumentError(f"negative bit length: {nbits}")
        self._nbits = nbits
        self._words = np.zeros(packed_length(nbits), dtype=np.uint64)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def _from_words(cls, words: np.ndarray, nbits: int) -> "BitVector":
        """Wrap an existing word array without copying.

        The array must already be masked so that bits beyond ``nbits``
        are zero; all internal callers guarantee this.
        """
        vec = cls.__new__(cls)
        vec._words = words
        vec._nbits = nbits
        return vec

    @classmethod
    def from_bools(cls, bits: Iterable[bool]) -> "BitVector":
        """Build a vector from an iterable of booleans."""
        words, nbits = words_from_bools(bits)
        return cls._from_words(words, nbits)

    @classmethod
    def from_indices(cls, indices: Iterable[int], nbits: int) -> "BitVector":
        """Build an ``nbits`` vector with the given positions set."""
        vec = cls(nbits)
        idx = np.fromiter(indices, dtype=np.int64)
        if idx.size:
            if idx.min() < 0 or idx.max() >= nbits:
                raise IndexError("bit index out of range")
            word_idx = idx // WORD_BITS
            bit_idx = (idx % WORD_BITS).astype(np.uint64)
            np.bitwise_or.at(
                vec._words, word_idx, np.uint64(1) << bit_idx
            )
        return vec

    @classmethod
    def ones(cls, nbits: int) -> "BitVector":
        """Build an ``nbits`` vector with every bit set."""
        vec = cls(nbits)
        vec._words[:] = np.uint64(0xFFFFFFFFFFFFFFFF)
        vec._mask_tail()
        return vec

    @classmethod
    def concat(cls, vectors: Iterable["BitVector"]) -> "BitVector":
        """Concatenate vectors end to end into one new vector.

        Fast path: when every vector but the last is word-aligned
        (a multiple of 64 bits — how :mod:`repro.shard` sizes its
        row-range partitions), the word arrays are concatenated
        directly.  Otherwise the boolean masks are joined, which is
        still a bulk numpy operation.

        >>> left = BitVector.from_bools([True, False])
        >>> right = BitVector.from_bools([True])
        >>> BitVector.concat([left, right]).to_bitstring()
        '101'
        """
        parts = list(vectors)
        if not parts:
            return cls(0)
        if len(parts) == 1:
            return parts[0].copy()
        nbits = sum(part._nbits for part in parts)
        if all(part._nbits % WORD_BITS == 0 for part in parts[:-1]):
            words = np.concatenate([part._words for part in parts])
            return cls._from_words(words, nbits)
        mask = np.concatenate([part.to_mask() for part in parts])
        return cls.from_mask(mask)

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "BitVector":
        """Build a vector from a numpy boolean array."""
        mask = np.asarray(mask, dtype=bool)
        nbits = int(mask.size)
        nwords = packed_length(nbits)
        padded = np.zeros(nwords * WORD_BITS, dtype=np.uint8)
        padded[:nbits] = mask
        words = np.packbits(padded, bitorder="little").view(np.uint64)
        return cls._from_words(words.copy(), nbits)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def words(self) -> np.ndarray:
        """The underlying ``uint64`` word array (read-mostly)."""
        return self._words

    def __len__(self) -> int:
        return self._nbits

    def __getitem__(self, j: int) -> bool:
        self._check_index(j)
        word = self._words[j // WORD_BITS]
        return bool((int(word) >> (j % WORD_BITS)) & 1)

    def __setitem__(self, j: int, value: bool) -> None:
        self._check_index(j)
        mask = np.uint64(1) << np.uint64(j % WORD_BITS)
        if value:
            self._words[j // WORD_BITS] |= mask
        else:
            self._words[j // WORD_BITS] &= ~mask

    def __iter__(self) -> Iterator[bool]:
        # Expand word-at-a-time via unpackbits rather than testing one
        # bit per __getitem__ call; ~30x faster on long vectors.
        for bit in self.to_mask():
            yield bool(bit)

    def iter_set_bits(self) -> Iterator[int]:
        """Positions of set bits, ascending, skipping zero words.

        Streams without materialising the full boolean mask: only
        non-zero words are visited, and set bits are extracted per
        word with the usual lowest-set-bit trick.  Use
        :meth:`indices` when a materialised array is acceptable.
        """
        words = self._words
        for word_index in np.nonzero(words)[0]:
            base = int(word_index) * WORD_BITS
            word = int(words[word_index])
            while word:
                low = word & -word
                yield base + low.bit_length() - 1
                word ^= low

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._nbits == other._nbits and bool(
            np.array_equal(self._words, other._words)
        )

    def __hash__(self) -> int:
        return hash((self._nbits, self._words.tobytes()))

    def __repr__(self) -> str:
        if self._nbits <= 64:
            bits = "".join("1" if b else "0" for b in self)
            return f"BitVector({bits!r})"
        return f"BitVector(nbits={self._nbits}, count={self.count()})"

    def _check_index(self, j: int) -> None:
        if not 0 <= j < self._nbits:
            raise IndexError(
                f"bit index {j} out of range for length {self._nbits}"
            )

    def _mask_tail(self) -> None:
        if self._words.size:
            self._words[-1] &= tail_mask(self._nbits)

    def _check_same_length(self, other: "BitVector") -> None:
        if self._nbits != other._nbits:
            raise LengthMismatchError(self._nbits, other._nbits)

    # ------------------------------------------------------------------
    # logical operations (return new vectors)
    # ------------------------------------------------------------------
    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        return BitVector._from_words(self._words & other._words, self._nbits)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        return BitVector._from_words(self._words | other._words, self._nbits)

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        return BitVector._from_words(self._words ^ other._words, self._nbits)

    def __invert__(self) -> "BitVector":
        # ~self._words already yields a fresh array; wrap it directly
        # (one allocation) and re-mask the tail bits it flipped.
        inverted = BitVector._from_words(~self._words, self._nbits)
        inverted._mask_tail()
        return inverted

    def __iand__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        np.bitwise_and(self._words, other._words, out=self._words)
        return self

    def __ior__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        np.bitwise_or(self._words, other._words, out=self._words)
        return self

    def __ixor__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        np.bitwise_xor(self._words, other._words, out=self._words)
        return self

    def andnot(self, other: "BitVector") -> "BitVector":
        """``self AND (NOT other)`` without materialising the negation."""
        self._check_same_length(other)
        return BitVector._from_words(
            self._words & ~other._words, self._nbits
        )

    def iandnot(self, other: "BitVector") -> "BitVector":
        """In-place ``self &= ~other`` without a ``BitVector`` temporary.

        The negated-literal workhorse of ``evaluate_dnf``: accumulating
        a term touches only word arrays, never intermediate vectors.
        """
        self._check_same_length(other)
        np.bitwise_and(self._words, ~other._words, out=self._words)
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def count(self) -> int:
        """Number of set bits (population count)."""
        return popcount_words(self._words)

    def any(self) -> bool:
        """True if at least one bit is set."""
        return bool(np.any(self._words))

    def all(self) -> bool:
        """True if every bit (of the logical length) is set."""
        if self._nbits == 0:
            return True
        full = np.uint64(0xFFFFFFFFFFFFFFFF)
        if self._words.size > 1 and not np.all(self._words[:-1] == full):
            return False
        return self._words[-1] == tail_mask(self._nbits)

    def density(self) -> float:
        """Fraction of set bits; the paper's (1 - sparsity)."""
        if self._nbits == 0:
            return 0.0
        return self.count() / self._nbits

    def sparsity(self) -> float:
        """Fraction of clear bits, as used in the paper's Section 3.1."""
        return 1.0 - self.density()

    def indices(self) -> np.ndarray:
        """Positions of set bits, ascending, as an int64 array."""
        return np.nonzero(self.to_mask())[0]

    def to_mask(self) -> np.ndarray:
        """Expand to a numpy boolean array of length ``len(self)``."""
        bits = np.unpackbits(
            self._words.view(np.uint8), bitorder="little"
        )
        return bits[: self._nbits].astype(bool)

    def to_bitstring(self) -> str:
        """Render as a '0'/'1' string, bit 0 first."""
        return "".join("1" if b else "0" for b in self)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def append(self, value: bool) -> None:
        """Append one bit at the end, growing the vector by one."""
        j = self._nbits
        self.resize(j + 1)
        if value:
            self[j] = True

    def extend(self, bits: Iterable[bool]) -> None:
        """Append each bit of ``bits`` in order."""
        for bit in bits:
            self.append(bit)

    def resize(self, nbits: int) -> None:
        """Grow or shrink to ``nbits`` bits.

        New bits are cleared; when shrinking, truncated bits are
        discarded and the tail is re-masked.
        """
        if nbits < 0:
            raise InvalidArgumentError(f"negative bit length: {nbits}")
        nwords = packed_length(nbits)
        if nwords != self._words.size:
            resized = np.zeros(nwords, dtype=np.uint64)
            keep = min(nwords, self._words.size)
            resized[:keep] = self._words[:keep]
            self._words = resized
        self._nbits = nbits
        self._mask_tail()

    def clear(self) -> None:
        """Clear every bit, keeping the length."""
        self._words[:] = 0

    def copy(self) -> "BitVector":
        """Deep copy."""
        return BitVector._from_words(self._words.copy(), self._nbits)

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Bytes of packed storage, i.e. ``len(self)/8`` rounded to words."""
        return int(self._words.nbytes)


def select_rows(vector: BitVector) -> List[int]:
    """Row ids selected by a result vector, as a plain list."""
    return [int(j) for j in vector.indices()]
