"""Word-aligned (WAH-style) run compression over packed bit vectors.

:class:`WordAlignedBitmap` stores a bit vector as a sequence of
word-aligned *segments*: runs of all-zero words (``FILL_ZERO``), runs of
all-one words (``FILL_ONE``), and blocks of verbatim *literal* words
(``LITERAL``).  Every segment costs one 64-bit header word in the
serialized form and every literal word costs one more, so
:meth:`WordAlignedBitmap.nbytes` is the honest on-disk size — the
space axis of the compression bench's space×speed frontier.

This is the representation the Lemire/Kaser sorting papers target:
after the fact table is reordered (``repro.shard.reorder``) the bit
planes of an encoded bitmap index collapse into long fills, and the
logical operators here (``&``, ``|``, ``~``) run segment-at-a-time —
fill runs are combined in O(1) per segment while literal blocks fall
back to vectorised word operations, never bit-at-a-time loops.

Unlike :class:`~repro.bitmap.rle.RunLengthBitmap` (bit-granular runs,
kept for the per-value compressed index), this format is word-aligned
so it can feed the compiled kernels directly: see
:class:`repro.kernels.runs.CompressedPlaneSet`.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.bitmap.bitvector import BitVector
from repro.bitmap.ops import (
    WORD_BITS,
    packed_length,
    popcount_words,
    tail_mask,
)
from repro.errors import InvalidArgumentError, LengthMismatchError

#: Segment kinds.
FILL_ZERO = 0
FILL_ONE = 1
LITERAL = 2

_FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)

#: ``(kind, word_count, literal_offset)``; the offset indexes into the
#: bitmap's shared literal word array for LITERAL segments and is -1
#: for fills.
Segment = Tuple[int, int, int]

_OP_AND = 0
_OP_OR = 1


class _SegmentWriter:
    """Accumulates canonical segments during a merge.

    Adjacent segments of the same kind coalesce, and a literal chunk
    that turns out to be uniformly zero/one (an AND of disjoint
    literals, say) is demoted to a fill so intermediate results stay
    canonical and keep their short-circuit potential.
    """

    __slots__ = ("segments", "chunks", "literal_words")

    def __init__(self) -> None:
        self.segments: List[List[int]] = []
        self.chunks: List[np.ndarray] = []
        self.literal_words = 0

    def fill(self, kind: int, count: int) -> None:
        if count <= 0:
            return
        if self.segments and self.segments[-1][0] == kind:
            self.segments[-1][1] += count
        else:
            self.segments.append([kind, count, -1])

    def literal(self, chunk: np.ndarray) -> None:
        count = int(chunk.shape[0])
        if count == 0:
            return
        # Demote uniform chunks to fills (canonical form).
        if not chunk.any():
            self.fill(FILL_ZERO, count)
            return
        if bool(np.all(chunk == _FULL_WORD)):
            self.fill(FILL_ONE, count)
            return
        self.chunks.append(chunk)
        if self.segments and self.segments[-1][0] == LITERAL:
            self.segments[-1][1] += count
        else:
            self.segments.append([LITERAL, count, self.literal_words])
        self.literal_words += count

    def finish(self, nbits: int) -> "WordAlignedBitmap":
        if self.chunks:
            literals = np.concatenate(self.chunks)
        else:
            literals = np.zeros(0, dtype=np.uint64)
        segments = tuple(
            (kind, count, offset) for kind, count, offset in self.segments
        )
        return WordAlignedBitmap(segments, literals, nbits)


class WordAlignedBitmap:
    """An immutable bit vector compressed into word-aligned runs.

    Build one from packed words or a :class:`BitVector`; combine with
    ``&``/``|``/``~``.  Negation flips fills and complements literal
    words in one pass — like :class:`repro.kernels.planes.PlaneSet`,
    the bits beyond ``nbits`` in the final word are left as garbage
    and masking happens once on the final materialised result.
    """

    __slots__ = ("nbits", "nwords", "_segments", "_literals")

    def __init__(
        self,
        segments: Tuple[Segment, ...],
        literals: np.ndarray,
        nbits: int,
    ) -> None:
        if nbits < 0:
            raise InvalidArgumentError(f"negative bit length: {nbits}")
        covered = sum(count for _, count, _ in segments)
        nwords = packed_length(nbits)
        if covered != nwords:
            raise InvalidArgumentError(
                f"segments cover {covered} words, expected {nwords}"
            )
        literal_total = sum(
            count for kind, count, _ in segments if kind == LITERAL
        )
        if literal_total != int(literals.shape[0]):
            raise InvalidArgumentError(
                f"literal array holds {int(literals.shape[0])} words, "
                f"segments reference {literal_total}"
            )
        self.nbits = nbits
        self.nwords = nwords
        self._segments = segments
        self._literals = literals

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_words(cls, words: np.ndarray, nbits: int) -> "WordAlignedBitmap":
        """Compress a packed ``uint64`` word array.

        Classification is fully vectorised: each word is tagged
        zero-fill / one-fill / literal in one pass and run boundaries
        come from a single ``diff`` — no per-bit work.
        """
        words = np.ascontiguousarray(words, dtype=np.uint64)
        nwords = packed_length(nbits)
        if int(words.shape[0]) != nwords:
            raise InvalidArgumentError(
                f"word array holds {int(words.shape[0])} words, "
                f"expected {nwords} for {nbits} bits"
            )
        if nwords == 0:
            return cls((), np.zeros(0, dtype=np.uint64), nbits)
        kinds = np.full(nwords, LITERAL, dtype=np.int8)
        kinds[words == np.uint64(0)] = FILL_ZERO
        kinds[words == _FULL_WORD] = FILL_ONE
        change = np.flatnonzero(kinds[1:] != kinds[:-1]) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), change))
        ends = np.concatenate((change, np.array([nwords], dtype=np.int64)))
        segments: List[Segment] = []
        chunks: List[np.ndarray] = []
        offset = 0
        for lo, hi in zip(starts.tolist(), ends.tolist()):
            kind = int(kinds[lo])
            count = hi - lo
            if kind == LITERAL:
                segments.append((LITERAL, count, offset))
                chunks.append(words[lo:hi])
                offset += count
            else:
                segments.append((kind, count, -1))
        if chunks:
            literals = np.concatenate(chunks) if len(chunks) > 1 else chunks[0].copy()
        else:
            literals = np.zeros(0, dtype=np.uint64)
        return cls(tuple(segments), literals, nbits)

    @classmethod
    def from_bitvector(cls, vector: BitVector) -> "WordAlignedBitmap":
        """Compress a :class:`BitVector` (its tail bits are clean)."""
        return cls.from_words(vector.words, len(vector))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def segments(self) -> Tuple[Segment, ...]:
        """The ``(kind, word_count, literal_offset)`` segment tuples."""
        return self._segments

    def runs(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(kind, word_count)`` runs without decompressing."""
        for kind, count, _ in self._segments:
            yield kind, count

    def run_count(self) -> int:
        return len(self._segments)

    def literal_word_count(self) -> int:
        return int(self._literals.shape[0])

    def nbytes(self) -> int:
        """Serialized size: one word per segment header plus one word
        per literal word (see :meth:`tokens`)."""
        return 8 * (len(self._segments) + int(self._literals.shape[0]))

    def is_zero(self) -> bool:
        """True when no bit is set (canonical forms only)."""
        if not self._segments:
            return True
        return len(self._segments) == 1 and self._segments[0][0] == FILL_ZERO

    def is_ones_words(self) -> bool:
        """True when every *word* is a one-fill.  Note this speaks in
        word space: a negated bitmap carries garbage tail bits, so this
        is a short-circuit test, not a statement about ``count()``."""
        if not self._segments:
            return False
        return len(self._segments) == 1 and self._segments[0][0] == FILL_ONE

    def count(self) -> int:
        """Number of set bits within the logical length."""
        ones = 0
        for kind, count, offset in self._segments:
            if kind == FILL_ONE:
                ones += count * WORD_BITS
            elif kind == LITERAL:
                ones += popcount_words(self._literals[offset : offset + count])
        if self.nwords and self.nbits % WORD_BITS:
            last = self.word_at(self.nwords - 1)
            ones -= int(last).bit_count()
            ones += int(last & int(tail_mask(self.nbits))).bit_count()
        return ones

    def word_at(self, index: int) -> int:
        """The packed word at word-index ``index`` (decompressing only
        the containing segment's header)."""
        if not 0 <= index < self.nwords:
            raise InvalidArgumentError(
                f"word {index} out of range for {self.nwords} words"
            )
        pos = 0
        for kind, count, offset in self._segments:
            if index < pos + count:
                if kind == FILL_ZERO:
                    return 0
                if kind == FILL_ONE:
                    return int(_FULL_WORD)
                return int(self._literals[offset + (index - pos)])
            pos += count
        raise AssertionError("unreachable: segments cover all words")

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def to_words(self) -> np.ndarray:
        """Decompress into a fresh packed word array (tail unmasked)."""
        out = np.zeros(self.nwords, dtype=np.uint64)
        pos = 0
        for kind, count, offset in self._segments:
            if kind == FILL_ONE:
                out[pos : pos + count] = _FULL_WORD
            elif kind == LITERAL:
                out[pos : pos + count] = self._literals[offset : offset + count]
            pos += count
        return out

    def to_bitvector(self) -> BitVector:
        """Decompress into a :class:`BitVector` (tail masked)."""
        out = self.to_words()
        if self.nwords:
            out[-1] &= tail_mask(self.nbits)
        return BitVector._from_words(out, self.nbits)

    # ------------------------------------------------------------------
    # logical operators (segment-at-a-time)
    # ------------------------------------------------------------------
    def _merge(
        self, other: "WordAlignedBitmap", op: int
    ) -> "WordAlignedBitmap":
        if self.nbits != other.nbits:
            raise LengthMismatchError(self.nbits, other.nbits)
        writer = _SegmentWriter()
        segs_a = self._segments
        segs_b = other._segments
        ia = ib = 0
        done_a = done_b = 0  # words consumed within the current segment
        while ia < len(segs_a) and ib < len(segs_b):
            kind_a, count_a, off_a = segs_a[ia]
            kind_b, count_b, off_b = segs_b[ib]
            step = min(count_a - done_a, count_b - done_b)
            if op == _OP_AND:
                if kind_a == FILL_ZERO or kind_b == FILL_ZERO:
                    writer.fill(FILL_ZERO, step)
                elif kind_a == FILL_ONE and kind_b == FILL_ONE:
                    writer.fill(FILL_ONE, step)
                elif kind_a == FILL_ONE:
                    lo = off_b + done_b
                    writer.literal(other._literals[lo : lo + step])
                elif kind_b == FILL_ONE:
                    lo = off_a + done_a
                    writer.literal(self._literals[lo : lo + step])
                else:
                    lo_a = off_a + done_a
                    lo_b = off_b + done_b
                    writer.literal(
                        np.bitwise_and(
                            self._literals[lo_a : lo_a + step],
                            other._literals[lo_b : lo_b + step],
                        )
                    )
            else:
                if kind_a == FILL_ONE or kind_b == FILL_ONE:
                    writer.fill(FILL_ONE, step)
                elif kind_a == FILL_ZERO and kind_b == FILL_ZERO:
                    writer.fill(FILL_ZERO, step)
                elif kind_a == FILL_ZERO:
                    lo = off_b + done_b
                    writer.literal(other._literals[lo : lo + step])
                elif kind_b == FILL_ZERO:
                    lo = off_a + done_a
                    writer.literal(self._literals[lo : lo + step])
                else:
                    lo_a = off_a + done_a
                    lo_b = off_b + done_b
                    writer.literal(
                        np.bitwise_or(
                            self._literals[lo_a : lo_a + step],
                            other._literals[lo_b : lo_b + step],
                        )
                    )
            done_a += step
            done_b += step
            if done_a == count_a:
                ia += 1
                done_a = 0
            if done_b == count_b:
                ib += 1
                done_b = 0
        return writer.finish(self.nbits)

    def __and__(self, other: "WordAlignedBitmap") -> "WordAlignedBitmap":
        return self._merge(other, _OP_AND)

    def __or__(self, other: "WordAlignedBitmap") -> "WordAlignedBitmap":
        return self._merge(other, _OP_OR)

    def __invert__(self) -> "WordAlignedBitmap":
        """Complement: fills flip kind, literal words invert.

        Bits beyond ``nbits`` become garbage (see the class docstring);
        callers mask once on the final result.
        """
        flipped = tuple(
            (
                FILL_ONE
                if kind == FILL_ZERO
                else (FILL_ZERO if kind == FILL_ONE else LITERAL),
                count,
                offset,
            )
            for kind, count, offset in self._segments
        )
        literals = np.bitwise_not(self._literals)
        return WordAlignedBitmap(flipped, literals, self.nbits)

    # ------------------------------------------------------------------
    # serialization (the token stream framed by repro.index.serialization)
    # ------------------------------------------------------------------
    def tokens(self) -> np.ndarray:
        """Serialize into a flat ``uint64`` token stream.

        Each segment contributes one header word — kind in the low two
        bits, word count shifted left by two — followed, for literal
        segments, by the literal words verbatim.  ``len(tokens) * 8``
        equals :meth:`nbytes`.
        """
        parts: List[np.ndarray] = []
        for kind, count, offset in self._segments:
            header = np.uint64(kind) | (np.uint64(count) << np.uint64(2))
            parts.append(np.array([header], dtype=np.uint64))
            if kind == LITERAL:
                parts.append(self._literals[offset : offset + count])
        if not parts:
            return np.zeros(0, dtype=np.uint64)
        return np.concatenate(parts)

    @classmethod
    def from_tokens(
        cls, tokens: np.ndarray, nbits: int
    ) -> "WordAlignedBitmap":
        """Rebuild from :meth:`tokens` output; validates coverage."""
        tokens = np.ascontiguousarray(tokens, dtype=np.uint64)
        total = int(tokens.shape[0])
        segments: List[Segment] = []
        chunks: List[np.ndarray] = []
        literal_words = 0
        pos = 0
        while pos < total:
            header = int(tokens[pos])
            pos += 1
            kind = header & 3
            count = header >> 2
            if kind not in (FILL_ZERO, FILL_ONE, LITERAL) or count <= 0:
                raise InvalidArgumentError(
                    f"malformed run header {header:#x} at token {pos - 1}"
                )
            if kind == LITERAL:
                if pos + count > total:
                    raise InvalidArgumentError(
                        "truncated literal block in run token stream"
                    )
                segments.append((LITERAL, count, literal_words))
                chunks.append(tokens[pos : pos + count])
                literal_words += count
                pos += count
            else:
                segments.append((kind, count, -1))
        if chunks:
            literals = np.concatenate(chunks).copy()
        else:
            literals = np.zeros(0, dtype=np.uint64)
        return cls(tuple(segments), literals, nbits)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"WordAlignedBitmap(nbits={self.nbits}, "
            f"runs={len(self._segments)}, "
            f"literal_words={int(self._literals.shape[0])})"
        )
