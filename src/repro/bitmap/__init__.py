"""Bit-vector substrate.

This package provides the storage primitive of the whole library: the
:class:`~repro.bitmap.bitvector.BitVector`, a fixed-length vector of
bits packed into 64-bit words (numpy ``uint64``), together with bulk
logical operations and a run-length compressed variant used for the
sparsity experiments.
"""

from repro.bitmap.bitvector import BitVector
from repro.bitmap.ops import (
    and_all,
    or_all,
    xor_all,
    popcount_words,
    packed_length,
)
from repro.bitmap.rle import RunLengthBitmap
from repro.bitmap.wah import WordAlignedBitmap

__all__ = [
    "BitVector",
    "RunLengthBitmap",
    "WordAlignedBitmap",
    "and_all",
    "or_all",
    "xor_all",
    "popcount_words",
    "packed_length",
]
