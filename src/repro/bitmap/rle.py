"""Run-length compressed bitmap.

Section 4 of the paper notes run-length compression as the standard
remedy for the sparsity of *simple* bitmap indexes.  This module
implements a word-aligned hybrid (WAH-style) scheme so the sparsity
benchmarks can compare compressed simple bitmaps against (naturally
dense) encoded bitmaps.

Encoding: the bitmap is stored as a list of runs ``(bit, length)``
over the logical bit positions.  The representation is canonical:
adjacent runs always carry different bit values and no run is empty.
Logical operations are performed run-wise in a single merge pass, so
their cost is proportional to the number of runs rather than the
number of bits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, List, Tuple

import numpy as np

from repro.bitmap.bitvector import BitVector
from repro.errors import InvalidArgumentError, LengthMismatchError

if TYPE_CHECKING:
    from repro.bitmap.wah import WordAlignedBitmap

Run = Tuple[bool, int]


class RunLengthBitmap:
    """A bitmap stored as canonical runs of equal bits."""

    __slots__ = ("_runs", "_nbits")

    def __init__(self, nbits: int = 0) -> None:
        if nbits < 0:
            raise InvalidArgumentError(f"negative bit length: {nbits}")
        self._nbits = nbits
        self._runs: List[Run] = [(False, nbits)] if nbits else []

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_runs(cls, runs: Iterable[Run]) -> "RunLengthBitmap":
        """Build from ``(bit, length)`` pairs; canonicalises on entry."""
        bitmap = cls(0)
        total = 0
        canonical: List[Run] = []
        for bit, length in runs:
            if length < 0:
                raise InvalidArgumentError("negative run length")
            if length == 0:
                continue
            bit = bool(bit)
            if canonical and canonical[-1][0] == bit:
                canonical[-1] = (bit, canonical[-1][1] + length)
            else:
                canonical.append((bit, length))
            total += length
        bitmap._runs = canonical
        bitmap._nbits = total
        return bitmap

    @classmethod
    def from_bitvector(cls, vector: BitVector) -> "RunLengthBitmap":
        """Compress an uncompressed :class:`BitVector`."""
        mask = vector.to_mask()
        if mask.size == 0:
            return cls(0)
        # boundaries where the bit value changes
        change = np.nonzero(np.diff(mask.astype(np.int8)))[0] + 1
        starts = np.concatenate(([0], change))
        ends = np.concatenate((change, [mask.size]))
        runs = [
            (bool(mask[s]), int(e - s)) for s, e in zip(starts, ends)
        ]
        return cls.from_runs(runs)

    @classmethod
    def from_bools(cls, bits: Iterable[bool]) -> "RunLengthBitmap":
        return cls.from_bitvector(BitVector.from_bools(bits))

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._nbits

    @property
    def runs(self) -> List[Run]:
        """The canonical run list (copy-safe to read, do not mutate)."""
        return self._runs

    def run_count(self) -> int:
        """Number of runs — the compressed 'size' of the bitmap."""
        return len(self._runs)

    def nbytes(self) -> int:
        """Approximate compressed size.

        Each run is charged one 64-bit word (WAH fill word); this is the
        figure the sparsity bench reports.
        """
        return 8 * len(self._runs)

    def count(self) -> int:
        """Number of set bits."""
        return sum(length for bit, length in self._runs if bit)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunLengthBitmap):
            return NotImplemented
        return self._nbits == other._nbits and self._runs == other._runs

    def __hash__(self) -> int:
        return hash((self._nbits, tuple(self._runs)))

    def __repr__(self) -> str:
        return (
            f"RunLengthBitmap(nbits={self._nbits}, "
            f"runs={len(self._runs)})"
        )

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def to_bitvector(self) -> BitVector:
        """Decompress into an uncompressed :class:`BitVector`."""
        mask = np.zeros(self._nbits, dtype=bool)
        pos = 0
        for bit, length in self._runs:
            if bit:
                mask[pos : pos + length] = True
            pos += length
        return BitVector.from_mask(mask)

    def to_word_aligned(self) -> "WordAlignedBitmap":
        """Re-segment into the word-aligned (WAH) representation.

        Bit-granular runs do not land on word boundaries, so the
        bridge goes through the packed words once (O(n), vectorised)
        rather than run-by-run.  Used at save time to persist
        compressed indexes in the word-aligned token format
        (:mod:`repro.index.serialization`).
        """
        from repro.bitmap.wah import WordAlignedBitmap

        return WordAlignedBitmap.from_bitvector(self.to_bitvector())

    @classmethod
    def from_word_aligned(
        cls, bitmap: "WordAlignedBitmap"
    ) -> "RunLengthBitmap":
        """Re-segment a word-aligned bitmap into bit-granular runs."""
        return cls.from_bitvector(bitmap.to_bitvector())

    # ------------------------------------------------------------------
    # run-wise logical operations
    # ------------------------------------------------------------------
    def _merge(
        self,
        other: "RunLengthBitmap",
        op: Callable[[bool, bool], bool],
    ) -> "RunLengthBitmap":
        if self._nbits != other._nbits:
            raise LengthMismatchError(self._nbits, other._nbits)
        result: List[Run] = []
        i = j = 0
        left_remaining = right_remaining = 0
        left_bit = right_bit = False
        while True:
            if left_remaining == 0:
                if i >= len(self._runs):
                    break
                left_bit, left_remaining = self._runs[i]
                i += 1
            if right_remaining == 0:
                right_bit, right_remaining = other._runs[j]
                j += 1
            step = min(left_remaining, right_remaining)
            bit = op(left_bit, right_bit)
            if result and result[-1][0] == bit:
                result[-1] = (bit, result[-1][1] + step)
            else:
                result.append((bit, step))
            left_remaining -= step
            right_remaining -= step
        merged = RunLengthBitmap(0)
        merged._runs = result
        merged._nbits = self._nbits
        return merged

    def __and__(self, other: "RunLengthBitmap") -> "RunLengthBitmap":
        return self._merge(other, lambda a, b: a and b)

    def __or__(self, other: "RunLengthBitmap") -> "RunLengthBitmap":
        return self._merge(other, lambda a, b: a or b)

    def __xor__(self, other: "RunLengthBitmap") -> "RunLengthBitmap":
        return self._merge(other, lambda a, b: a != b)

    def __invert__(self) -> "RunLengthBitmap":
        inverted = RunLengthBitmap(0)
        inverted._runs = [(not bit, length) for bit, length in self._runs]
        inverted._nbits = self._nbits
        return inverted

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def append(self, value: bool) -> None:
        """Append one bit at the logical end."""
        value = bool(value)
        if self._runs and self._runs[-1][0] == value:
            bit, length = self._runs[-1]
            self._runs[-1] = (bit, length + 1)
        else:
            self._runs.append((value, 1))
        self._nbits += 1
