"""TPC-D-like workload (Section 3.2 of the paper).

The paper's only use of TPC-D is the observation that 12 of the 17
query classes involve range search (Q1, Q3-Q10, Q12, Q14, Q16), which
motivates optimising range searches.  Since the TPC-D data and query
text are not redistributable, this module ships:

* the 17 query classes with the paper's range/point classification,
* a synthetic star schema shaped like TPC-D's LINEITEM core
  (order-date, discount, quantity, part, supplier, nation columns),
* a per-class predicate generator producing selections of the same
  *shape* (range vs point, typical selectivity) against that schema.

The reproduced claim is the range-share statistic and the
workload-weighted index comparison, neither of which needs the
proprietary data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.query.predicates import Equals, InList, Predicate
from repro.table.table import Table
from repro.workload.generators import uniform_column, zipf_column
from repro.errors import InvalidArgumentError


@dataclass(frozen=True)
class TpcdQueryClass:
    """One TPC-D query class, reduced to its selection shape."""

    name: str
    involves_range: bool
    #: fact column the dominant selection touches
    column: str
    #: typical fraction of the column's domain a range selection spans
    range_fraction: float = 0.1


#: The 17 TPC-D query classes with the paper's classification:
#: "from 17 query types, 12 query types involve range search.  (They
#: are Q1, Q3, Q4, Q5, Q6, Q7, Q8, Q9, Q10, Q12, Q14 and Q16.)"
TPCD_QUERY_CLASSES: Tuple[TpcdQueryClass, ...] = (
    TpcdQueryClass("Q1", True, "ship_date", 0.30),
    TpcdQueryClass("Q2", False, "part"),
    TpcdQueryClass("Q3", True, "order_date", 0.15),
    TpcdQueryClass("Q4", True, "order_date", 0.08),
    TpcdQueryClass("Q5", True, "order_date", 0.15),
    TpcdQueryClass("Q6", True, "discount", 0.25),
    TpcdQueryClass("Q7", True, "ship_date", 0.30),
    TpcdQueryClass("Q8", True, "order_date", 0.30),
    TpcdQueryClass("Q9", True, "order_date", 1.00),
    TpcdQueryClass("Q10", True, "order_date", 0.08),
    TpcdQueryClass("Q11", False, "supplier"),
    TpcdQueryClass("Q12", True, "ship_date", 0.15),
    TpcdQueryClass("Q13", False, "clerk"),
    TpcdQueryClass("Q14", True, "ship_date", 0.03),
    TpcdQueryClass("Q15", False, "supplier"),
    TpcdQueryClass("Q16", True, "quantity", 0.20),
    TpcdQueryClass("Q17", False, "part"),
)


def range_query_share() -> Tuple[int, int]:
    """(range classes, total classes) — the paper's 12 of 17."""
    ranges = sum(1 for qc in TPCD_QUERY_CLASSES if qc.involves_range)
    return ranges, len(TPCD_QUERY_CLASSES)


#: Cardinalities for the synthetic fact columns (scaled-down TPC-D).
DEFAULT_CARDINALITIES: Dict[str, int] = {
    "order_date": 365,
    "ship_date": 365,
    "discount": 11,
    "quantity": 50,
    "part": 200,
    "supplier": 100,
    "clerk": 100,
}


def build_tpcd_schema(
    n: int = 5000,
    cardinalities: Optional[Dict[str, int]] = None,
    seed: int = 0,
) -> Table:
    """A synthetic LINEITEM-like fact table.

    Dates are uniform day numbers, quantities/discounts uniform,
    part/supplier/clerk Zipf-skewed (real dimension references skew).
    """
    cards = dict(DEFAULT_CARDINALITIES)
    if cardinalities:
        cards.update(cardinalities)
    columns = {
        "order_date": uniform_column(n, cards["order_date"], seed=seed),
        "ship_date": uniform_column(n, cards["ship_date"], seed=seed + 1),
        "discount": uniform_column(n, cards["discount"], seed=seed + 2),
        "quantity": uniform_column(
            n, cards["quantity"], seed=seed + 3, base=1
        ),
        "part": zipf_column(n, cards["part"], seed=seed + 4),
        "supplier": zipf_column(n, cards["supplier"], seed=seed + 5),
        "clerk": zipf_column(n, cards["clerk"], seed=seed + 6),
    }
    table = Table("lineitem", list(columns))
    for i in range(n):
        table.append({name: values[i] for name, values in columns.items()})
    return table


def generate_query(
    query_class: TpcdQueryClass,
    table: Table,
    rng: random.Random,
) -> Predicate:
    """A predicate with the class's shape against the synthetic fact.

    Range classes produce a contiguous IN-list spanning
    ``range_fraction`` of the column's domain; point classes produce a
    single-value selection.
    """
    column = table.column(query_class.column)
    domain = sorted(column.distinct_values())
    if not domain:
        raise InvalidArgumentError(
            f"column {query_class.column!r} has no values"
        )
    if not query_class.involves_range:
        return Equals(query_class.column, rng.choice(domain))
    delta = max(1, int(round(query_class.range_fraction * len(domain))))
    delta = min(delta, len(domain))
    start = rng.randint(0, len(domain) - delta)
    return InList(query_class.column, domain[start : start + delta])


def generate_workload(
    table: Table,
    queries_per_class: int = 5,
    seed: int = 0,
) -> List[Tuple[TpcdQueryClass, Predicate]]:
    """One full workload: N queries from each of the 17 classes."""
    rng = random.Random(seed)
    workload: List[Tuple[TpcdQueryClass, Predicate]] = []
    for query_class in TPCD_QUERY_CLASSES:
        for _ in range(queries_per_class):
            workload.append(
                (query_class, generate_query(query_class, table, rng))
            )
    return workload
