"""OLAP session workloads: roll-ups and drill-downs along hierarchies.

Section 2.3: "One essential operation of OLAP is the manipulation
along dimensions, e.g., roll-ups/drill-downs ... All these operations
are based on selections on dimensions, or on dimension elements".
This module generates *sessions* — sequences of hierarchy-element
selections produced by walking up and down a dimension hierarchy the
way an analyst would — as the workload for the hierarchy-encoding
benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

from repro.encoding.hierarchy import Hierarchy
from repro.query.predicates import InList, Predicate
from repro.errors import InvalidArgumentError


@dataclass(frozen=True)
class OlapStep:
    """One step of an OLAP session."""

    operation: str  # "select", "rollup", "drilldown", "sibling"
    level: str
    element: Hashable
    predicate: Predicate


def _element_predicate(
    hierarchy: Hierarchy, column: str, level: str, element: Hashable
) -> Predicate:
    members = sorted(
        hierarchy.base_members(level, element), key=str
    )
    return InList(column, members)


def generate_session(
    hierarchy: Hierarchy,
    column: str,
    length: int = 10,
    seed: Optional[int] = 0,
) -> List[OlapStep]:
    """A random but realistic analyst session.

    Starts from a random element of the top level, then repeatedly
    drills down into a member, rolls back up, or moves to a sibling —
    each step emitting the base-level IN-list selection the paper says
    these operations reduce to.
    """
    if length < 1:
        raise InvalidArgumentError("session length must be >= 1")
    levels = hierarchy.level_names
    if not levels:
        raise InvalidArgumentError("hierarchy has no levels")
    rng = random.Random(seed)

    level_index = len(levels) - 1
    level = levels[level_index]
    element = rng.choice(hierarchy.elements(level))
    steps = [
        OlapStep(
            "select", level, element,
            _element_predicate(hierarchy, column, level, element),
        )
    ]
    while len(steps) < length:
        moves = ["sibling"]
        if level_index > 0:
            moves.append("drilldown")
        if level_index < len(levels) - 1:
            moves.append("rollup")
        move = rng.choice(moves)
        if move == "drilldown":
            # descend into one member of the current element
            members = sorted(
                hierarchy.members(level, element), key=str
            )
            element = rng.choice(members)
            level_index -= 1
            level = levels[level_index]
        elif move == "rollup":
            # ascend to some parent containing the current element
            level_index += 1
            level = levels[level_index]
            parents = [
                candidate
                for candidate in hierarchy.elements(level)
                if element in hierarchy.members(level, candidate)
            ]
            element = (
                rng.choice(parents)
                if parents
                else rng.choice(hierarchy.elements(level))
            )
        else:  # sibling
            element = rng.choice(hierarchy.elements(level))
        steps.append(
            OlapStep(
                move, level, element,
                _element_predicate(hierarchy, column, level, element),
            )
        )
    return steps


def session_predicates(
    steps: Sequence[OlapStep],
) -> List[Predicate]:
    """Just the selections of a session, in order."""
    return [step.predicate for step in steps]


def level_visit_counts(
    steps: Sequence[OlapStep],
) -> dict:
    """How often each hierarchy level was visited (session profile)."""
    counts: dict = {}
    for step in steps:
        counts[step.level] = counts.get(step.level, 0) + 1
    return counts
