"""Synthetic data generators.

Deterministic (seeded) generators for the value distributions the
benchmarks need: uniform, Zipf-skewed (for the Wu & Yu range-bitmap
comparison, which targets skewed high-cardinality attributes),
sequential, and clustered.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.table.table import Table
from repro.errors import InvalidArgumentError


def uniform_column(
    n: int, cardinality: int, seed: int = 0, base: int = 0
) -> List[int]:
    """``n`` values drawn uniformly from ``base .. base+cardinality-1``."""
    rng = random.Random(seed)
    high = base + cardinality - 1
    return [rng.randint(base, high) for _ in range(n)]


def zipf_column(
    n: int,
    cardinality: int,
    skew: float = 1.2,
    seed: int = 0,
    base: int = 0,
) -> List[int]:
    """``n`` values from a truncated Zipf over ``cardinality`` ranks.

    Rank 1 is the most frequent value.  ``skew`` is the Zipf exponent;
    larger means more skew.
    """
    if cardinality < 1:
        raise InvalidArgumentError("cardinality must be >= 1")
    ranks = np.arange(1, cardinality + 1, dtype=float)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    rng = np.random.default_rng(seed)
    draws = rng.choice(cardinality, size=n, p=weights)
    return [base + int(d) for d in draws]


def sequential_column(n: int, cardinality: int, base: int = 0) -> List[int]:
    """Round-robin values — every value equally frequent, clustered runs."""
    return [base + (i % cardinality) for i in range(n)]


def clustered_column(
    n: int, cardinality: int, run_length: int = 16, seed: int = 0, base: int = 0
) -> List[int]:
    """Values arriving in runs (sorted-ingest pattern common in DWs)."""
    rng = random.Random(seed)
    values: List[int] = []
    while len(values) < n:
        value = base + rng.randrange(cardinality)
        run = min(run_length, n - len(values))
        values.extend([value] * run)
    return values


def build_table(
    name: str,
    n: int,
    columns: Dict[str, Sequence[Any]],
) -> Table:
    """Assemble a :class:`Table` from pre-generated column values."""
    for col_name, values in columns.items():
        if len(values) != n:
            raise InvalidArgumentError(
                f"column {col_name!r} has {len(values)} values, "
                f"expected {n}"
            )
    table = Table(name, list(columns))
    for i in range(n):
        table.append({col: values[i] for col, values in columns.items()})
    return table
