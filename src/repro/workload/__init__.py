"""Synthetic workloads: data generators, query generators, TPC-D-like."""

from repro.workload.generators import (
    uniform_column,
    zipf_column,
    sequential_column,
    clustered_column,
    build_table,
)
from repro.workload.queries import (
    random_in_list,
    contiguous_range,
    point_query,
    query_mix,
)
from repro.workload.olap import (
    OlapStep,
    generate_session,
    level_visit_counts,
    session_predicates,
)
from repro.workload.tpcd import (
    TPCD_QUERY_CLASSES,
    TpcdQueryClass,
    range_query_share,
    build_tpcd_schema,
    generate_query,
)

__all__ = [
    "uniform_column",
    "zipf_column",
    "sequential_column",
    "clustered_column",
    "build_table",
    "random_in_list",
    "contiguous_range",
    "point_query",
    "query_mix",
    "TPCD_QUERY_CLASSES",
    "TpcdQueryClass",
    "range_query_share",
    "build_tpcd_schema",
    "generate_query",
    "OlapStep",
    "generate_session",
    "level_visit_counts",
    "session_predicates",
]
