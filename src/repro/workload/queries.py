"""Random selection-predicate generators.

Used by the empirical Figure 9 benches: ``contiguous_range`` produces
the delta-wide range searches whose cost the paper plots, and
``query_mix`` produces a point/range blend matching a configurable
range share (e.g. the TPC-D 12/17).
"""

from __future__ import annotations

import random
from typing import Any, List, Sequence

from repro.query.predicates import Equals, InList, Predicate
from repro.errors import InvalidArgumentError


def point_query(
    column: str, domain: Sequence[Any], rng: random.Random
) -> Equals:
    """A single-value selection (the paper's Q1)."""
    return Equals(column, rng.choice(list(domain)))


def random_in_list(
    column: str,
    domain: Sequence[Any],
    delta: int,
    rng: random.Random,
) -> InList:
    """An IN-list of ``delta`` random domain values."""
    values = rng.sample(list(domain), min(delta, len(domain)))
    return InList(column, values)


def contiguous_range(
    column: str,
    domain: Sequence[Any],
    delta: int,
    rng: random.Random,
) -> InList:
    """An IN-list of ``delta`` *consecutive* domain values.

    Consecutive in sort order — the paper's range search of interval
    size delta, expressed as an IN-list so any index can serve it.
    """
    ordered = sorted(domain)
    delta = min(delta, len(ordered))
    start = rng.randint(0, len(ordered) - delta)
    return InList(column, ordered[start : start + delta])


def query_mix(
    column: str,
    domain: Sequence[Any],
    count: int,
    range_share: float = 12 / 17,
    delta: int = 8,
    seed: int = 0,
) -> List[Predicate]:
    """A point/range blend with the given range-search share."""
    if not 0.0 <= range_share <= 1.0:
        raise InvalidArgumentError("range_share must be within [0, 1]")
    rng = random.Random(seed)
    queries: List[Predicate] = []
    for _ in range(count):
        if rng.random() < range_share:
            queries.append(contiguous_range(column, domain, delta, rng))
        else:
            queries.append(point_query(column, domain, rng))
    return queries
