"""repro — Encoded Bitmap Indexing for Data Warehouses.

A full reproduction of Wu & Buchmann, *Encoded Bitmap Indexing for
Data Warehouses* (ICDE 1998): the encoded bitmap index itself, the
encoding theory (chains, prime chains, well-defined encodings), the
Section 2.3 applications (hierarchy / total-order / range-based
encodings, group-set indexes), every comparator index the paper
discusses, and the analytical cost models of Sections 2.1 and 3.

Quickstart — the :class:`Database` facade fronts the whole stack
(tables, indexes, planned/parallel execution, persistence, fsck)::

    from repro import Database, InList

    db = Database()
    db.create_table(
        "sales",
        {"product": ["a", "b", "c", "a", "b", "a"]},
        partitions=2,
    )
    db.create_index("sales", "product")
    result = db.query("sales", InList("product", ["a", "b"]))
    print(result.row_ids())        # row ids with product in {a, b}
    print(result.cost.vectors_accessed)   # bitmap vectors read

The individual layers (:class:`Table`, :class:`EncodedBitmapIndex`,
:class:`Executor`, …) stay importable for direct use; see
``docs/api.md``.
"""

from repro._version import __version__
from repro.bitmap import BitVector, RunLengthBitmap
from repro.boolean import (
    Implicant,
    ReducedFunction,
    minimal_support,
    reduce_values,
)
from repro.encoding import (
    MappingTable,
    VOID,
    NULL,
    binary_distance,
    find_chain,
    find_prime_chain,
    is_chain,
    is_prime_chain,
    is_well_defined,
    encode_for_predicates,
    Hierarchy,
    hierarchy_encoding,
    bit_slice_encoding,
    order_preserving_encoding,
    partition_from_predicates,
    range_encoding,
)
from repro.table import Table, Column, Catalog, Dimension, FactTable, StarSchema
from repro.index import (
    EncodedBitmapIndex,
    SimpleBitmapIndex,
    BPlusTreeIndex,
    ProjectionIndex,
    BitSlicedIndex,
    ValueListIndex,
    DynamicBitmapIndex,
    RangeBitmapIndex,
    HybridBitmapBTreeIndex,
    GroupSetIndex,
)
from repro.query import (
    Equals,
    InList,
    Range,
    IsNull,
    AndPredicate,
    OrPredicate,
    NotPredicate,
)
from repro.query.executor import Executor, QueryResult
from repro.query.options import QueryOptions
from repro.query.planner import Plan, Planner
from repro.database import Database
from repro.serving import (
    QuotaManager,
    ResultCache,
    Server,
    ServerStats,
    SyntheticWorkload,
)
from repro.shard import (
    ParallelExecutor,
    PartitionedIndex,
    PartitionedQueryResult,
    PartitionedTable,
)
from repro.index.compressed import CompressedBitmapIndex
from repro.index.join_index import BitmapJoinIndex
from repro.index.paged import PagedEncodedBitmapIndex, PagedSimpleBitmapIndex
from repro.encoding.reencoding import evaluate_reencoding, apply_reencoding
from repro.encoding.mining import encoding_from_history, mine_workload
from repro.aggregate import (
    count,
    count_distinct,
    sum_bitsliced,
    sum_encoded,
    average_bitsliced,
    average_encoded,
    median,
    ntile_boundaries,
)

__all__ = [
    "__version__",
    # bitmap
    "BitVector",
    "RunLengthBitmap",
    # boolean
    "Implicant",
    "ReducedFunction",
    "reduce_values",
    "minimal_support",
    # encoding
    "MappingTable",
    "VOID",
    "NULL",
    "binary_distance",
    "find_chain",
    "find_prime_chain",
    "is_chain",
    "is_prime_chain",
    "is_well_defined",
    "encode_for_predicates",
    "Hierarchy",
    "hierarchy_encoding",
    "bit_slice_encoding",
    "order_preserving_encoding",
    "partition_from_predicates",
    "range_encoding",
    # tables
    "Table",
    "Column",
    "Catalog",
    "Dimension",
    "FactTable",
    "StarSchema",
    # indexes
    "EncodedBitmapIndex",
    "SimpleBitmapIndex",
    "BPlusTreeIndex",
    "ProjectionIndex",
    "BitSlicedIndex",
    "ValueListIndex",
    "DynamicBitmapIndex",
    "RangeBitmapIndex",
    "HybridBitmapBTreeIndex",
    "GroupSetIndex",
    # query
    "Equals",
    "InList",
    "Range",
    "IsNull",
    "AndPredicate",
    "OrPredicate",
    "NotPredicate",
    "Executor",
    "QueryOptions",
    "QueryResult",
    "Plan",
    "Planner",
    # facade + partition-parallel engine
    "Database",
    "ParallelExecutor",
    "PartitionedIndex",
    "PartitionedQueryResult",
    "PartitionedTable",
    # serving tier
    "QuotaManager",
    "ResultCache",
    "Server",
    "ServerStats",
    "SyntheticWorkload",
    # extensions (paper Section 5 future work)
    "CompressedBitmapIndex",
    "BitmapJoinIndex",
    "PagedEncodedBitmapIndex",
    "PagedSimpleBitmapIndex",
    "evaluate_reencoding",
    "apply_reencoding",
    "encoding_from_history",
    "mine_workload",
    "count",
    "count_distinct",
    "sum_bitsliced",
    "sum_encoded",
    "average_bitsliced",
    "average_encoded",
    "median",
    "ntile_boundaries",
]
