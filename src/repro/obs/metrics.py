"""Unified metrics registry: counters, gauges and histograms.

One registry unifies the accounting that used to be scattered across
the read path — evaluator vector reads, pager physical I/O, buffer
pool hits/misses/evictions, retry attempts — so a query (or a bench)
can snapshot *everything* at once and report a single delta.

Design constraints, in priority order:

1. **Cheap when off.**  :data:`NULL_REGISTRY` hands out no-op
   instruments so instrumented code pays one attribute lookup and an
   empty call.  Hot loops (the evaluator's per-vector accesses) are
   *never* instrumented per event; they aggregate locally (e.g. in
   :class:`~repro.boolean.evaluator.AccessCounter`) and publish once
   per evaluation.
2. **Hierarchical.**  A registry may have a *parent*; increments
   propagate upward.  Per-pager :class:`~repro.storage.stats.IOStatistics`
   keeps its isolated counters while the process-wide registry (from
   :func:`get_registry`) still sees the totals — which is what makes
   per-query deltas possible without threading a registry through
   every constructor.
3. **Scoped reads.**  :meth:`MetricsRegistry.scoped` snapshots the
   registry and computes the delta later — the per-query metrics
   attached to :class:`~repro.query.executor.QueryResult`.

Example::

    >>> registry = MetricsRegistry()
    >>> reads = registry.counter("evaluator.vector_reads")
    >>> reads.inc()
    >>> reads.inc(2)
    >>> registry.value("evaluator.vector_reads")
    3
    >>> with registry.scoped() as scope:
    ...     reads.inc(5)
    >>> scope.metrics
    {'evaluator.vector_reads': 5}
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, Mapping, Optional, Union

from repro.errors import InvalidArgumentError

MetricValue = Union[int, float]


class Counter:
    """A monotonically increasing count.

    When bound to a parent counter (see
    :class:`MetricsRegistry(parent=...) <MetricsRegistry>`) every
    increment also flows upward, so process-lifetime totals and
    isolated sub-registries stay consistent by construction.
    """

    __slots__ = ("name", "value", "_parent")

    def __init__(self, name: str, parent: Optional["Counter"] = None) -> None:
        self.name = name
        self.value: int = 0
        self._parent = parent

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1), propagating to the parent."""
        self.value += amount
        if self._parent is not None:
            self._parent.inc(amount)

    def set_raw(self, value: int) -> None:
        """Set the local value *without* parent propagation.

        Used for seeding snapshots and for :meth:`MetricsRegistry.reset`
        — a reset of a sub-registry must not subtract from
        process-lifetime totals.
        """
        self.value = value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (last write wins, no parent semantics)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Aggregate distribution summary: count / total / min / max.

    Deliberately bucket-free — the quantities observed here (stage
    wall-clock, retry backoff) are reported as totals and extremes in
    ``BENCH_*.json``; full distributions would bloat the schema for no
    analytical gain.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "_parent")

    def __init__(self, name: str, parent: Optional["Histogram"] = None) -> None:
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._parent = parent

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if self._parent is not None:
            self._parent.observe(value)

    def mean(self) -> float:
        """Average observed value (0.0 when nothing was observed)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, total={self.total})"


class MetricsScope:
    """A snapshot-delta window over one registry.

    Usable as a context manager; after exit (or an explicit
    :meth:`finish`) the ``metrics`` attribute holds the flat
    name → value delta, with zero entries dropped.
    """

    __slots__ = ("_registry", "_before", "metrics")

    def __init__(self, registry: "MetricsRegistry") -> None:
        self._registry = registry
        self._before = registry.snapshot()
        self.metrics: Dict[str, MetricValue] = {}

    def finish(self) -> Dict[str, MetricValue]:
        """Compute (and remember) the delta since the scope opened."""
        self.metrics = self._registry.delta(self._before)
        return self.metrics

    def __enter__(self) -> "MetricsScope":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.finish()


class MetricsRegistry:
    """Named counters/gauges/histograms with snapshot-delta support.

    Parameters
    ----------
    parent:
        Optional registry that receives every counter increment and
        histogram observation recorded here (gauges stay local —
        "last write wins" has no meaningful aggregate).
    """

    def __init__(self, parent: Optional["MetricsRegistry"] = None) -> None:
        self._parent = parent
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # instrument accessors (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on demand)."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_name(name)
            parent = (
                self._parent.counter(name)
                if self._parent is not None
                else None
            )
            instrument = Counter(name, parent=parent)
            self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on demand)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_name(name)
            instrument = Gauge(name)
            self._gauges[name] = instrument
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on demand)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_name(name)
            parent = (
                self._parent.histogram(name)
                if self._parent is not None
                else None
            )
            instrument = Histogram(name, parent=parent)
            self._histograms[name] = instrument
        return instrument

    def _check_name(self, name: str) -> None:
        if not name:
            raise InvalidArgumentError("metric name must be non-empty")
        in_counters = name in self._counters
        in_gauges = name in self._gauges
        in_histograms = name in self._histograms
        if in_counters or in_gauges or in_histograms:
            raise InvalidArgumentError(
                f"metric {name!r} already registered with a different kind"
            )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def value(self, name: str) -> MetricValue:
        """Current value of a counter or gauge (0 when absent)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return 0

    def collect(self) -> Dict[str, MetricValue]:
        """Flatten every instrument into a ``name -> value`` mapping.

        Histograms expand into ``<name>.count`` / ``<name>.total`` /
        ``<name>.min`` / ``<name>.max`` entries.
        """
        flat: Dict[str, MetricValue] = {}
        for name, counter in self._counters.items():
            flat[name] = counter.value
        for name, gauge in self._gauges.items():
            flat[name] = gauge.value
        for name, histogram in self._histograms.items():
            flat[f"{name}.count"] = histogram.count
            flat[f"{name}.total"] = histogram.total
            if histogram.minimum is not None:
                flat[f"{name}.min"] = histogram.minimum
            if histogram.maximum is not None:
                flat[f"{name}.max"] = histogram.maximum
        return flat

    def snapshot(self) -> Dict[str, MetricValue]:
        """Alias of :meth:`collect` — a frozen view for later deltas."""
        return self.collect()

    def delta(
        self, before: Mapping[str, MetricValue]
    ) -> Dict[str, MetricValue]:
        """What changed since ``before`` (a :meth:`snapshot`).

        Counters and histogram count/total entries subtract; gauges
        and histogram extremes report their current value.  Zero (or
        unchanged-gauge) entries are dropped so per-query metric dicts
        stay small.
        """
        current = self.collect()
        changed: Dict[str, MetricValue] = {}
        for name, value in current.items():
            previous = before.get(name, 0)
            if name.endswith((".min", ".max")) or name in self._gauges:
                if value != previous:
                    changed[name] = value
                continue
            diff = value - previous
            if diff:
                changed[name] = diff
        return changed

    def scoped(self) -> MetricsScope:
        """Open a snapshot-delta window (see :class:`MetricsScope`)."""
        return MetricsScope(self)

    def reset(self) -> None:
        """Zero every local instrument.

        Parent registries are untouched: a reset clears *this* window
        of accounting without rewriting process-lifetime history.
        """
        for counter in self._counters.values():
            counter.set_raw(0)
        for gauge in self._gauges.values():
            gauge.value = 0.0
        for histogram in self._histograms.values():
            histogram.count = 0
            histogram.total = 0.0
            histogram.minimum = None
            histogram.maximum = None

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, "
            f"histograms={len(self._histograms)})"
        )


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


class NullRegistry(MetricsRegistry):
    """A registry whose instruments do nothing.

    Install it with :func:`set_registry` (or pass it explicitly) to
    strip metric accounting from a hot path; see the overhead bound in
    ``docs/observability.md``.
    """

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str) -> Histogram:
        return self._null_histogram

    def collect(self) -> Dict[str, MetricValue]:
        return {}


#: Shared process-wide no-op registry.
NULL_REGISTRY = NullRegistry()

#: The process-wide default registry; components fall back to it when
#: no registry is passed explicitly.
_GLOBAL_REGISTRY: MetricsRegistry = MetricsRegistry()

#: Per-thread registry override (see :func:`use_registry`).  The
#: partition-parallel executor installs a private registry in each
#: worker thread so concurrent partitions never interleave increments
#: on the same (non-atomic) :class:`Counter`; the merged per-partition
#: deltas are then summed deterministically in partition order.
_THREAD_LOCAL = threading.local()


def get_registry() -> MetricsRegistry:
    """The current registry: the calling thread's override when one is
    installed (see :func:`use_registry`), else the process-wide default
    (see :func:`set_registry`)."""
    override: Optional[MetricsRegistry] = getattr(
        _THREAD_LOCAL, "registry", None
    )
    if override is not None:
        return override
    return _GLOBAL_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide default.

    Returns the previous registry so callers can restore it.  Note
    that sub-registries (e.g. per-pager
    :class:`~repro.storage.stats.IOStatistics`) bind their parent at
    construction time; existing instances keep publishing to the
    registry that was current when they were created.
    """
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry`` for the *calling thread*.

    The override is thread-scoped rather than process-wide so that
    concurrent partition workers (see :mod:`repro.shard.executor`) can
    each account into a private registry without racing on shared
    counters; single-threaded callers observe the same behaviour as
    the old process-wide swap.

    >>> fresh = MetricsRegistry()
    >>> with use_registry(fresh) as registry:
    ...     registry is get_registry()
    True
    """
    previous = getattr(_THREAD_LOCAL, "registry", None)
    _THREAD_LOCAL.registry = registry
    try:
        yield registry
    finally:
        _THREAD_LOCAL.registry = previous


def merge_metric_deltas(
    deltas: Iterable[Mapping[str, MetricValue]],
) -> Dict[str, MetricValue]:
    """Combine per-partition metric deltas into one deterministic view.

    Counter-style entries sum; histogram extremes (``*.min`` /
    ``*.max``) take the min/max across partitions.  Because the inputs
    are plain dicts merged in the order given (the partition order),
    the result is identical regardless of how many worker threads
    produced them — the determinism contract of the partition-parallel
    executor.

    >>> merge_metric_deltas([{"a": 1}, {"a": 2, "b.min": 0.5}])
    {'a': 3, 'b.min': 0.5}
    """
    merged: Dict[str, MetricValue] = {}
    for delta in deltas:
        for name, value in delta.items():
            if name not in merged:
                merged[name] = value
            elif name.endswith(".min"):
                merged[name] = min(merged[name], value)
            elif name.endswith(".max"):
                merged[name] = max(merged[name], value)
            else:
                merged[name] = merged[name] + value
    return merged
