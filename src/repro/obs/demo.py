"""Canned scenarios behind the ``repro explain`` CLI subcommand.

Each scenario builds a small table + catalog, poses a query, and the
CLI runs it traced, printing the plan, the per-vector access trace and
a measured-vs-model cost comparison.  Two presets:

* ``table1`` — the paper's first worked example (the Figure 1 mapping
  table: domain {a, b, c} encoded on k = 2 vectors).  The query
  ``A IN ('a', 'b')`` reduces to ``B1'`` and must read exactly one
  vector — the hand-computable ``c_e`` that
  :func:`repro.analysis.cost_models.c_e_best` predicts.
* ``demo3`` — a three-predicate conjunctive IN-list query over three
  encoded columns, the shape Section 2.1 calls *cooperative*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.analysis.cost_models import c_e_best, c_e_worst
from repro.encoding.mapping import MappingTable
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.obs.trace import QueryTrace
from repro.query.planner import Plan
from repro.query.predicates import AndPredicate, InList, Predicate
from repro.table.catalog import Catalog
from repro.table.table import Table


@dataclass
class ExplainScenario:
    """One runnable demo: a catalog, a table, and a query."""

    name: str
    description: str
    catalog: Catalog
    table: Table
    predicate: Predicate


def table1_scenario() -> ExplainScenario:
    """The paper's first mapping-table example (Figure 1).

    Six rows ``a b c b a c`` over domain {a, b, c}, encoded with the
    paper's own mapping a=00, b=01, c=10 (existence kept as an
    explicit vector, as in the example itself — Theorem 2.1's encoded
    void would shift every code).
    """
    table = Table("SALES", ["A"])
    for value in ["a", "b", "c", "b", "a", "c"]:
        table.append({"A": value})
    mapping = MappingTable.from_pairs(
        [("a", 0b00), ("b", 0b01), ("c", 0b10)], width=2
    )
    catalog = Catalog()
    catalog.register_table(table)
    catalog.register_index(
        EncodedBitmapIndex(
            table,
            "A",
            encoding=mapping,
            void_mode="vector",
            null_mode="vector",
        )
    )
    return ExplainScenario(
        name="table1",
        description=(
            "Paper worked example (Figure 1 mapping table): "
            "A IN ('a','b') reduces f_a + f_b = B1'B0' + B1'B0 to B1'"
        ),
        catalog=catalog,
        table=table,
        predicate=InList("A", ["a", "b"]),
    )


def demo3_scenario() -> ExplainScenario:
    """Three-predicate conjunctive IN-list query over three columns."""
    table = Table("ORDERS", ["product", "region", "month"])
    for i in range(60):
        table.append(
            {
                "product": i % 8,
                "region": i % 4,
                "month": i % 12,
            }
        )
    catalog = Catalog()
    catalog.register_table(table)
    for column in ("product", "region", "month"):
        catalog.register_index(EncodedBitmapIndex(table, column))
    predicate = AndPredicate(
        (
            InList("product", [0, 1, 2, 3]),
            InList("region", [0, 1]),
            InList("month", [0, 1, 2, 3, 4, 5]),
        )
    )
    return ExplainScenario(
        name="demo3",
        description=(
            "Cooperative 3-predicate query: "
            "product IN (0..3) AND region IN (0,1) AND month IN (0..5)"
        ),
        catalog=catalog,
        table=table,
        predicate=predicate,
    )


SCENARIOS = {
    "table1": table1_scenario,
    "demo3": demo3_scenario,
}


def model_comparison(
    plan: Plan, trace: QueryTrace
) -> List[Dict[str, Any]]:
    """Measured-vs-model rows for every encoded-bitmap access step.

    ``measured`` is the number of distinct vectors the *reduced
    expression* read (the paper's ``c_e``); existence/NULL-vector
    accesses of the ablation modes are accounted separately by
    ``vectors_accessed``.  A step is ``OK`` when the measurement lands
    in ``[c_e_best, k]`` — between the Property 3.1 best case and the
    number of vectors that exist.
    """
    rows: List[Dict[str, Any]] = []
    for step, access in zip(plan.steps, trace.accesses):
        index = step.index
        if getattr(index, "kind", "") != "encoded-bitmap":
            continue
        column = index.table.column(index.column_name)
        m = max(2, column.cardinality())
        values = index.predicate_values(step.predicate)
        delta = max(1, min(len(values), m))
        measured = len(access.vectors)
        best = c_e_best(delta, m)
        worst = c_e_worst(m)
        width: Optional[int] = getattr(index, "width", None)
        ceiling = width if width is not None else worst
        rows.append(
            {
                "column": index.column_name,
                "m": m,
                "delta": delta,
                "k": width,
                "c_e_best": best,
                "c_e_worst": worst,
                "measured": measured,
                "status": (
                    "OK" if best <= measured <= ceiling else "DIVERGENT"
                ),
            }
        )
    return rows
