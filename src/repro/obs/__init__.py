"""repro.obs — the observability layer.

Two halves:

* :mod:`repro.obs.metrics` — a unified :class:`MetricsRegistry` of
  counters/gauges/histograms with hierarchical propagation, a no-op
  :data:`NULL_REGISTRY`, and snapshot-delta scoping (the per-query
  metrics on :class:`~repro.query.executor.QueryResult`).
* :mod:`repro.obs.trace` — per-query :class:`QueryTrace` objects
  recording the reduced expressions, the vectors read and why, cache
  hits, degraded fallbacks and per-stage wall/CPU time.

The metrics catalog (every counter name, what increments it, and the
paper quantity it corresponds to) lives in ``docs/observability.md``.
"""

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsScope,
    NullRegistry,
    get_registry,
    merge_metric_deltas,
    set_registry,
    use_registry,
)
from repro.obs.trace import (
    QueryTrace,
    StageTimer,
    StageTiming,
    VectorAccess,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "NullRegistry",
    "NULL_REGISTRY",
    "QueryTrace",
    "StageTimer",
    "StageTiming",
    "VectorAccess",
    "get_registry",
    "merge_metric_deltas",
    "set_registry",
    "use_registry",
]
