"""Per-query tracing: what the executor actually did, and why.

The paper's Section 3 argues about *counts* — how many of the ``k``
encoded vectors a reduced retrieval expression touches (``c_e``)
versus a simple bitmap's one-vector-per-value (``c_s``).  A
:class:`QueryTrace` records those counts as they happen, per access
step: the reduced Boolean expression, which vectors were read and in
which terms they appear, whether the reduction came from the cache,
degraded fallbacks, and wall/CPU time per stage.

Traces are built by :meth:`repro.query.executor.Executor.execute`
when called with ``trace=True`` and surfaced by the ``repro explain``
CLI subcommand.  They deliberately hold only plain strings and
numbers — rendering never re-touches the index.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union


@dataclass(slots=True)
class StageTiming:
    """Wall/CPU seconds spent in one named executor stage."""

    name: str
    wall_seconds: float
    cpu_seconds: float

    def describe(self) -> str:
        return (
            f"{self.name}: {self.wall_seconds * 1000:.3f} ms wall, "
            f"{self.cpu_seconds * 1000:.3f} ms cpu"
        )


class StageTimer:
    """Context manager appending a :class:`StageTiming` to a trace.

    >>> trace = QueryTrace(plan_text="SCAN T")
    >>> with StageTimer(trace, "execute"):
    ...     pass
    >>> [stage.name for stage in trace.stages]
    ['execute']
    """

    __slots__ = ("_trace", "_name", "_wall", "_cpu")

    def __init__(self, trace: Optional["QueryTrace"], name: str) -> None:
        self._trace = trace
        self._name = name
        self._wall = 0.0
        self._cpu = 0.0

    def __enter__(self) -> "StageTimer":
        self._wall = time.perf_counter()
        self._cpu = time.process_time()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._trace is not None:
            self._trace.stages.append(
                StageTiming(
                    name=self._name,
                    wall_seconds=time.perf_counter() - self._wall,
                    cpu_seconds=time.process_time() - self._cpu,
                )
            )


@dataclass(slots=True)
class VectorAccess:
    """One access step: a leaf predicate served by one index.

    ``vectors`` holds the distinct bitmap-vector ids actually read;
    ``roles`` explains *why* each one was touched — the reduced-DNF
    terms it appears in (empty for non-bitmap indexes).
    """

    index_kind: str
    column: str
    predicate: str
    vectors: Tuple[int, ...] = ()
    width: Optional[int] = None
    reduced: Optional[str] = None
    cache_hit: Optional[bool] = None
    vectors_accessed: int = 0
    node_accesses: int = 0
    rows_checked: int = 0
    estimated_cost: Optional[float] = None
    roles: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    #: Partition id when the access ran inside one partition of a
    #: partition-parallel query (see :mod:`repro.shard.executor`);
    #: ``None`` for unpartitioned execution.
    partition: Optional[int] = None

    def describe(self) -> List[str]:
        where = (
            f" [partition {self.partition}]"
            if self.partition is not None
            else ""
        )
        lines = [
            f"{self.index_kind}({self.column}) <- {self.predicate}{where}"
        ]
        if self.reduced is not None:
            suffix = ""
            if self.cache_hit is not None:
                suffix = (
                    "  [reduction cache hit]"
                    if self.cache_hit
                    else "  [reduced now]"
                )
            lines.append(f"  reduced expression: {self.reduced}{suffix}")
        if self.width is not None:
            lines.append(
                f"  vectors touched: {len(self.vectors)} of k={self.width}"
            )
        for vector_id in self.vectors:
            terms = self.roles.get(vector_id, ())
            why = f" in {', '.join(terms)}" if terms else ""
            lines.append(f"    B{vector_id}{why}")
        counts = [f"vectors={self.vectors_accessed}"]
        if self.node_accesses:
            counts.append(f"nodes={self.node_accesses}")
        if self.rows_checked:
            counts.append(f"rows={self.rows_checked}")
        cost = ", ".join(counts)
        if self.estimated_cost is not None:
            cost += f"  (planner estimate {self.estimated_cost:.1f})"
        lines.append(f"  cost: {cost}")
        return lines


@dataclass(slots=True)
class QueryTrace:
    """Everything observed while executing one query."""

    plan_text: str
    stages: List[StageTiming] = field(default_factory=list)
    accesses: List[VectorAccess] = field(default_factory=list)
    used_scan: bool = False
    degraded: bool = False
    metrics: Dict[str, Union[int, float]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def vector_reads(self) -> int:
        """Total distinct-vector reads across all access steps.

        This is the measured query cost in the paper's unit — the
        quantity compared against the
        :mod:`repro.analysis.cost_models` predictions.
        """
        return sum(access.vectors_accessed for access in self.accesses)

    def render(self, metrics: Optional[Mapping[str, object]] = None) -> str:
        """Human-readable multi-line trace report."""
        lines = ["TRACE"]
        if self.used_scan:
            label = "degraded fallback" if self.degraded else "fallback"
            lines.append(f"  table scan ({label})")
        for i, access in enumerate(self.accesses, 1):
            head, *rest = access.describe()
            lines.append(f"  step {i}: {head}")
            lines.extend("  " + line for line in rest)
        lines.append(f"  total vector reads: {self.vector_reads()}")
        for stage in self.stages:
            lines.append(f"  stage {stage.describe()}")
        shown = metrics if metrics is not None else self.metrics
        if shown:
            lines.append("  metrics:")
            for name in sorted(shown):
                lines.append(f"    {name} = {shown[name]}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
