"""``QueryOptions`` — the one way to configure a query.

Before the serving tier landed, every per-call knob travelled as its
own bare keyword argument (``workers=``, ``trace=``) scattered across
:meth:`repro.database.Database.query`, ``query_many``, ``explain`` and
the partition-parallel executor — and each new knob (tenant ids,
timeouts, the process-pool backend, the result cache) would have
widened every one of those signatures again.  ``QueryOptions`` folds
the whole per-call surface into a single keyword-only dataclass; the
old bare keywords remain as :class:`DeprecationWarning` shims for
external callers (see :func:`resolve_options`), and ebilint rule
EBI207 keeps in-repo code off the shims so the deprecation period can
actually end.

Example::

    >>> opts = QueryOptions(workers=2, tenant="acme")
    >>> opts.workers, opts.tenant
    (2, 'acme')
    >>> QueryOptions(trace=True).replace(use_cache=True).trace
    True
"""

from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from typing import Any, Iterator, List, Mapping, Optional

from repro.errors import InvalidArgumentError

#: Execution backends the partition-parallel executor understands.
BACKENDS = ("thread", "process")

#: Per-call keywords the pre-``QueryOptions`` API accepted; still
#: honoured as deprecated shims by the query entry points.
LEGACY_QUERY_KWARGS = ("workers", "trace")


@dataclass(frozen=True)
class QueryOptions:
    """Keyword-only bundle of every per-query knob.

    Parameters
    ----------
    workers:
        Worker count for partition-parallel execution; ``None`` uses
        the executor's default.
    trace:
        Attach a :class:`~repro.obs.trace.QueryTrace` to the result.
        Traced queries bypass the result cache (a cached trace would
        describe work that did not happen) and always run on the
        thread backend.
    backend:
        ``"thread"`` (default) or ``"process"`` — the latter runs
        partitions on a :class:`~repro.shard.process.ProcessPoolStrategy`
        worker pool, escaping the GIL for the pure-Python planning and
        reduction work.
    use_kernels:
        Per-query override of the compiled-kernel path: ``None``
        keeps each index's own setting, ``False`` forces the legacy
        tree walk for this query only (ablation runs).
    timeout_seconds:
        Deadline for the call.  Enforced between partition futures by
        the parallel executor and across queue wait + execution by
        :class:`repro.serving.Server`; a plain single-table query
        checks it only before starting.
    snapshot_rows:
        Consistency pin: evaluate against the first ``snapshot_rows``
        rows only, as :func:`repro.query.snapshot.pinned_rows` would.
        ``None`` pins nothing (plain reads see the live table).
    tenant:
        Workload-accounting identity.  Stamped onto the result and
        used by the serving tier for quotas and per-tenant metrics.
    use_cache:
        Serve from / fill the database's result cache (keyed on the
        canonicalised retrieval expression; see
        :class:`repro.serving.result_cache.ResultCache`).
    prefetch:
        Out-of-core pipelining (``docs/out_of_core.md``): when a
        :class:`~repro.shard.residency.ResidencyManager` is attached,
        the streaming executor warms the next partition's spilled
        plane file while the current one evaluates.  ``None`` (the
        default) enables it whenever residency is managed; ``False``
        disables the prefetch for this query (ablation: measures raw
        fault-in latency); ``True`` is an explicit request and
        behaves like ``None``.
    """

    workers: Optional[int] = None
    trace: bool = False
    backend: str = "thread"
    use_kernels: Optional[bool] = None
    timeout_seconds: Optional[float] = None
    snapshot_rows: Optional[int] = None
    tenant: Optional[str] = None
    use_cache: bool = False
    prefetch: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise InvalidArgumentError(
                f"worker count must be >= 1, got {self.workers}"
            )
        if self.backend not in BACKENDS:
            raise InvalidArgumentError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{BACKENDS}"
            )
        if (
            self.timeout_seconds is not None
            and self.timeout_seconds <= 0
        ):
            raise InvalidArgumentError(
                f"timeout_seconds must be > 0, got "
                f"{self.timeout_seconds}"
            )
        if self.snapshot_rows is not None and self.snapshot_rows < 0:
            raise InvalidArgumentError(
                f"snapshot_rows must be >= 0, got {self.snapshot_rows}"
            )

    def replace(self, **changes: Any) -> "QueryOptions":
        """A copy with the given fields changed (validation re-runs)."""
        return replace(self, **changes)


#: The default options — what a bare ``db.query(table, predicate)``
#: runs with.
DEFAULT_OPTIONS = QueryOptions()

_OPTION_FIELDS = frozenset(f.name for f in fields(QueryOptions))


def resolve_options(
    options: Optional[QueryOptions],
    legacy: Mapping[str, Any],
    *,
    where: str,
    stacklevel: int = 3,
) -> QueryOptions:
    """Fold deprecated bare keywords into a :class:`QueryOptions`.

    ``legacy`` is the ``**kwargs`` dict a shimmed entry point
    collected.  Known legacy keys (:data:`LEGACY_QUERY_KWARGS`) raise
    a :class:`DeprecationWarning` naming the replacement; unknown keys
    raise :class:`~repro.errors.InvalidArgumentError` immediately.
    Passing both ``options=`` and a legacy keyword is rejected — a
    call must be all-new or all-old, never a merge whose precedence
    the reader has to guess.
    """
    if not legacy:
        return options if options is not None else DEFAULT_OPTIONS
    unknown = sorted(set(legacy) - _OPTION_FIELDS)
    if unknown:
        raise InvalidArgumentError(
            f"{where}() got unexpected keyword argument(s) "
            f"{', '.join(map(repr, unknown))}; supported options are "
            f"the QueryOptions fields {sorted(_OPTION_FIELDS)}"
        )
    if options is not None:
        raise InvalidArgumentError(
            f"{where}() got both options= and the deprecated bare "
            f"keyword(s) {sorted(legacy)}; pass everything via "
            "options=QueryOptions(...)"
        )
    warnings.warn(
        f"{where}({', '.join(sorted(legacy))}=...) is deprecated; "
        f"pass options=QueryOptions({', '.join(sorted(legacy))}=...) "
        "instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return QueryOptions(**dict(legacy))


# ---------------------------------------------------------------------
# per-query compiled-kernel override
# ---------------------------------------------------------------------
_kernel_local = threading.local()


def _override_stack() -> List[bool]:
    stack: Optional[List[bool]] = getattr(_kernel_local, "stack", None)
    if stack is None:
        stack = []
        _kernel_local.stack = stack
    return stack


@contextmanager
def kernel_override(value: Optional[bool]) -> Iterator[None]:
    """Thread-locally force the kernel path on or off.

    ``None`` is a no-op (indexes keep their own ``use_kernels``
    setting).  Overrides nest; the innermost wins.  The executors wrap
    per-partition work in this so ``QueryOptions.use_kernels``
    propagates into worker threads.
    """
    if value is None:
        yield
        return
    stack = _override_stack()
    stack.append(bool(value))
    try:
        yield
    finally:
        stack.pop()


def kernel_override_value() -> Optional[bool]:
    """The calling thread's innermost override, or ``None``."""
    stack = getattr(_kernel_local, "stack", None)
    if not stack:
        return None
    return bool(stack[-1])


__all__ = [
    "BACKENDS",
    "DEFAULT_OPTIONS",
    "LEGACY_QUERY_KWARGS",
    "QueryOptions",
    "kernel_override",
    "kernel_override_value",
    "resolve_options",
]
