"""Selection predicate AST.

Covers the paper's query classes: single-value selection (Q1-style),
IN-lists and conventional ranges (both called "range searches" in the
paper), NULL tests, and Boolean combinations — the combinations are
where bitmap *cooperativity* (Section 2.1) pays off.

Each leaf predicate names a column; ``matches`` gives the reference
semantics used by scans and by property tests that compare index
results against a naive scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Optional, Tuple


class Predicate:
    """Base class for selection predicates."""

    def matches(self, row: dict) -> bool:
        """Reference semantics on a materialised row."""
        raise NotImplementedError

    def columns(self) -> FrozenSet[str]:
        """Columns referenced by the predicate."""
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return AndPredicate((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return OrPredicate((self, other))

    def __invert__(self) -> "Predicate":
        return NotPredicate(self)


@dataclass(frozen=True)
class Equals(Predicate):
    """``column = value`` (the paper's Q1)."""

    column: str
    value: Any

    def matches(self, row: dict) -> bool:
        return row.get(self.column) == self.value

    def columns(self) -> FrozenSet[str]:
        return frozenset((self.column,))

    def __str__(self) -> str:
        return f"{self.column} = {self.value!r}"


@dataclass(frozen=True)
class InList(Predicate):
    """``column IN {v1, .., vn}`` (the paper's Q2 and Def. 2.5 form)."""

    column: str
    values: Tuple[Any, ...]

    def __init__(self, column: str, values) -> None:
        object.__setattr__(self, "column", column)
        object.__setattr__(
            self, "values", tuple(dict.fromkeys(values))
        )

    def matches(self, row: dict) -> bool:
        return row.get(self.column) in self.values

    def columns(self) -> FrozenSet[str]:
        return frozenset((self.column,))

    def __str__(self) -> str:
        rendered = ", ".join(repr(v) for v in self.values)
        return f"{self.column} IN {{{rendered}}}"


@dataclass(frozen=True)
class Range(Predicate):
    """``low <?= column <?= high`` with configurable openness.

    ``low=None`` / ``high=None`` leave that side unbounded.
    """

    column: str
    low: Optional[Any] = None
    high: Optional[Any] = None
    low_inclusive: bool = True
    high_inclusive: bool = True

    def matches(self, row: dict) -> bool:
        value = row.get(self.column)
        if value is None:
            return False
        if self.low is not None:
            if self.low_inclusive:
                if value < self.low:
                    return False
            elif value <= self.low:
                return False
        if self.high is not None:
            if self.high_inclusive:
                if value > self.high:
                    return False
            elif value >= self.high:
                return False
        return True

    def columns(self) -> FrozenSet[str]:
        return frozenset((self.column,))

    def __str__(self) -> str:
        left = "" if self.low is None else (
            f"{self.low} {'<=' if self.low_inclusive else '<'} "
        )
        right = "" if self.high is None else (
            f" {'<=' if self.high_inclusive else '<'} {self.high}"
        )
        return f"{left}{self.column}{right}"


@dataclass(frozen=True)
class IsNull(Predicate):
    """``column IS NULL``."""

    column: str

    def matches(self, row: dict) -> bool:
        return row.get(self.column) is None

    def columns(self) -> FrozenSet[str]:
        return frozenset((self.column,))

    def __str__(self) -> str:
        return f"{self.column} IS NULL"


@dataclass(frozen=True)
class NotPredicate(Predicate):
    """Logical negation."""

    operand: Predicate

    def matches(self, row: dict) -> bool:
        return not self.operand.matches(row)

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


@dataclass(frozen=True)
class AndPredicate(Predicate):
    """Conjunction of two or more predicates."""

    operands: Tuple[Predicate, ...]

    def matches(self, row: dict) -> bool:
        return all(op.matches(row) for op in self.operands)

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for operand in self.operands:
            result |= operand.columns()
        return result

    def __str__(self) -> str:
        return " AND ".join(f"({op})" for op in self.operands)


@dataclass(frozen=True)
class OrPredicate(Predicate):
    """Disjunction of two or more predicates."""

    operands: Tuple[Predicate, ...]

    def matches(self, row: dict) -> bool:
        return any(op.matches(row) for op in self.operands)

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for operand in self.operands:
            result |= operand.columns()
        return result

    def __str__(self) -> str:
        return " OR ".join(f"({op})" for op in self.operands)
