"""Index selection and access planning.

Given a predicate tree and a catalog, the planner decomposes the tree
into per-column sub-predicates, picks the estimated-cheapest index
for each, and leaves the Boolean combination to bitmap operations —
the *cooperativity* of Section 2.1 (n single-attribute bitmap indexes
replace 2^n - 1 compound B-trees).

Cost estimates use the paper's models: a simple bitmap pays one
vector per selected value (``c_s = delta``); an encoded bitmap pays at
most ``ceil(log2 m)`` (``c_e``); a B-tree pays its height per probed
key plus scanned leaves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from typing import TYPE_CHECKING

from repro.errors import PlanningError
from repro.query.optimizer import normalize_predicate
from repro.query.predicates import (
    AndPredicate,
    Equals,
    InList,
    IsNull,
    NotPredicate,
    OrPredicate,
    Predicate,
    Range,
)
from repro.table.catalog import Catalog
from repro.table.table import Table

if TYPE_CHECKING:
    from repro.index.base import Index


@dataclass
class AccessStep:
    """One leaf access: a predicate served by a chosen index."""

    predicate: Predicate
    index: "Index"
    estimated_cost: float

    def describe(self) -> str:
        return (
            f"{self.index.kind}({self.index.column_name}) "
            f"<- {self.predicate} [est {self.estimated_cost:.1f}]"
        )


@dataclass
class Plan:
    """An executable plan: the predicate tree plus chosen indexes."""

    table: Table
    predicate: Predicate
    steps: List[AccessStep] = field(default_factory=list)
    fallback_scan: bool = False
    #: Columns whose only supporting indexes failed fsck; when
    #: non-empty the fallback scan is a *degradation*, not a missing
    #: index, and the executor flags the result accordingly.
    degraded_columns: List[str] = field(default_factory=list)

    def describe(self) -> str:
        if self.fallback_scan:
            suffix = ""
            if self.degraded_columns:
                suffix = (
                    " [degraded index on "
                    + ", ".join(self.degraded_columns)
                    + "]"
                )
            return f"SCAN {self.table.name} WHERE {self.predicate}{suffix}"
        lines = [f"SELECT FROM {self.table.name} WHERE {self.predicate}"]
        lines.extend("  " + step.describe() for step in self.steps)
        return "\n".join(lines)

    def explain(self) -> str:
        """EXPLAIN output: the plan plus each step's reduced expression.

        Unlike a traced execution, EXPLAIN reads no bitmap vectors —
        reduced expressions are computed (or served from the reduction
        cache) from the mapping table alone, so it is safe to run
        against production-sized indexes.

        >>> from repro.index.encoded_bitmap import EncodedBitmapIndex
        >>> from repro.query.predicates import InList
        >>> from repro.table.catalog import Catalog
        >>> from repro.table.table import Table
        >>> table = Table("T", ["A"])
        >>> for value in ["a", "b", "c", "b", "a", "c"]:
        ...     _ = table.append({"A": value})
        >>> catalog = Catalog()
        >>> _ = catalog.register_table(table)
        >>> _ = catalog.register_index(EncodedBitmapIndex(table, "A"))
        >>> plan = Planner(catalog).plan(table, InList("A", ["a", "b"]))
        >>> print(plan.explain())
        QUERY PLAN
          table: T
          predicate: A IN {'a', 'b'}
          step 1: encoded-bitmap(A) <- A IN {'a', 'b'} [est 1.0]
            reduced expression: B1'B0 + B1B0'
            vectors: B0, B1 — 2 of k=2
        """
        lines = [
            "QUERY PLAN",
            f"  table: {self.table.name}",
            f"  predicate: {self.predicate}",
        ]
        if self.fallback_scan:
            if self.degraded_columns:
                lines.append(
                    "  TABLE SCAN — degraded fallback (every index on "
                    + ", ".join(self.degraded_columns)
                    + " failed fsck)"
                )
            else:
                lines.append("  TABLE SCAN — no applicable index")
            return "\n".join(lines)
        for i, step in enumerate(self.steps, 1):
            lines.append(f"  step {i}: {step.describe()}")
            lines.extend(
                "    " + line for line in _explain_reduction(step)
            )
        return "\n".join(lines)


def _explain_reduction(step: AccessStep) -> List[str]:
    """Reduction detail lines for one access step, when the chosen
    index can explain itself (currently the encoded bitmap family)."""
    explain = getattr(step.index, "explain_predicate", None)
    if explain is None:
        return []
    function = explain(step.predicate)
    if function is None:
        return []
    variables = function.variables()
    width = getattr(step.index, "width", len(variables))
    named = ", ".join(f"B{i}" for i in variables) or "none"
    return [
        f"reduced expression: {function.to_string()}",
        f"vectors: {named} — {len(variables)} of k={width}",
    ]


class Planner:
    """Chooses indexes for predicates out of a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # ------------------------------------------------------------------
    def plan(self, table: Table, predicate: Predicate) -> Plan:
        """Build a plan; falls back to a scan when no index serves.

        The predicate is normalised first (see
        :func:`repro.query.optimizer.normalize_predicate`): same-column
        OR unions of equality/IN leaves collapse into one IN-list, so
        ``A = b OR A = c`` plans — and costs — exactly like
        ``A IN {b, c}``.
        """
        predicate = normalize_predicate(predicate)
        plan = Plan(table=table, predicate=predicate)
        try:
            self._collect_steps(table, predicate, plan)
        except PlanningError:
            plan.steps.clear()
            plan.fallback_scan = True
        return plan

    def plan_many(
        self, table: Table, predicates: List[Predicate]
    ) -> List[Plan]:
        """Plan a batch of predicates against one table.

        Plans are built in input order and stay independently
        executable; planning them together lets a batch executor pair
        the list with one shared leaf cache (see
        ``Executor.execute(..., leaf_cache=...)``), so leaves counted
        by :func:`repro.query.optimizer.shared_leaf_counts` as shared
        are read once, not once per query.
        """
        return [self.plan(table, predicate) for predicate in predicates]

    def _collect_steps(
        self, table: Table, predicate: Predicate, plan: Plan
    ) -> None:
        if isinstance(predicate, (AndPredicate, OrPredicate)):
            for operand in predicate.operands:
                self._collect_steps(table, operand, plan)
            return
        if isinstance(predicate, NotPredicate):
            self._collect_steps(table, predicate.operand, plan)
            return
        columns = predicate.columns()
        if len(columns) != 1:
            raise PlanningError(
                f"leaf predicate references {len(columns)} columns"
            )
        (column,) = columns
        index = self._choose_index(table, column, predicate)
        if index is None:
            if self._has_degraded_index(table, column, predicate):
                if column not in plan.degraded_columns:
                    plan.degraded_columns.append(column)
                raise PlanningError(
                    f"only degraded indexes on {table.name}.{column}"
                )
            raise PlanningError(
                f"no index on {table.name}.{column}"
            )
        plan.steps.append(
            AccessStep(
                predicate=predicate,
                index=index,
                estimated_cost=self.estimate_cost(index, predicate),
            )
        )

    # ------------------------------------------------------------------
    def _choose_index(
        self, table: Table, column: str, predicate: Predicate
    ) -> Optional["Index"]:
        candidates = [
            index
            for index in self.catalog.indexes_on(table.name, column)
            if index.supports(predicate)
            and not getattr(index, "degraded", False)
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda index: self.estimate_cost(index, predicate),
        )

    def _has_degraded_index(
        self, table: Table, column: str, predicate: Predicate
    ) -> bool:
        """True when fsck-degraded indexes (and only those) could
        have served the predicate — the scan is then a degradation,
        not a missing index."""
        return any(
            index.supports(predicate)
            for index in self.catalog.indexes_on(table.name, column)
            if getattr(index, "degraded", False)
        )

    def estimate_cost(self, index: "Index", predicate: Predicate) -> float:
        """Paper-model cost estimate in 'accesses'."""
        column = index.table.column(index.column_name)
        m = max(1, column.cardinality())
        delta = self._selected_width(column, predicate, m)
        kind = getattr(index, "kind", "abstract")
        if kind == "simple-bitmap":
            return float(delta)  # c_s = delta
        if kind in ("encoded-bitmap", "bit-sliced", "dynamic-bitmap"):
            # Property 3.1 shape: a delta-wide selection reduces away
            # about floor(log2 delta) of the k vectors; a single value
            # needs the full k-variable minterm.
            k = max(1, math.ceil(math.log2(m)))
            return float(max(1, k - int(math.log2(max(1, delta)))))
        if kind == "btree":
            height = getattr(index, "height", 3)
            if isinstance(predicate, (Equals, IsNull)):
                return float(height)
            # range: descend once then walk leaves proportional to delta
            leaf_fraction = delta / m
            node_count = getattr(index, "node_count", m)
            return float(height + leaf_fraction * node_count)
        if kind == "range-bitmap":
            buckets = getattr(index, "bucket_count", 16)
            return float(min(delta, buckets) + 2)
        if kind == "value-list":
            return float(delta)
        if kind == "hybrid":
            return float(delta)
        if kind == "projection":
            return float(len(index.table)) / 100.0
        return float(delta)

    @staticmethod
    def _selected_width(column, predicate: Predicate, m: int) -> int:
        """The paper's delta: how many domain values are selected."""
        if isinstance(predicate, (Equals, IsNull)):
            return 1
        if isinstance(predicate, InList):
            return len(predicate.values)
        if isinstance(predicate, Range):
            values = column.distinct_values()
            return sum(
                1
                for value in values
                if predicate.matches({predicate.column: value})
            )
        return m
