"""Query layer: predicates, planning, execution, optimisation.

Predicates are imported eagerly; the planner/executor/optimizer are
loaded lazily via module ``__getattr__`` so that index modules can
import :mod:`repro.query.predicates` without creating an import cycle
(indexes need predicates, the planner needs indexes).
"""

from repro.query.predicates import (
    AndPredicate,
    Equals,
    InList,
    IsNull,
    NotPredicate,
    OrPredicate,
    Predicate,
    Range,
)

__all__ = [
    "AndPredicate",
    "Equals",
    "Executor",
    "InList",
    "IsNull",
    "NotPredicate",
    "OrPredicate",
    "Plan",
    "Planner",
    "Predicate",
    "QueryResult",
    "Range",
    "cheapest_variant",
    "collect_leaves",
    "dont_care_variants",
    "shared_leaf_counts",
]

_LAZY = {
    "Planner": ("repro.query.planner", "Planner"),
    "Plan": ("repro.query.planner", "Plan"),
    "Executor": ("repro.query.executor", "Executor"),
    "QueryResult": ("repro.query.executor", "QueryResult"),
    "dont_care_variants": ("repro.query.optimizer", "dont_care_variants"),
    "cheapest_variant": ("repro.query.optimizer", "cheapest_variant"),
    "collect_leaves": ("repro.query.optimizer", "collect_leaves"),
    "shared_leaf_counts": (
        "repro.query.optimizer",
        "shared_leaf_counts",
    ),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)
