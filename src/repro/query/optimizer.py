"""Retrieval-expression optimisation beyond plain reduction.

Footnote 3 of the paper: when selecting ``A = b OR A = c`` one may
consider both ``f_b + f_c`` *and* ``f_b + f_c + f_dontcare`` — adding
don't-care minterms can simplify the expression further (the paper's
example turns an XOR into an OR for machines without a bitwise XOR).
``dont_care_variants`` enumerates the candidate expressions and
``cheapest_variant`` picks the one touching the fewest vectors,
breaking ties by operation count.

Example (doctest) — selecting codes {1, 2} on k = 2 vectors is an XOR
(two terms), but declaring code 3 a don't-care collapses it::

    >>> from repro.query.optimizer import cheapest_variant
    >>> cheapest_variant([1, 2], width=2, dont_cares=[]).to_string()
    "B1'B0 + B1B0'"
    >>> cheapest_variant([1, 2], width=2, dont_cares=[3]).to_string()
    'B0 + B1'
"""

from __future__ import annotations

from itertools import combinations
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.boolean.reduction import ReducedFunction, reduce_values
from repro.query.predicates import (
    AndPredicate,
    Equals,
    InList,
    NotPredicate,
    OrPredicate,
    Predicate,
)

#: Cap on how many don't-care subsets are tried exhaustively.
_MAX_DC_SUBSETS = 256


def dont_care_variants(
    codes: Sequence[int],
    width: int,
    dont_cares: Sequence[int],
) -> Iterator[Tuple[Tuple[int, ...], ReducedFunction]]:
    """Yield reductions for subsets of the don't-care codes.

    Each yielded pair is ``(dc_subset_used, reduced_function)``.  The
    empty subset (no don't-cares exploited) is always included first.
    Subset enumeration is capped; when there are too many don't-cares
    only the full set and singletons are tried beyond the empty set.
    """
    dc_list = sorted(set(dont_cares) - set(codes))
    yield (), reduce_values(codes, width)

    subsets: List[Tuple[int, ...]] = []
    if 2 ** len(dc_list) <= _MAX_DC_SUBSETS:
        for size in range(1, len(dc_list) + 1):
            subsets.extend(combinations(dc_list, size))
    else:
        subsets.extend((code,) for code in dc_list)
        subsets.append(tuple(dc_list))

    for subset in subsets:
        yield subset, reduce_values(codes, width, dont_cares=subset)


def normalize_predicate(predicate: Predicate) -> Predicate:
    """Collapse same-column OR unions of Equals/InList into one leaf.

    ``A = b OR A = c`` and ``A IN {b, c}`` select the same rows, but
    served leaf by leaf the OR form pays one full-minterm lookup per
    term while the IN form reduces the *union* of codes at once (the
    paper's Q2 / Definition 2.5 shape, where Quine-McCluskey can
    cancel variables across terms).  Normalising before planning makes
    canonically-equal predicates execute with identical access cost
    instead of depending on how the query happened to be spelled.

    Value order is first occurrence, so equal inputs normalise to
    equal (hashable) predicates.  Operands that are not Equals/InList
    leaves — ranges, NULL tests, nested conjunctions — are kept in
    place, each normalised recursively.

    >>> from repro.query.predicates import Equals, Range
    >>> normalize_predicate(Equals("A", "b") | Equals("A", "c"))
    InList(column='A', values=('b', 'c'))
    >>> normalize_predicate(Equals("A", "b") | Range("q", 1, 2))
    OrPredicate(operands=(Equals(column='A', value='b'), \
Range(column='q', low=1, high=2, low_inclusive=True, \
high_inclusive=True)))
    """
    if isinstance(predicate, AndPredicate):
        return AndPredicate(
            tuple(normalize_predicate(op) for op in predicate.operands)
        )
    if isinstance(predicate, NotPredicate):
        return NotPredicate(normalize_predicate(predicate.operand))
    if not isinstance(predicate, OrPredicate):
        return predicate
    # Flatten nested ORs first: ``(a OR b) OR c`` — the shape the
    # ``|`` operator builds — must unify leaves across nesting levels.
    flattened: List[Predicate] = []
    pending = list(predicate.operands)
    while pending:
        operand = normalize_predicate(pending.pop(0))
        if isinstance(operand, OrPredicate):
            flattened.extend(operand.operands)
        else:
            flattened.append(operand)
    merged: List[Predicate] = []
    unions: Dict[str, List[Any]] = {}
    slots: Dict[str, int] = {}
    for operand in flattened:
        if isinstance(operand, Equals):
            column, values = operand.column, [operand.value]
        elif isinstance(operand, InList):
            column, values = operand.column, list(operand.values)
        else:
            merged.append(operand)
            continue
        if column not in slots:
            slots[column] = len(merged)
            merged.append(operand)  # placeholder, rewritten below
            unions[column] = []
        bucket = unions[column]
        for value in values:
            if value not in bucket:
                bucket.append(value)
    for column, position in slots.items():
        values = unions[column]
        merged[position] = (
            Equals(column, values[0])
            if len(values) == 1
            else InList(column, values)
        )
    if len(merged) == 1:
        return merged[0]
    return OrPredicate(tuple(merged))


def collect_leaves(predicate: Predicate) -> List[Predicate]:
    """The leaf predicates of one tree, in evaluation order."""
    if isinstance(predicate, (AndPredicate, OrPredicate)):
        leaves: List[Predicate] = []
        for operand in predicate.operands:
            leaves.extend(collect_leaves(operand))
        return leaves
    if isinstance(predicate, NotPredicate):
        return collect_leaves(predicate.operand)
    return [predicate]


def shared_leaf_counts(
    predicates: Sequence[Predicate],
) -> Dict[Predicate, int]:
    """How many queries of a batch reference each leaf predicate.

    Leaf predicates are frozen dataclasses, so equal leaves from
    different query trees hash together.  A leaf appearing twice in
    the *same* query still counts once — the interesting number is
    how many queries would share one vector read through the batch
    executor's leaf cache.

    >>> from repro.query.predicates import Equals
    >>> a, b = Equals("v", 1), Equals("v", 2)
    >>> counts = shared_leaf_counts([a & b, a | Equals("w", 9)])
    >>> counts[Equals("v", 1)]
    2
    >>> counts[Equals("v", 2)]
    1
    """
    counts: Dict[Predicate, int] = {}
    for predicate in predicates:
        for leaf in dict.fromkeys(collect_leaves(predicate)):
            counts[leaf] = counts.get(leaf, 0) + 1
    return counts


def operation_count(function: ReducedFunction) -> int:
    """ANDs/ORs/NOTs needed to evaluate a DNF (rough CPU measure)."""
    if function.is_false or function.is_true:
        return 0
    ops = max(0, len(function.terms) - 1)  # ORs between terms
    for term in function.terms:
        literals = term.literal_count()
        ops += max(0, literals - 1)  # ANDs inside the term
        ops += sum(
            1
            for i in term.variables()
            if not (term.bits >> i) & 1
        )  # negations
    return ops


def cheapest_variant(
    codes: Sequence[int],
    width: int,
    dont_cares: Sequence[int],
) -> ReducedFunction:
    """The variant reading the fewest vectors (ties: fewest ops).

    This is the optimiser's answer to footnote 3: it may include
    don't-care codes in the ON set when that shortens the expression.

    >>> cheapest_variant([0, 1], width=2, dont_cares=[]).vector_count()
    1
    """
    best: Optional[ReducedFunction] = None
    best_key: Optional[Tuple[int, int]] = None
    for _, function in dont_care_variants(codes, width, dont_cares):
        key = (function.vector_count(), operation_count(function))
        if best_key is None or key < best_key:
            best, best_key = function, key
    assert best is not None  # the empty-subset variant always yields
    return best
