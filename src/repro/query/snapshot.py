"""Snapshot reads: per-thread pinned row watermarks.

A batch (`ParallelExecutor.execute_many`, `Database.query_many`) pins
each table it reads at the table's *published* row count on entry; for
the rest of the batch every index lookup and fallback scan on that
table is bounded to the pinned watermark.  Concurrent ingest can keep
appending — the batch simply never sees rows past its pin, so all of
its queries observe one consistent universe (no torn batches where
query 3 sees rows query 1 did not).

The watermark comes from ``published_rows()`` when the table offers it
(:class:`~repro.table.table.Table` moves it once per ``append_rows``
batch, under the write lock), so a pin can never land in the middle of
a batch append either.

Pins are *thread-local* and stack: the shard executor pins each
partition's table around its per-partition batch, nested inside
whatever the caller pinned.  Readers that never pin (plain ``lookup``
calls) see the live table exactly as before.

Together with the per-index delta epoch
(:meth:`repro.index.encoded_bitmap.EncodedBitmapIndex.epoch`, the
``(_data_version, _delta_seq)`` pair) this is the snapshot story the
EBI302 invalidation-protocol lint rule enforces statically:
``_data_version`` guards mapping/plane identity, ``_delta_seq`` guards
delta growth, and the pin guards result-universe length.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Tuple

_local = threading.local()


def _stack() -> List[Tuple[Any, int]]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def published_rows(table: Any) -> int:
    """The table's batch-atomic row watermark.

    Falls back to ``len(table)`` for row sources that do not publish
    one (partition views, plain duck-typed tables in tests).
    """
    probe = getattr(table, "published_rows", None)
    if callable(probe):
        return int(probe())
    return len(table)


@contextmanager
def pinned_rows(
    table: Any, rows: Optional[int] = None
) -> Iterator[int]:
    """Pin ``table`` at a row watermark for the calling thread.

    ``rows`` defaults to the current :func:`published_rows`.  Nested
    pins shadow outer pins for the same table (innermost wins) and are
    restored on exit.
    """
    watermark = published_rows(table) if rows is None else int(rows)
    stack = _stack()
    stack.append((table, watermark))
    try:
        yield watermark
    finally:
        stack.pop()


def snapshot_rows(table: Any) -> Optional[int]:
    """The calling thread's pinned watermark for ``table``, if any."""
    stack = getattr(_local, "stack", None)
    if not stack:
        return None
    for pinned_table, rows in reversed(stack):
        if pinned_table is table:
            return rows
    return None


def bounded_rows(table: Any) -> int:
    """``len(table)``, clamped to the thread's pin when one exists."""
    rows = len(table)
    pinned = snapshot_rows(table)
    if pinned is None:
        return rows
    return min(pinned, rows)
