"""Plan execution.

Executes a :class:`~repro.query.planner.Plan` by evaluating each leaf
through its chosen index and combining result bit vectors with the
predicate tree's Boolean structure.  Falls back to a table scan when
the planner said so.  The result carries both the selected rows and
the aggregate access cost, so benches can compare plans by the
paper's cost unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.bitmap.bitvector import BitVector
from repro.errors import QueryError
from repro.index.base import LookupCost
from repro.query.planner import Plan, Planner
from repro.query.predicates import (
    AndPredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
)
from repro.table.catalog import Catalog
from repro.table.table import Table


@dataclass
class QueryResult:
    """Rows selected by a query plus its cost."""

    vector: BitVector
    cost: LookupCost = field(default_factory=LookupCost)
    used_scan: bool = False
    #: True when the scan happened because every supporting index
    #: failed fsck (see :mod:`repro.index.verify`) — accounting for
    #: graceful degradation rather than a missing index.
    degraded: bool = False

    def row_ids(self) -> List[int]:
        return [int(i) for i in self.vector.indices()]

    def count(self) -> int:
        return self.vector.count()


class Executor:
    """Evaluates predicates against tables via planned index access."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.planner = Planner(catalog)

    # ------------------------------------------------------------------
    def select(self, table: Table, predicate: Predicate) -> QueryResult:
        """Plan and execute a selection on one table."""
        plan = self.planner.plan(table, predicate)
        return self.execute(plan)

    def execute(self, plan: Plan) -> QueryResult:
        if plan.fallback_scan:
            result = self._scan(plan.table, plan.predicate)
            result.degraded = bool(plan.degraded_columns)
            return result
        lookup = {
            id(step.predicate): step for step in plan.steps
        }
        cost = LookupCost()
        vector = self._evaluate(
            plan.table, plan.predicate, lookup, cost
        )
        return QueryResult(vector=vector, cost=cost)

    # ------------------------------------------------------------------
    def _evaluate(
        self,
        table: Table,
        predicate: Predicate,
        lookup: Dict[int, Any],
        cost: LookupCost,
    ) -> BitVector:
        if isinstance(predicate, AndPredicate):
            result = self._evaluate(
                table, predicate.operands[0], lookup, cost
            )
            for operand in predicate.operands[1:]:
                result &= self._evaluate(table, operand, lookup, cost)
            return result
        if isinstance(predicate, OrPredicate):
            result = self._evaluate(
                table, predicate.operands[0], lookup, cost
            )
            for operand in predicate.operands[1:]:
                result |= self._evaluate(table, operand, lookup, cost)
            return result
        if isinstance(predicate, NotPredicate):
            inner = self._evaluate(
                table, predicate.operand, lookup, cost
            )
            result = ~inner
            for row_id in table.void_rows():
                result[row_id] = False
            return result
        step = lookup.get(id(predicate))
        if step is None:
            raise QueryError(f"no access step for predicate {predicate}")
        vector = step.index.lookup(predicate)
        step_cost = step.index.last_cost
        cost.vectors_accessed += step_cost.vectors_accessed
        cost.node_accesses += step_cost.node_accesses
        cost.rows_checked += step_cost.rows_checked
        return vector

    # ------------------------------------------------------------------
    # aggregate pushdown
    # ------------------------------------------------------------------
    def aggregate(
        self,
        table: Table,
        function: str,
        column: str,
        predicate: Optional[Predicate] = None,
    ) -> float:
        """Evaluate an aggregate, pushing it down to an index if one
        on ``column`` supports index-only evaluation.

        Supported functions: ``count``, ``sum``, ``avg``, ``median``.
        Falls back to a scan when no suitable index exists.
        """
        function = function.lower()
        if function not in ("count", "sum", "avg", "median"):
            raise QueryError(f"unsupported aggregate {function!r}")

        selection: Optional[BitVector] = None
        if predicate is not None:
            selection = self.select(table, predicate).vector

        index = self._aggregate_index(table, column)
        if index is not None:
            return self._aggregate_via_index(
                index, function, selection
            )
        return self._aggregate_via_scan(
            table, function, column, predicate
        )

    def _aggregate_index(self, table: Table, column: str):
        from repro.index.encoded_bitmap import EncodedBitmapIndex

        for index in self.catalog.indexes_on(table.name, column):
            if isinstance(index, EncodedBitmapIndex):
                return index
        return None

    def _aggregate_via_index(self, index, function, selection):
        from repro.aggregate.counts import count as agg_count
        from repro.aggregate.quantiles import median as agg_median
        from repro.aggregate.sums import (
            average_encoded,
            sum_encoded,
        )

        if function == "count":
            if selection is None:
                return float(agg_count(index))
            domain = index.mapping.domain()
            if not domain:
                return 0.0
            from repro.query.predicates import InList

            live = index.lookup(InList(index.column_name, domain))
            return float((live & selection).count())
        if function == "sum":
            return sum_encoded(index, selection)
        if function == "avg":
            return average_encoded(index, selection)
        return float(agg_median(index, selection))

    def _aggregate_via_scan(self, table, function, column, predicate):
        values = [
            row[column]
            for row in table.scan()
            if (predicate is None or predicate.matches(row))
            and row[column] is not None
        ]
        if function == "count":
            return float(len(values))
        if not values:
            if function == "sum":
                return 0.0
            raise QueryError(
                f"{function} over an empty selection"
            )
        if function == "sum":
            return float(sum(values))
        if function == "avg":
            return float(sum(values)) / len(values)
        ordered = sorted(values)
        return float(ordered[(len(ordered) - 1) // 2])

    def _scan(self, table: Table, predicate: Predicate) -> QueryResult:
        vector = BitVector(len(table))
        cost = LookupCost()
        for row_id in range(len(table)):
            if table.is_void(row_id):
                continue
            cost.rows_checked += 1
            if predicate.matches(table.row(row_id)):
                vector[row_id] = True
        return QueryResult(vector=vector, cost=cost, used_scan=True)
