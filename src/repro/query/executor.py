"""Plan execution.

Executes a :class:`~repro.query.planner.Plan` by evaluating each leaf
through its chosen index and combining result bit vectors with the
predicate tree's Boolean structure.  Falls back to a table scan when
the planner said so.  The result carries both the selected rows and
the aggregate access cost, so benches can compare plans by the
paper's cost unit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.bitmap.bitvector import BitVector
from repro.errors import QueryError
from repro.index.base import LookupCost
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import (
    QueryTrace,
    StageTimer,
    StageTiming,
    VectorAccess,
)
from repro.query.planner import AccessStep, Plan, Planner
from repro.query.snapshot import bounded_rows
from repro.query.predicates import (
    AndPredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
)
from repro.table.catalog import Catalog
from repro.table.table import Table


@dataclass
class QueryResult:
    """Rows selected by a query plus its cost and observability data."""

    vector: BitVector
    cost: LookupCost = field(default_factory=LookupCost)
    used_scan: bool = False
    #: True when the scan happened because every supporting index
    #: failed fsck (see :mod:`repro.index.verify`) — accounting for
    #: graceful degradation rather than a missing index.
    degraded: bool = False
    #: Per-query metric delta (counters that moved while this query
    #: ran): evaluator vector reads, buffer-pool hits/misses, retries…
    #: Names are cataloged in ``docs/observability.md``.
    metrics: Dict[str, Union[int, float]] = field(default_factory=dict)
    #: Per-query trace, present when the query ran with ``trace=True``.
    trace: Optional[QueryTrace] = None
    #: True when the rows and cost came out of the database's result
    #: cache instead of being executed (``QueryOptions.use_cache``).
    cached: bool = False
    #: Tenant the query was accounted to, when one was supplied.
    tenant: Optional[str] = None
    #: Wall-clock seconds the call took end to end (0.0 when the
    #: entry point predates the serving tier and never timed itself).
    wall_seconds: float = 0.0

    def row_ids(self) -> List[int]:
        return [int(i) for i in self.vector.indices()]

    def count(self) -> int:
        return self.vector.count()


class Executor:
    """Evaluates predicates against tables via planned index access.

    Parameters
    ----------
    catalog:
        Table/index registry the planner consults.
    registry:
        Optional metrics registry for per-query scoping; defaults to
        the process-wide registry
        (:func:`repro.obs.metrics.get_registry`), resolved at each
        query so a later :func:`~repro.obs.metrics.set_registry` takes
        effect.

    Example (doctest)::

        >>> from repro.index.encoded_bitmap import EncodedBitmapIndex
        >>> from repro.query.predicates import InList
        >>> from repro.table.catalog import Catalog
        >>> from repro.table.table import Table
        >>> table = Table("T", ["A"])
        >>> for value in ["a", "b", "c", "b", "a", "c"]:
        ...     _ = table.append({"A": value})
        >>> catalog = Catalog()
        >>> _ = catalog.register_table(table)
        >>> _ = catalog.register_index(EncodedBitmapIndex(table, "A"))
        >>> result = Executor(catalog).select(
        ...     table, InList("A", ["a", "b"]), trace=True
        ... )
        >>> result.row_ids()
        [0, 1, 3, 4]
        >>> result.cost.vectors_accessed  # Theorem 2.1 mapping: XOR
        2
        >>> result.trace.vector_reads()
        2
    """

    def __init__(
        self,
        catalog: Catalog,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.catalog = catalog
        self.planner = Planner(catalog)
        self.registry = registry

    def _registry(self) -> MetricsRegistry:
        return self.registry if self.registry is not None else get_registry()

    # ------------------------------------------------------------------
    def select(
        self,
        table: Table,
        predicate: Predicate,
        trace: bool = False,
    ) -> QueryResult:
        """Plan and execute a selection on one table.

        With ``trace=True`` the result carries a
        :class:`~repro.obs.trace.QueryTrace` including the planning
        stage's wall/CPU time.
        """
        wall = time.perf_counter()
        cpu = time.process_time()
        plan = self.planner.plan(table, predicate)
        plan_timing = StageTiming(
            name="plan",
            wall_seconds=time.perf_counter() - wall,
            cpu_seconds=time.process_time() - cpu,
        )
        result = self.execute(plan, trace=trace)
        if result.trace is not None:
            result.trace.stages.insert(0, plan_timing)
        return result

    def execute(
        self,
        plan: Plan,
        trace: bool = False,
        *,
        leaf_cache: Optional[Dict[Predicate, BitVector]] = None,
    ) -> QueryResult:
        """Execute a prepared plan.

        Every execution is wrapped in a metrics scope: the counters
        that moved (evaluator reads, pool hits, retries, …) land in
        ``QueryResult.metrics`` as a per-query snapshot, while the
        process-lifetime totals keep accumulating in the registry.

        ``leaf_cache`` shares leaf-predicate result vectors across
        executions: a batch (see
        :meth:`repro.shard.executor.ParallelExecutor.execute_many`)
        passes one dict for all its queries, so two queries selecting
        on the same leaf pay the index read once.  Cache hits add no
        access cost — that is exactly the saving being modelled.
        """
        registry = self._registry()
        registry.counter("query.queries").inc()
        scope = registry.scoped()
        trace_obj = (
            QueryTrace(plan_text=plan.describe()) if trace else None
        )
        with StageTimer(trace_obj, "execute"):
            if plan.fallback_scan:
                registry.counter("query.scans").inc()
                if plan.degraded_columns:
                    registry.counter("query.degraded_scans").inc()
                result = self._scan(plan.table, plan.predicate)
                result.degraded = bool(plan.degraded_columns)
                if trace_obj is not None:
                    trace_obj.used_scan = True
                    trace_obj.degraded = result.degraded
            else:
                lookup = {
                    id(step.predicate): step for step in plan.steps
                }
                cost = LookupCost()
                vector = self._evaluate(
                    plan.table,
                    plan.predicate,
                    lookup,
                    cost,
                    trace_obj,
                    leaf_cache,
                )
                result = QueryResult(vector=vector, cost=cost)
        result.metrics = scope.finish()
        if trace_obj is not None:
            trace_obj.metrics = result.metrics
            result.trace = trace_obj
        return result

    # ------------------------------------------------------------------
    def _evaluate(
        self,
        table: Table,
        predicate: Predicate,
        lookup: Dict[int, Any],
        cost: LookupCost,
        trace: Optional[QueryTrace] = None,
        leaf_cache: Optional[Dict[Predicate, BitVector]] = None,
    ) -> BitVector:
        if isinstance(predicate, AndPredicate):
            result = self._evaluate(
                table, predicate.operands[0], lookup, cost, trace,
                leaf_cache,
            )
            for operand in predicate.operands[1:]:
                result &= self._evaluate(
                    table, operand, lookup, cost, trace, leaf_cache
                )
            return result
        if isinstance(predicate, OrPredicate):
            result = self._evaluate(
                table, predicate.operands[0], lookup, cost, trace,
                leaf_cache,
            )
            for operand in predicate.operands[1:]:
                result |= self._evaluate(
                    table, operand, lookup, cost, trace, leaf_cache
                )
            return result
        if isinstance(predicate, NotPredicate):
            inner = self._evaluate(
                table, predicate.operand, lookup, cost, trace, leaf_cache
            )
            result = ~inner
            for row_id in table.void_rows():
                # A row voided after the inner vector was sized
                # (concurrent ingest) lies beyond it; the snapshot
                # clamp in Index.lookup already excluded it.
                if row_id < len(result):
                    result[row_id] = False
            return result
        if leaf_cache is not None:
            cached = leaf_cache.get(predicate)
            if cached is not None:
                # No cost added: the whole point of the batch cache is
                # that this read was already paid for.  A copy is
                # returned because AND/OR combination above mutates
                # its left operand in place.
                self._registry().counter("query.leaf_cache_hits").inc()
                return cached.copy()
            self._registry().counter("query.leaf_cache_misses").inc()
        step = lookup.get(id(predicate))
        if step is None:
            raise QueryError(f"no access step for predicate {predicate}")
        vector = step.index.lookup(predicate)
        step_cost = step.index.last_cost
        cost.vectors_accessed += step_cost.vectors_accessed
        cost.node_accesses += step_cost.node_accesses
        cost.rows_checked += step_cost.rows_checked
        if trace is not None:
            trace.accesses.append(_access_event(step, step_cost))
        if leaf_cache is not None:
            # Single-copy discipline (audited with repro.kernels):
            # ``vector`` is freshly allocated by ``lookup`` and owned by
            # the caller, who may mutate it in place, so the cache keeps
            # its own copy here and the hit path above copies once per
            # reuse.  Neither path copies twice.
            leaf_cache[predicate] = vector.copy()
        return vector

    # ------------------------------------------------------------------
    # aggregate pushdown
    # ------------------------------------------------------------------
    def aggregate(
        self,
        table: Table,
        function: str,
        column: str,
        predicate: Optional[Predicate] = None,
    ) -> float:
        """Evaluate an aggregate, pushing it down to an index if one
        on ``column`` supports index-only evaluation.

        Supported functions: ``count``, ``sum``, ``avg``, ``median``.
        Falls back to a scan when no suitable index exists.
        """
        function = function.lower()
        if function not in ("count", "sum", "avg", "median"):
            raise QueryError(f"unsupported aggregate {function!r}")

        selection: Optional[BitVector] = None
        if predicate is not None:
            selection = self.select(table, predicate).vector

        index = self._aggregate_index(table, column)
        if index is not None:
            return self._aggregate_via_index(
                index, function, selection
            )
        return self._aggregate_via_scan(
            table, function, column, predicate
        )

    def _aggregate_index(self, table: Table, column: str):
        from repro.index.encoded_bitmap import EncodedBitmapIndex

        for index in self.catalog.indexes_on(table.name, column):
            if isinstance(index, EncodedBitmapIndex):
                return index
        return None

    def _aggregate_via_index(self, index, function, selection):
        from repro.aggregate.counts import count as agg_count
        from repro.aggregate.quantiles import median as agg_median
        from repro.aggregate.sums import (
            average_encoded,
            sum_encoded,
        )

        if function == "count":
            if selection is None:
                return float(agg_count(index))
            domain = index.mapping.domain()
            if not domain:
                return 0.0
            from repro.query.predicates import InList

            live = index.lookup(InList(index.column_name, domain))
            return float((live & selection).count())
        if function == "sum":
            return sum_encoded(index, selection)
        if function == "avg":
            return average_encoded(index, selection)
        return float(agg_median(index, selection))

    def _aggregate_via_scan(self, table, function, column, predicate):
        values = [
            row[column]
            for row in table.scan()
            if (predicate is None or predicate.matches(row))
            and row[column] is not None
        ]
        if function == "count":
            return float(len(values))
        if not values:
            if function == "sum":
                return 0.0
            raise QueryError(
                f"{function} over an empty selection"
            )
        if function == "sum":
            return float(sum(values))
        if function == "avg":
            return float(sum(values)) / len(values)
        ordered = sorted(values)
        return float(ordered[(len(ordered) - 1) // 2])

    def _scan(self, table: Table, predicate: Predicate) -> QueryResult:
        # Honour a pinned snapshot (repro.query.snapshot) so a scan
        # inside an execute_many batch covers the same row universe as
        # the index lookups next to it.
        limit = bounded_rows(table)
        vector = BitVector(limit)
        cost = LookupCost()
        for row_id in range(limit):
            if table.is_void(row_id):
                continue
            cost.rows_checked += 1
            if predicate.matches(table.row(row_id)):
                vector[row_id] = True
        self._registry().counter("query.scan_rows_checked").inc(
            cost.rows_checked
        )
        return QueryResult(vector=vector, cost=cost, used_scan=True)


def _access_event(step: AccessStep, step_cost: LookupCost) -> VectorAccess:
    """Build the trace record for one executed access step.

    Reads the ``last_*`` trace attributes the index just filled in
    (reduced expression, distinct vectors touched, reduction-cache
    hit) and derives, per vector, the reduced-DNF terms it appears in
    — the "why" of every read.
    """
    index = step.index
    reduction = getattr(index, "last_reduction", None)
    roles: Dict[int, List[str]] = {}
    reduced_text: Optional[str] = None
    if reduction is not None:
        reduced_text = reduction.to_string()
        for term in reduction.terms:
            text = term.to_string()
            for i in term.variables():
                roles.setdefault(i, []).append(text)
    return VectorAccess(
        index_kind=getattr(index, "kind", "abstract"),
        column=index.column_name,
        predicate=str(step.predicate),
        vectors=tuple(getattr(index, "last_touched", ())),
        width=getattr(index, "width", None),
        reduced=reduced_text,
        cache_hit=getattr(index, "last_cache_hit", None),
        vectors_accessed=step_cost.vectors_accessed,
        node_accesses=step_cost.node_accesses,
        rows_checked=step_cost.rows_checked,
        estimated_cost=step.estimated_cost,
        roles={i: tuple(terms) for i, terms in roles.items()},
    )
