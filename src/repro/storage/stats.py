"""I/O statistics for the simulated disk.

Counters are deliberately simple — the evaluation shapes in the paper
depend on *counts*, not on a latency model.  ``logical_reads`` counts
every page request, ``physical_reads`` only those that missed the
buffer pool.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IOStatistics:
    """Mutable counter block shared by pager and buffer pool."""

    logical_reads: int = 0
    physical_reads: int = 0
    writes: int = 0
    allocations: int = 0
    evictions: int = 0

    def record_logical_read(self) -> None:
        self.logical_reads += 1

    def record_physical_read(self) -> None:
        self.physical_reads += 1

    def record_write(self) -> None:
        self.writes += 1

    def record_allocation(self) -> None:
        self.allocations += 1

    def record_eviction(self) -> None:
        self.evictions += 1

    def reset(self) -> None:
        """Zero every counter (used between benchmark phases)."""
        self.logical_reads = 0
        self.physical_reads = 0
        self.writes = 0
        self.allocations = 0
        self.evictions = 0

    def hit_ratio(self) -> float:
        """Buffer-pool hit ratio over the recorded window."""
        if self.logical_reads == 0:
            return 0.0
        return 1.0 - self.physical_reads / self.logical_reads

    def snapshot(self) -> "IOStatistics":
        """A frozen copy of the current counters."""
        return IOStatistics(
            logical_reads=self.logical_reads,
            physical_reads=self.physical_reads,
            writes=self.writes,
            allocations=self.allocations,
            evictions=self.evictions,
        )

    def __sub__(self, other: "IOStatistics") -> "IOStatistics":
        return IOStatistics(
            logical_reads=self.logical_reads - other.logical_reads,
            physical_reads=self.physical_reads - other.physical_reads,
            writes=self.writes - other.writes,
            allocations=self.allocations - other.allocations,
            evictions=self.evictions - other.evictions,
        )
