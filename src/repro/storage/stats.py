"""I/O statistics for the simulated disk, backed by the metrics registry.

Counters are deliberately simple — the evaluation shapes in the paper
depend on *counts*, not on a latency model.  ``logical_reads`` counts
every page request, ``physical_reads`` only those that missed the
buffer pool.

Since the observability layer landed, :class:`IOStatistics` is a view
over a private :class:`~repro.obs.metrics.MetricsRegistry` whose
counters propagate to the process-wide registry
(:func:`repro.obs.metrics.get_registry`).  Scoping is therefore
explicit:

* **per-pager window** — this object; :meth:`reset` zeroes it between
  benchmark phases without touching anything else,
* **process-lifetime totals** — the global registry's ``storage.*``
  counters, which every pager feeds,
* **per-query snapshot** — the executor wraps each query in a
  registry scope and attaches the delta to
  :class:`~repro.query.executor.QueryResult`.

Example (doctest)::

    >>> stats = IOStatistics()
    >>> stats.record_logical_read()
    >>> stats.record_logical_read()
    >>> stats.record_physical_read()
    >>> stats.logical_reads, stats.physical_reads
    (2, 1)
    >>> stats.hit_ratio()
    0.5
    >>> stats.reset()
    >>> stats.logical_reads
    0
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry, get_registry

#: Registry namespace for every storage-layer counter.
NAMESPACE = "storage"

_FIELDS = (
    "logical_reads",
    "physical_reads",
    "writes",
    "allocations",
    "evictions",
    "pool_hits",
    "pool_misses",
    "write_backs",
    "checksum_failures",
)


class IOStatistics:
    """Mutable counter block shared by pager and buffer pool.

    Keyword arguments seed initial values (used by :meth:`snapshot`
    and :meth:`__sub__`, which return detached copies); seeding never
    propagates to the parent registry.

    Parameters
    ----------
    registry:
        Optional backing registry.  By default a private registry is
        created whose parent is the process-wide registry, so local
        increments also show up in the global ``storage.*`` totals.
    """

    __slots__ = ("_registry", "_counters")

    def __init__(
        self,
        logical_reads: int = 0,
        physical_reads: int = 0,
        writes: int = 0,
        allocations: int = 0,
        evictions: int = 0,
        pool_hits: int = 0,
        pool_misses: int = 0,
        write_backs: int = 0,
        checksum_failures: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if registry is None:
            registry = MetricsRegistry(parent=get_registry())
        self._registry = registry
        self._counters = {
            name: registry.counter(f"{NAMESPACE}.{name}")
            for name in _FIELDS
        }
        seeds = (
            logical_reads,
            physical_reads,
            writes,
            allocations,
            evictions,
            pool_hits,
            pool_misses,
            write_backs,
            checksum_failures,
        )
        for name, seed in zip(_FIELDS, seeds):
            if seed:
                self._counters[name].set_raw(seed)

    # ------------------------------------------------------------------
    # counter views
    # ------------------------------------------------------------------
    @property
    def registry(self) -> MetricsRegistry:
        """The backing (per-pager) registry."""
        return self._registry

    @property
    def logical_reads(self) -> int:
        return self._counters["logical_reads"].value

    @property
    def physical_reads(self) -> int:
        return self._counters["physical_reads"].value

    @property
    def writes(self) -> int:
        return self._counters["writes"].value

    @property
    def allocations(self) -> int:
        return self._counters["allocations"].value

    @property
    def evictions(self) -> int:
        return self._counters["evictions"].value

    @property
    def pool_hits(self) -> int:
        return self._counters["pool_hits"].value

    @property
    def pool_misses(self) -> int:
        return self._counters["pool_misses"].value

    @property
    def write_backs(self) -> int:
        return self._counters["write_backs"].value

    @property
    def checksum_failures(self) -> int:
        return self._counters["checksum_failures"].value

    # ------------------------------------------------------------------
    # recorders (called from the pager / buffer pool hot paths)
    # ------------------------------------------------------------------
    def record_logical_read(self) -> None:
        self._counters["logical_reads"].inc()

    def record_physical_read(self) -> None:
        self._counters["physical_reads"].inc()

    def record_write(self) -> None:
        self._counters["writes"].inc()

    def record_allocation(self) -> None:
        self._counters["allocations"].inc()

    def record_eviction(self) -> None:
        self._counters["evictions"].inc()

    def record_pool_hit(self) -> None:
        self._counters["pool_hits"].inc()

    def record_pool_miss(self) -> None:
        self._counters["pool_misses"].inc()

    def record_write_back(self) -> None:
        self._counters["write_backs"].inc()

    def record_checksum_failure(self) -> None:
        self._counters["checksum_failures"].inc()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every counter (used between benchmark phases).

        Only this window is cleared; the process-lifetime totals in
        the global registry are left intact.
        """
        for counter in self._counters.values():
            counter.set_raw(0)

    def hit_ratio(self) -> float:
        """Buffer-pool hit ratio over the recorded window."""
        if self.logical_reads == 0:
            return 0.0
        return 1.0 - self.physical_reads / self.logical_reads

    def as_dict(self) -> Dict[str, int]:
        """Flat ``field -> count`` view (used by bench reports)."""
        return {
            name: counter.value
            for name, counter in self._counters.items()
        }

    def snapshot(self) -> "IOStatistics":
        """A frozen, detached copy of the current counters."""
        return IOStatistics(
            registry=MetricsRegistry(), **self.as_dict()
        )

    def __sub__(self, other: "IOStatistics") -> "IOStatistics":
        mine = self.as_dict()
        theirs = other.as_dict()
        return IOStatistics(
            registry=MetricsRegistry(),
            **{name: mine[name] - theirs[name] for name in _FIELDS},
        )

    def __repr__(self) -> str:
        shown = ", ".join(
            f"{name}={counter.value}"
            for name, counter in self._counters.items()
            if counter.value
        )
        return f"IOStatistics({shown})"
