"""In-memory simulated disk of fixed-size pages.

The pager owns page allocation and raw (physical) reads/writes; the
:class:`~repro.storage.buffer_pool.BufferPool` sits on top and absorbs
repeated reads.  All storage is in memory — the simulation's job is to
*count*, not to persist.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import InvalidPageError
from repro.storage.page import PAGE_SIZE_DEFAULT, Page
from repro.storage.stats import IOStatistics


class Pager:
    """Allocates and serves fixed-size pages with I/O accounting."""

    def __init__(
        self,
        page_size: int = PAGE_SIZE_DEFAULT,
        stats: Optional[IOStatistics] = None,
    ) -> None:
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStatistics()
        self._pages: Dict[int, Page] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    def allocate(self) -> Page:
        """Create a new zeroed page and return it."""
        page = Page(self._next_id, self.page_size)
        self._pages[self._next_id] = page
        self._next_id += 1
        self.stats.record_allocation()
        return page

    def read(self, page_id: int) -> Page:
        """Physical read of a page (one disk access)."""
        try:
            page = self._pages[page_id]
        except KeyError:
            raise InvalidPageError(f"no page with id {page_id}") from None
        self.stats.record_physical_read()
        return page

    def write(self, page: Page) -> None:
        """Physical write-back of a page."""
        if page.page_id not in self._pages:
            raise InvalidPageError(f"no page with id {page.page_id}")
        self.stats.record_write()
        page.dirty = False

    def free(self, page_id: int) -> None:
        """Release a page (id is not recycled)."""
        if page_id not in self._pages:
            raise InvalidPageError(f"no page with id {page_id}")
        del self._pages[page_id]

    # ------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        """Number of live pages."""
        return len(self._pages)

    def total_bytes(self) -> int:
        """Total allocated storage in bytes."""
        return len(self._pages) * self.page_size

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __repr__(self) -> str:
        return (
            f"Pager(page_size={self.page_size}, pages={self.page_count})"
        )
