"""In-memory simulated disk of fixed-size pages.

The pager owns page allocation and raw (physical) reads/writes; the
:class:`~repro.storage.buffer_pool.BufferPool` sits on top and absorbs
repeated reads.  All storage is in memory — the simulation's job is to
*count*, not to persist.

Durability model: each page has a *committed image* plus a CRC32
checksum, both recorded at physical-write time.  A physical read
verifies the image against its checksum before handing the page out,
so at-rest corruption (bit rot) and torn writes — a checksum computed
for a full image of which only a prefix reached "disk" — raise
:class:`~repro.errors.ChecksumError` instead of silently serving
garbage.  :class:`~repro.faults.FaultyPager` subclasses this to inject
exactly those failures deterministically.

Example (doctest) — every physical access is counted on the pager's
:class:`~repro.storage.stats.IOStatistics`::

    >>> from repro.storage.pager import Pager
    >>> pager = Pager(page_size=64)
    >>> page = pager.allocate()
    >>> page.write(b"payload", offset=0)
    >>> pager.write(page)
    >>> _ = pager.read(page.page_id)
    >>> (pager.stats.allocations, pager.stats.writes,
    ...  pager.stats.physical_reads)
    (1, 1, 1)
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ChecksumError, InvalidPageError
from repro.storage.page import PAGE_SIZE_DEFAULT, Page, page_checksum
from repro.storage.stats import IOStatistics


class Pager:
    """Allocates and serves fixed-size pages with I/O accounting."""

    def __init__(
        self,
        page_size: int = PAGE_SIZE_DEFAULT,
        stats: Optional[IOStatistics] = None,
    ) -> None:
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStatistics()
        self._pages: Dict[int, Page] = {}
        self._images: Dict[int, bytes] = {}
        self._checksums: Dict[int, int] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    def allocate(self) -> Page:
        """Create a new zeroed page and return it."""
        page = Page(self._next_id, self.page_size)
        self._pages[self._next_id] = page
        self._commit(page)
        self._next_id += 1
        self.stats.record_allocation()
        return page

    def read(self, page_id: int) -> Page:
        """Physical read of a page (one disk access).

        Verifies the committed image against its stored CRC32 before
        refreshing the page buffer from it; raises
        :class:`~repro.errors.ChecksumError` on mismatch.
        """
        try:
            page = self._pages[page_id]
        except KeyError:
            raise InvalidPageError(f"no page with id {page_id}") from None
        self.stats.record_physical_read()
        image = self._images[page_id]
        expected = self._checksums[page_id]
        actual = page_checksum(image)
        if actual != expected:
            self.stats.record_checksum_failure()
            raise ChecksumError(
                f"page {page_id} failed checksum verification: "
                f"stored {expected:#010x}, computed {actual:#010x}"
            )
        page.load_image(image)
        return page

    def write(self, page: Page) -> None:
        """Physical write-back of a page: commit image + checksum."""
        if page.page_id not in self._pages:
            raise InvalidPageError(f"no page with id {page.page_id}")
        self._commit(page)
        self.stats.record_write()
        page.dirty = False

    def free(self, page_id: int) -> None:
        """Release a page (id is not recycled)."""
        if page_id not in self._pages:
            raise InvalidPageError(f"no page with id {page_id}")
        del self._pages[page_id]
        self._images.pop(page_id, None)
        self._checksums.pop(page_id, None)

    # ------------------------------------------------------------------
    # commit internals (overridden / perturbed by FaultyPager)
    # ------------------------------------------------------------------
    def _commit(self, page: Page) -> None:
        """Record the page's current content as the committed image."""
        image = page.snapshot()
        self._images[page.page_id] = image
        self._checksums[page.page_id] = page_checksum(image)

    def committed_checksum(self, page_id: int) -> int:
        """Stored CRC32 of a page's last committed image."""
        try:
            return self._checksums[page_id]
        except KeyError:
            raise InvalidPageError(f"no page with id {page_id}") from None

    # ------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        """Number of live pages."""
        return len(self._pages)

    def total_bytes(self) -> int:
        """Total allocated storage in bytes."""
        return len(self._pages) * self.page_size

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __repr__(self) -> str:
        return (
            f"Pager(page_size={self.page_size}, pages={self.page_count})"
        )
