"""Paged storage for bitmap vectors.

The paper's cost unit — bitmap vectors accessed — stands in for disk
I/O (footnote 4).  This module closes the loop: bitmap vectors are
laid out on simulated 4 KiB pages behind an LRU buffer pool, so a
query's *page-level* read count can be measured instead of assumed.

``PagedVectorStore`` persists/loads whole vectors; the paged index
subclasses in :mod:`repro.index` route their vector fetches through a
store, making ``pager.stats`` reflect real access patterns (including
buffer-pool hits across queries).

Example (doctest) — a 10-bit vector fits one page, which stays
resident in the buffer pool after the write, so both loads are pool
hits and neither touches the simulated disk::

    >>> from repro.bitmap.bitvector import BitVector
    >>> from repro.storage.vector_store import PagedVectorStore
    >>> store = PagedVectorStore(page_size=64, pool_capacity=2)
    >>> vector = BitVector(10)
    >>> vector[3] = True
    >>> _ = store.store("B0", vector)
    >>> store.stats.reset()
    >>> int(store.load("B0").indices()[0])
    3
    >>> store.load("B0").count()
    1
    >>> store.stats.physical_reads, store.stats.pool_hits
    (0, 2)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.bitmap.bitvector import BitVector
from repro.errors import StorageError
from repro.storage.buffer_pool import BufferPool
from repro.storage.page import PAGE_SIZE_DEFAULT
from repro.storage.pager import Pager
from repro.storage.stats import IOStatistics

if TYPE_CHECKING:
    from repro.faults.retry import RetryPolicy


@dataclass
class VectorHandle:
    """Where one bitmap vector lives on disk."""

    name: Hashable
    page_ids: Tuple[int, ...]
    nbits: int


class PagedVectorStore:
    """Stores bit vectors across fixed-size pages.

    Parameters
    ----------
    page_size:
        Simulated page size (the paper's p = 4K by default).
    pool_capacity:
        Buffer-pool frames shared by all vectors in the store.
    pager:
        Optional pre-built pager (e.g. a
        :class:`~repro.faults.FaultyPager` for fault-injection runs);
        by default a pristine :class:`Pager` is created.
    retry:
        Optional :class:`~repro.faults.RetryPolicy` absorbing
        transient I/O faults on physical reads and write-backs.
    """

    def __init__(
        self,
        page_size: int = PAGE_SIZE_DEFAULT,
        pool_capacity: int = 64,
        stats: Optional[IOStatistics] = None,
        pager: Optional[Pager] = None,
        retry: Optional["RetryPolicy"] = None,
    ) -> None:
        self.pager = (
            pager
            if pager is not None
            else Pager(page_size=page_size, stats=stats)
        )
        self.pool = BufferPool(
            self.pager, capacity=pool_capacity, retry=retry
        )
        self._handles: Dict[Hashable, VectorHandle] = {}

    # ------------------------------------------------------------------
    @property
    def stats(self) -> IOStatistics:
        return self.pager.stats

    def __contains__(self, name: Hashable) -> bool:
        return name in self._handles

    def handle(self, name: Hashable) -> VectorHandle:
        try:
            return self._handles[name]
        except KeyError:
            raise StorageError(f"no stored vector named {name!r}") from None

    def pages_per_vector(self, nbits: int) -> int:
        """Pages one ``nbits`` vector occupies."""
        nbytes = (nbits + 7) // 8
        return max(1, -(-nbytes // self.pager.page_size))

    # ------------------------------------------------------------------
    def store(self, name: Hashable, vector: BitVector) -> VectorHandle:
        """Write a vector to fresh pages (replacing any previous one)."""
        if name in self._handles:
            self.delete(name)
        raw = vector.words.tobytes()
        page_size = self.pager.page_size
        page_ids: List[int] = []
        for offset in range(0, max(1, len(raw)), page_size):
            page = self.pool.new_page()
            chunk = raw[offset : offset + page_size]
            if chunk:
                page.write(chunk, 0)
            page_ids.append(page.page_id)
        handle = VectorHandle(
            name=name, page_ids=tuple(page_ids), nbits=len(vector)
        )
        self._handles[name] = handle
        return handle

    def load(self, name: Hashable) -> BitVector:
        """Read a vector back through the buffer pool.

        Every page touched counts one logical read (and a physical
        read on a pool miss) in ``self.stats``.
        """
        handle = self.handle(name)
        chunks: List[bytes] = []
        for page_id in handle.page_ids:
            page = self.pool.fetch(page_id)
            chunks.append(page.read())
        raw = b"".join(chunks)
        nwords = (handle.nbits + 63) // 64
        words = np.frombuffer(
            raw[: nwords * 8], dtype=np.uint64
        ).copy()
        return BitVector._from_words(words, handle.nbits)

    def update(self, name: Hashable, vector: BitVector) -> VectorHandle:
        """Rewrite a stored vector in place (same name, fresh pages if
        the size changed)."""
        handle = self._handles.get(name)
        if handle is None or self.pages_per_vector(
            len(vector)
        ) != len(handle.page_ids):
            return self.store(name, vector)
        raw = vector.words.tobytes()
        page_size = self.pager.page_size
        for i, page_id in enumerate(handle.page_ids):
            page = self.pool.fetch(page_id)
            chunk = raw[i * page_size : (i + 1) * page_size]
            page.clear()
            if chunk:
                page.write(chunk, 0)
        self._handles[name] = VectorHandle(
            name=name, page_ids=handle.page_ids, nbits=len(vector)
        )
        return self._handles[name]

    def delete(self, name: Hashable) -> None:
        handle = self._handles.pop(name, None)
        if handle is None:
            return
        for page_id in handle.page_ids:
            self.pool.drop(page_id)
            self.pager.free(page_id)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write every dirty buffered page back to the pager.

        Until flushed, stored vectors live only in pool frames; a
        flush commits their images (and CRC32 checksums), making
        subsequent corruption detectable at physical-read time.
        """
        self.pool.flush()

    def close(self) -> None:
        """Teardown: flush and release all buffered frames."""
        self.pool.close()

    # ------------------------------------------------------------------
    def total_pages(self) -> int:
        return self.pager.page_count

    def nbytes(self) -> int:
        return self.pager.total_bytes()

    def __repr__(self) -> str:
        return (
            f"PagedVectorStore(vectors={len(self._handles)}, "
            f"pages={self.total_pages()})"
        )
