"""LRU buffer pool over the simulated pager.

Serving a page from the pool is a *logical* read; a miss triggers a
*physical* read at the pager and may evict the least recently used
frame (writing it back if dirty).
"""

from __future__ import annotations

from collections import OrderedDict
from repro.storage.page import Page
from repro.storage.pager import Pager


class BufferPool:
    """Fixed-capacity LRU cache of pages.

    Parameters
    ----------
    pager:
        The underlying simulated disk.
    capacity:
        Number of page frames; must be at least 1.
    """

    def __init__(self, pager: Pager, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.pager = pager
        self.capacity = capacity
        self._frames: "OrderedDict[int, Page]" = OrderedDict()

    # ------------------------------------------------------------------
    def fetch(self, page_id: int) -> Page:
        """Get a page, counting a logical read (and a physical on miss)."""
        stats = self.pager.stats
        stats.record_logical_read()
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        page = self.pager.read(page_id)
        self._admit(page)
        return page

    def new_page(self) -> Page:
        """Allocate a fresh page and pin it into the pool."""
        page = self.pager.allocate()
        self._admit(page)
        return page

    def flush(self) -> None:
        """Write back every dirty frame."""
        for page in self._frames.values():
            if page.dirty:
                self.pager.write(page)

    def drop(self, page_id: int) -> None:
        """Remove a page from the pool without writing it back."""
        self._frames.pop(page_id, None)

    def clear(self) -> None:
        """Flush and empty the pool (e.g. between benchmark phases)."""
        self.flush()
        self._frames.clear()

    # ------------------------------------------------------------------
    def _admit(self, page: Page) -> None:
        if page.page_id in self._frames:
            self._frames.move_to_end(page.page_id)
            return
        while len(self._frames) >= self.capacity:
            victim_id, victim = self._frames.popitem(last=False)
            if victim.dirty:
                self.pager.write(victim)
            self.pager.stats.record_eviction()
        self._frames[page.page_id] = page

    @property
    def resident(self) -> int:
        """Number of pages currently cached."""
        return len(self._frames)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._frames

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self.capacity}, "
            f"resident={self.resident})"
        )
