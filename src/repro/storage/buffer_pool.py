"""LRU buffer pool over the simulated pager.

Serving a page from the pool is a *logical* read; a miss triggers a
*physical* read at the pager and may evict the least recently used
frame (writing it back if dirty).

Fault tolerance: physical reads and dirty write-backs optionally run
under a :class:`~repro.faults.RetryPolicy`, so transient I/O faults
are absorbed with bounded backoff.  Eviction is exception-safe — a
dirty victim is only dropped from the pool *after* its write-back
succeeded, so a failed write never loses data (the victim stays
resident and dirty, and the error propagates).

Example (doctest) — a one-frame pool alternating between two pages
misses every fetch; refetching the resident page hits::

    >>> from repro.storage.buffer_pool import BufferPool
    >>> from repro.storage.pager import Pager
    >>> pager = Pager(page_size=64)
    >>> a, b = pager.allocate(), pager.allocate()
    >>> pool = BufferPool(pager, capacity=1)
    >>> pager.stats.reset()
    >>> _ = pool.fetch(a.page_id)   # miss: physical read
    >>> _ = pool.fetch(a.page_id)   # hit
    >>> _ = pool.fetch(b.page_id)   # miss: evicts page a
    >>> pager.stats.pool_hits, pager.stats.pool_misses
    (1, 2)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

from repro.errors import InvalidArgumentError
from repro.storage.page import Page
from repro.storage.pager import Pager

if TYPE_CHECKING:
    from repro.faults.retry import RetryPolicy


class BufferPool:
    """Fixed-capacity LRU cache of pages.

    Parameters
    ----------
    pager:
        The underlying simulated disk.
    capacity:
        Number of page frames; must be at least 1.
    retry:
        Optional bounded-backoff policy applied to physical reads and
        dirty write-backs; transient faults are retried, everything
        else propagates.
    """

    def __init__(
        self,
        pager: Pager,
        capacity: int = 64,
        retry: Optional["RetryPolicy"] = None,
    ) -> None:
        if capacity < 1:
            raise InvalidArgumentError(
                f"capacity must be >= 1, got {capacity}"
            )
        self.pager = pager  # ebi: shared-readonly
        self.capacity = capacity  # ebi: shared-readonly
        self.retry = retry  # ebi: shared-readonly
        #: Serialisation point of the storage stack: guards the frame
        #: table, the I/O statistics, and the pager itself.  The pager
        #: is a simulated in-memory disk, so holding the lock across
        #: its "I/O" costs memory-copy time only and keeps eviction's
        #: write-back-then-drop sequence atomic (see
        #: docs/concurrency.md for the EBI303 suppressions below).
        self._lock = threading.Lock()
        self._frames: "OrderedDict[int, Page]" = OrderedDict()

    # ------------------------------------------------------------------
    def fetch(self, page_id: int) -> Page:
        """Get a page, counting a logical read (and a physical on miss)."""
        stats = self.pager.stats
        with self._lock:
            stats.record_logical_read()
            if page_id in self._frames:
                stats.record_pool_hit()
                self._frames.move_to_end(page_id)
                return self._frames[page_id]
            stats.record_pool_miss()
            # Simulated in-memory pager: the pool lock IS the storage
            # stack's serialisation point, so "I/O" under it is a
            # deliberate exception to the no-I/O-under-lock rule.
            page = self._read_page(page_id)  # ebilint: disable=EBI303
            self._admit(page)  # ebilint: disable=EBI303
            return page

    def new_page(self) -> Page:
        """Allocate a fresh page and pin it into the pool."""
        with self._lock:
            # Simulated pager under the pool's serialisation lock.
            page = self.pager.allocate()  # ebilint: disable=EBI303
            self._admit(page)  # ebilint: disable=EBI303
            return page

    def flush(self) -> None:
        """Write back every dirty frame."""
        with self._lock:
            for page in self._frames.values():
                if page.dirty:
                    # Write-back to the simulated pager; the lock keeps
                    # the dirty scan consistent with evictions.
                    self._write_page(page)  # ebilint: disable=EBI303

    def drop(self, page_id: int) -> None:
        """Remove a page from the pool without writing it back."""
        with self._lock:
            self._frames.pop(page_id, None)

    def clear(self) -> None:
        """Flush and empty the pool (e.g. between benchmark phases).

        The frames are only released after every dirty page was
        written back, so a failing write-back cannot lose data.
        ``flush`` is called *before* taking the (non-reentrant) lock —
        taking it around the call would self-deadlock, which is
        exactly what ebilint EBI303 flags.
        """
        self.flush()
        with self._lock:
            self._frames.clear()

    def close(self) -> None:
        """Teardown: flush all dirty frames, then release them."""
        self.clear()

    def __enter__(self) -> "BufferPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _read_page(self, page_id: int) -> Page:
        if self.retry is None:
            return self.pager.read(page_id)
        return self.retry.call(lambda: self.pager.read(page_id))

    def _write_page(self, page: Page) -> None:
        self.pager.stats.record_write_back()
        if self.retry is None:
            self.pager.write(page)
        else:
            self.retry.call(lambda: self.pager.write(page))

    def _admit(self, page: Page) -> None:
        if page.page_id in self._frames:
            self._frames.move_to_end(page.page_id)
            return
        while len(self._frames) >= self.capacity:
            # Peek at the LRU victim and write it back *before*
            # removing it, so a failed write-back leaves the dirty
            # page resident instead of silently losing it.
            victim_id = next(iter(self._frames))
            victim = self._frames[victim_id]
            if victim.dirty:
                self._write_page(victim)
            del self._frames[victim_id]
            self.pager.stats.record_eviction()
        self._frames[page.page_id] = page

    @property
    def resident(self) -> int:
        """Number of pages currently cached."""
        with self._lock:
            return len(self._frames)

    def __contains__(self, page_id: int) -> bool:
        with self._lock:
            return page_id in self._frames

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self.capacity}, "
            f"resident={self.resident})"
        )
