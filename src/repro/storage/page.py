"""Fixed-size page abstraction.

Pages are byte buffers with a small header-free API: read/write a
slice, plus record-oriented helpers used by the B-tree and the bitmap
segment storage.  The default size matches the paper's cost analysis
(p = 4 KiB).

Integrity: a page can produce a CRC32 :func:`checksum` of its content;
the :class:`~repro.storage.pager.Pager` stores that checksum next to
the committed image on every physical write and verifies it on every
physical read, so bit rot and torn writes surface as
:class:`~repro.errors.ChecksumError` instead of silent corruption.
"""

from __future__ import annotations

import zlib
from typing import Optional

from repro.errors import InvalidArgumentError, PageOverflowError


def page_checksum(data: bytes) -> int:
    """CRC32 of a page image, normalised to an unsigned 32-bit value."""
    return zlib.crc32(data) & 0xFFFFFFFF

#: The paper's Section 2.1 analysis assumes p = 4K.
PAGE_SIZE_DEFAULT = 4096


class Page:
    """A fixed-size mutable byte buffer with a dirty flag."""

    __slots__ = ("page_id", "size", "_data", "dirty")

    def __init__(self, page_id: int, size: int = PAGE_SIZE_DEFAULT) -> None:
        if size <= 0:
            raise InvalidArgumentError(
                f"page size must be positive, got {size}"
            )
        self.page_id = page_id
        self.size = size
        self._data = bytearray(size)
        self.dirty = False

    def read(self, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Read ``length`` bytes starting at ``offset``."""
        if length is None:
            length = self.size - offset
        self._check_range(offset, length)
        return bytes(self._data[offset : offset + length])

    def write(self, payload: bytes, offset: int = 0) -> None:
        """Write ``payload`` at ``offset``; marks the page dirty."""
        self._check_range(offset, len(payload))
        self._data[offset : offset + len(payload)] = payload
        self.dirty = True

    def clear(self) -> None:
        """Zero the page content."""
        self._data = bytearray(self.size)
        self.dirty = True

    def snapshot(self) -> bytes:
        """Immutable copy of the full page content."""
        return bytes(self._data)

    def load_image(self, image: bytes) -> None:
        """Replace the content with a committed disk image.

        Used by the pager on physical reads; the page then mirrors
        disk, so the dirty flag is cleared.
        """
        if len(image) != self.size:
            raise PageOverflowError(
                f"image of {len(image)} bytes does not fit page size "
                f"{self.size}"
            )
        self._data = bytearray(image)
        self.dirty = False

    def checksum(self) -> int:
        """CRC32 of the current content."""
        return page_checksum(bytes(self._data))

    def free_after(self, used: int) -> int:
        """Bytes remaining after the first ``used`` bytes."""
        return self.size - used

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise PageOverflowError(
                f"range [{offset}, {offset + length}) exceeds page size "
                f"{self.size}"
            )

    def __repr__(self) -> str:
        return f"Page(id={self.page_id}, size={self.size}, dirty={self.dirty})"
