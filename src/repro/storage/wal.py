"""Write-ahead log: length-framed, CRC32-checked append-only records.

Durability for the write path rides on the same principle as the EBI2
index container (:mod:`repro.index.serialization`): every payload is
framed by its length and a CRC32, so *any* torn tail or flipped bit is
detected at replay — recovery keeps the longest clean prefix and
truncates at the first bad frame, never replaying a damaged record.

Two log devices share one frame codec:

- :class:`PagedWriteAheadLog` stores the byte stream in fixed-size
  pages through a :class:`~repro.storage.pager.Pager` — substitute a
  :class:`~repro.faults.pager.FaultyPager` and the whole torn-write /
  bit-rot / failed-write fault matrix applies to the log itself;
- :class:`FileWriteAheadLog` appends to a real file with
  ``flush`` + ``fsync`` per batch, the durable device behind
  :meth:`repro.database.Database.append_rows` /
  :meth:`~repro.database.Database.recover`.

Frame format (little-endian), after a 6-byte stream header
(magic ``EBWL`` + u16 version)::

    offset  size  field
    0       1     kind   (1=append, 2=update, 3=delete, 4=checkpoint)
    1       4     payload length
    5       4     CRC32 over kind + length + payload
    9       n     payload  (UTF-8 JSON, sorted keys)

Doctest (in-memory device; the file device has the same surface)::

    >>> log = PagedWriteAheadLog()
    >>> log.append(WalRecord("append", {"table": "t", "row_id": 0,
    ...                                 "rows": [{"v": 1}]}))
    >>> [r.kind for r in log.records()]
    ['append']
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    CorruptIndexError,
    InvalidArgumentError,
    ReproError,
)
from repro.storage.page import PAGE_SIZE_DEFAULT, Page
from repro.storage.pager import Pager

#: Stream header: magic + format version.
WAL_MAGIC = b"EBWL"
WAL_VERSION = 1
_HEADER = struct.Struct("<4sH")
_FRAME = struct.Struct("<BII")

#: Record kinds; the codec refuses anything else, so a bit flip in the
#: kind byte truncates the log exactly like a CRC mismatch.
RECORD_KINDS: Dict[str, int] = {
    "append": 1,
    "update": 2,
    "delete": 3,
    "checkpoint": 4,
}
_KIND_NAMES = {code: name for name, code in RECORD_KINDS.items()}


@dataclass(frozen=True)
class WalRecord:
    """One logical log record: a kind plus a JSON-safe payload."""

    kind: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in RECORD_KINDS:
            raise InvalidArgumentError(
                f"unknown WAL record kind {self.kind!r}; expected one "
                f"of {sorted(RECORD_KINDS)}"
            )


def wal_header() -> bytes:
    """The 6-byte stream header every log starts with."""
    return _HEADER.pack(WAL_MAGIC, WAL_VERSION)


def encode_record(record: WalRecord) -> bytes:
    """Serialise one record into its length+CRC frame.

    The CRC covers the kind byte and length as well as the payload, so
    a single flipped bit *anywhere* in the frame — including one that
    would turn a valid kind code into another valid kind code — fails
    verification instead of replaying as a different record.
    """
    payload = json.dumps(
        record.data, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    crc = _frame_crc(RECORD_KINDS[record.kind], payload)
    return _FRAME.pack(RECORD_KINDS[record.kind], len(payload), crc) + payload


def _frame_crc(kind_code: int, payload: bytes) -> int:
    prefix = struct.pack("<BI", kind_code, len(payload))
    return zlib.crc32(payload, zlib.crc32(prefix)) & 0xFFFFFFFF


def decode_wal(buffer: bytes) -> Tuple[List[WalRecord], int]:
    """Decode a log byte stream into ``(records, clean_length)``.

    ``clean_length`` is the byte offset of the first bad frame (or the
    header, if that is already damaged) — the longest prefix a recovery
    may keep.  Damage never raises: a torn tail, a flipped bit in a
    length, CRC, kind byte or payload, and trailing garbage all simply
    end the decode at the last intact record.
    """
    if len(buffer) < _HEADER.size:
        return [], 0
    magic, version = _HEADER.unpack_from(buffer, 0)
    if magic != WAL_MAGIC or version != WAL_VERSION:
        return [], 0
    records: List[WalRecord] = []
    offset = _HEADER.size
    while offset + _FRAME.size <= len(buffer):
        kind_code, length, crc = _FRAME.unpack_from(buffer, offset)
        kind = _KIND_NAMES.get(kind_code)
        start = offset + _FRAME.size
        end = start + length
        if kind is None or end > len(buffer):
            break
        payload = buffer[start:end]
        if _frame_crc(kind_code, payload) != crc:
            break
        try:
            data = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(data, dict):
            break
        records.append(WalRecord(kind, data))
        offset = end
    return records, offset


class PagedWriteAheadLog:
    """A WAL whose byte stream lives in pager pages.

    Appends rewrite only the pages a frame touches; reads pull every
    page back through the pager, so a :class:`~repro.faults.pager.
    FaultyPager` schedule (failed writes, torn tails, bit rot) hits the
    log exactly as it would hit index payloads.  A page that fails its
    CRC at read time truncates the recovered stream at that page
    boundary — together with the frame CRCs this keeps the longest
    clean record prefix.
    """

    def __init__(
        self,
        pager: Optional[Pager] = None,
        *,
        page_size: int = PAGE_SIZE_DEFAULT,
    ) -> None:
        if page_size < _HEADER.size:
            raise InvalidArgumentError(
                f"page size {page_size} smaller than the WAL header"
            )
        self.pager = (
            pager if pager is not None else Pager(page_size=page_size)
        )
        self.page_size = self.pager.page_size
        self._pages: List[Page] = []
        self._buffer = bytearray(wal_header())
        self._flush_from(0)

    def __len__(self) -> int:
        return len(self._buffer)

    def append(self, record: WalRecord) -> None:
        """Frame and durably write one record.

        A failed page write propagates *before* the in-memory stream
        advances, so the log never acknowledges a record the device
        rejected.
        """
        frame = encode_record(record)
        start = len(self._buffer)
        self._buffer.extend(frame)
        try:
            self._flush_from(start)
        except Exception:
            del self._buffer[start:]
            raise

    def records(self) -> List[WalRecord]:
        """Replay the log from the device, truncating at damage."""
        stream = bytearray()
        for i, page in enumerate(self._pages):
            if i * self.page_size >= len(self._buffer):
                break
            try:
                fresh = self.pager.read(page.page_id)
            except ReproError:
                # A torn or rotten page ends the recoverable stream at
                # this page boundary; frames fully inside earlier pages
                # are still validated by their own CRCs below.
                break
            stream.extend(fresh.read())
        records, _clean = decode_wal(bytes(stream))
        return records

    # ------------------------------------------------------------------
    def _flush_from(self, start: int) -> None:
        """Write every page overlapping ``buffer[start:]``."""
        first = start // self.page_size
        last = max(first, (len(self._buffer) - 1) // self.page_size)
        for i in range(first, last + 1):
            while i >= len(self._pages):
                self._pages.append(self.pager.allocate())
            page = self._pages[i]
            chunk = bytes(
                self._buffer[i * self.page_size: (i + 1) * self.page_size]
            )
            page.write(chunk, 0)
            self.pager.write(page)


class FileWriteAheadLog:
    """A WAL backed by a real file, fsynced on every append.

    The contract :meth:`repro.database.Database.append_rows` relies on:
    when :meth:`append` returns, the record is durable — a crash at any
    later point replays it.  :meth:`reset` atomically replaces the log
    with a single checkpoint record (write temp, fsync, rename), the
    post-save step that keeps the log from growing without bound.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[Any] = None

    # ------------------------------------------------------------------
    def append(self, record: WalRecord) -> None:
        """Durably append one record (flush + fsync before returning)."""
        handle = self._open()
        handle.write(encode_record(record))
        handle.flush()
        os.fsync(handle.fileno())

    def replay(self, *, truncate: bool = True) -> List[WalRecord]:
        """Read back every intact record, in order.

        With ``truncate=True`` (the default used by recovery) a
        damaged tail is also physically cut from the file, so the next
        append extends a clean stream instead of burying new records
        behind garbage.
        """
        self.close()
        try:
            with open(self.path, "rb") as handle:
                buffer = handle.read()
        except FileNotFoundError:
            return []
        records, clean = decode_wal(buffer)
        if not records and clean == 0 and len(buffer) >= _HEADER.size:
            header = buffer[: _HEADER.size]
            if header != wal_header():
                raise CorruptIndexError(
                    f"WAL {self.path!r} has a damaged header", offset=0
                )
        if truncate and clean < len(buffer):
            with open(self.path, "r+b") as handle:
                handle.truncate(max(clean, _HEADER.size))
                handle.flush()
                os.fsync(handle.fileno())
        return records

    def reset(self, generation: int) -> None:
        """Atomically restart the log at a checkpoint.

        Called after a durable :meth:`repro.database.Database.save`:
        everything before the checkpoint is folded into manifest
        ``generation``, so the old records are retired in one rename.
        """
        self.close()
        tmp = self.path + ".tmp"
        frame = wal_header() + encode_record(
            WalRecord("checkpoint", {"generation": generation})
        )
        with open(tmp, "wb") as handle:
            handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    def _open(self) -> Any:
        if self._handle is None:
            fresh = not os.path.exists(self.path)
            self._handle = open(self.path, "ab")
            if fresh or os.path.getsize(self.path) == 0:
                self._handle.write(wal_header())
        return self._handle

    def __repr__(self) -> str:
        return f"FileWriteAheadLog({self.path!r})"
