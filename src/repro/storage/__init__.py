"""Simulated paged storage.

The paper's cost unit is "bitmap vectors accessed" because, compared
with disk access, CPU time for logical operations is negligible
(footnote 4).  This package supplies the disk being modelled: a pager
with fixed-size pages, an LRU buffer pool, and I/O statistics, so the
benchmarks can report *page-level* reads in addition to vector counts
and so the B-tree comparator pays realistic node-access costs.
"""

from repro.storage.page import Page, PAGE_SIZE_DEFAULT, page_checksum
from repro.storage.pager import Pager
from repro.storage.buffer_pool import BufferPool
from repro.storage.stats import IOStatistics
from repro.storage.vector_store import PagedVectorStore, VectorHandle
from repro.storage.wal import (
    FileWriteAheadLog,
    PagedWriteAheadLog,
    WalRecord,
    decode_wal,
    encode_record,
)

__all__ = [
    "Page",
    "PAGE_SIZE_DEFAULT",
    "Pager",
    "BufferPool",
    "IOStatistics",
    "PagedVectorStore",
    "VectorHandle",
    "page_checksum",
    "FileWriteAheadLog",
    "PagedWriteAheadLog",
    "WalRecord",
    "decode_wal",
    "encode_record",
]
