"""Compilation of reduced retrieval functions into fused numpy kernels.

``evaluate_dnf`` walks a DNF term by term, allocating a ``BitVector``
per literal (``~vector``) and per term.  A :class:`CompiledKernel`
evaluates the same function directly on the packed ``uint64`` plane
matrix of a :class:`~repro.kernels.planes.PlaneSet`:

* **constant folding** — a false function or a constant-true term
  short-circuits to a zero/ones result with *zero* vector accesses,
  exactly matching ``evaluate_dnf``'s early exits;
* **common-literal factoring** — literals appearing in every term are
  hoisted out of the OR loop and AND-ed into the result once;
* **zero per-literal allocations** — terms accumulate into one
  thread-local scratch buffer via ``np.bitwise_and(..., out=...)``;
  negated literals are row reads from the plane matrix, never fresh
  inversions;
* **adaptive strategy** — short vectors (≤ :data:`GATHER_MAX_WORDS`
  words) use a single gather + ``np.bitwise_and.reduceat`` +
  ``np.bitwise_or.reduce`` (three numpy calls for the whole DNF); long
  vectors use the per-term loop, whose scratch stays cache-resident;
* **run strategy** — handed a
  :class:`~repro.kernels.runs.CompressedPlaneSet` instead of a packed
  matrix, the same plan executes segment-at-a-time on word-aligned
  runs: fill runs short-circuit terms in O(1) per segment and literal
  blocks fall back to vectorised word operations
  (``docs/compression.md``).

Access accounting is bit-identical to the tree walk: the kernel
replays the exact per-term literal order ``evaluate_dnf`` would fetch
into the caller's :class:`~repro.boolean.evaluator.AccessCounter`, so
both ``distinct_accesses`` (the paper's ``c_e``) and raw ``reads``
agree — a property enforced by the randomized differential suite in
``tests/test_kernels.py``.

>>> from repro.bitmap.bitvector import BitVector
>>> from repro.boolean.reduction import reduce_values
>>> from repro.kernels.planes import PlaneSet
>>> planes = [BitVector.from_bools(b) for b in
...           ([True, False, True, False], [False, False, True, True])]
>>> function = reduce_values([1, 3], width=2)   # code has bit 0 set
>>> kernel = compile_function(function)
>>> snapshot = PlaneSet.from_vectors(planes, nbits=4)
>>> kernel.evaluate(snapshot).to_bitstring()
'1010'
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.bitmap.bitvector import BitVector
from repro.bitmap.ops import tail_mask
from repro.bitmap.wah import WordAlignedBitmap
from repro.boolean.evaluator import AccessCounter
from repro.boolean.reduction import ReducedFunction
from repro.cache import LRUCache
from repro.errors import InvalidArgumentError
from repro.kernels.mapped import MappedPlaneSet
from repro.kernels.planes import PlaneSet
from repro.kernels.runs import CompressedPlaneSet

#: Any snapshot type a kernel can evaluate against.  ``PlaneSet`` and
#: ``MappedPlaneSet`` share the dense word-matrix surface (the mapped
#: variant pages in from disk on demand); ``CompressedPlaneSet`` takes
#: the run-at-a-time path.  Rows and ``c_e`` are bit-identical across
#: all three.
PlaneSnapshot = Union[PlaneSet, MappedPlaneSet, CompressedPlaneSet]

#: Word-count crossover between the gather/reduceat strategy and the
#: per-term loop.  Below this the whole-DNF gather fits comfortably in
#: cache and the fixed numpy call overhead dominates, so fewer calls
#: win; above it the gather's ``L x nwords`` copy outweighs the saved
#: dispatch.  Chosen empirically on the bench workload (k=10 planes).
GATHER_MAX_WORDS = 128

#: Compiled kernels kept per process.  Keyed by the (hashable, frozen)
#: ``ReducedFunction`` itself, so any two queries that reduce to the
#: same DNF — across indexes and across partitions — share one kernel.
COMPILE_CACHE_SIZE = 256

_FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)

_scratch_local = threading.local()


def _scratch(nwords: int) -> np.ndarray:
    """A reusable per-thread ``uint64`` buffer of ``nwords`` words.

    Thread-local so concurrent partitions in
    :class:`~repro.shard.executor.ParallelExecutor` never share a
    buffer; bounded so mixed vector lengths cannot grow it forever.
    """
    pool: Optional[Dict[int, np.ndarray]]
    pool = getattr(_scratch_local, "buffers", None)
    if pool is None:
        pool = {}
        _scratch_local.buffers = pool
    buffer = pool.get(nwords)
    if buffer is None:
        if len(pool) >= 8:
            pool.clear()
        buffer = np.empty(nwords, dtype=np.uint64)
        pool[nwords] = buffer
    return buffer


class CompiledKernel:
    """A reduced retrieval function compiled to a word-level plan.

    The plan is computed once (row indices into the plane matrix,
    factored common literals, gather index arrays) and is immutable
    afterwards, so a single kernel may be shared freely across threads
    and across partitions.
    """

    __slots__ = (
        "function",
        "_constant",
        "_access_order",
        "_common_rows",
        "_term_rows",
        "_flat",
        "_bounds",
    )

    def __init__(self, function: ReducedFunction) -> None:
        self.function = function
        width = function.width

        # Constant folding — mirrors evaluate_dnf's early exits, which
        # return without touching any vector.
        self._constant: Optional[bool]
        if function.is_false:
            self._constant = False
        elif any(term.is_constant_true() for term in function.terms):
            self._constant = True
        else:
            self._constant = None

        if self._constant is not None:
            self._access_order: Tuple[int, ...] = ()
            self._common_rows: Tuple[int, ...] = ()
            self._term_rows: Tuple[Tuple[int, ...], ...] = ()
            self._flat = np.empty(0, dtype=np.intp)
            self._bounds = np.empty(0, dtype=np.intp)
            return

        # The exact fetch order evaluate_dnf performs: every term's
        # cared variables, ascending, term by term.  Replayed verbatim
        # into the caller's AccessCounter for c_e parity.
        self._access_order = tuple(
            i for term in function.terms for i in term.variables()
        )

        # One (row, ...) literal tuple per term.  Row i is plane B_i,
        # row width + i is its negation (PlaneSet layout).
        literal_rows: List[Tuple[int, ...]] = []
        for term in function.terms:
            rows = tuple(
                i if (term.bits >> i) & 1 else width + i
                for i in term.variables()
            )
            literal_rows.append(rows)

        # Common-literal factoring: a literal present in every term is
        # AND-ed into the result once, after the OR over the residues.
        common = set(literal_rows[0])
        for rows in literal_rows[1:]:
            common &= set(rows)
        if len(literal_rows) == 1:
            common = set(literal_rows[0])
        self._common_rows = tuple(sorted(common))
        residues = [
            tuple(r for r in rows if r not in common)
            for rows in literal_rows
        ]
        # An empty residue means that term *is* the common conjunction,
        # so the OR over residues is constant true: result == common.
        if any(not rows for rows in residues):
            self._term_rows = ()
        else:
            self._term_rows = tuple(residues)

        # Gather-strategy plan: all residue literal rows flattened plus
        # the start offset of each term, feeding bitwise_and.reduceat.
        flat = [r for rows in self._term_rows for r in rows]
        bounds: List[int] = []
        offset = 0
        for rows in self._term_rows:
            bounds.append(offset)
            offset += len(rows)
        self._flat = np.asarray(flat, dtype=np.intp)
        self._bounds = np.asarray(bounds, dtype=np.intp)

    # ------------------------------------------------------------------
    def record_accesses(self, counter: AccessCounter) -> None:
        """Replay the tree evaluator's vector fetch sequence.

        After this, ``counter.distinct_accesses`` and ``counter.reads``
        equal what :func:`~repro.boolean.evaluator.evaluate_dnf` would
        have recorded for the same function.
        """
        for index in self._access_order:
            counter.record(index)

    @property
    def is_constant(self) -> bool:
        """True when the kernel folds to a constant result."""
        return self._constant is not None

    def evaluate(
        self,
        planes: PlaneSnapshot,
        counter: Optional[AccessCounter] = None,
    ) -> BitVector:
        """Evaluate against a plane snapshot, returning a fresh vector.

        Accepts either a packed :class:`PlaneSet` or a
        :class:`~repro.kernels.runs.CompressedPlaneSet`; the same plan
        (constant fold, factored commons, access order) drives both,
        so results and ``c_e`` accounting are bit-identical.
        """
        if planes.width != self.function.width:
            raise InvalidArgumentError(
                f"plane set width {planes.width} != function width "
                f"{self.function.width}"
            )
        if counter is not None:
            self.record_accesses(counter)

        nbits = planes.nbits
        if self._constant is False:
            return BitVector(nbits)
        if self._constant is True:
            return BitVector.ones(nbits)

        if isinstance(planes, CompressedPlaneSet):
            return self._evaluate_runs(planes)

        matrix = planes.matrix
        nwords = planes.nwords
        if nwords == 0:
            return BitVector(nbits)

        if self._term_rows and len(self._term_rows) >= 2 and (
            nwords <= GATHER_MAX_WORDS
        ):
            words = self._evaluate_gather(matrix)
        else:
            words = self._evaluate_loop(matrix, nwords)

        words[-1] &= tail_mask(nbits)
        return BitVector._from_words(words, nbits)

    # ------------------------------------------------------------------
    def _evaluate_loop(
        self, matrix: np.ndarray, nwords: int
    ) -> np.ndarray:
        """Per-term loop: one scratch buffer, in-place AND/OR only."""
        result = np.empty(nwords, dtype=np.uint64)
        scratch = _scratch(nwords)

        if not self._term_rows:
            # All literals were common: the OR over residues is true.
            result[:] = _FULL_WORD
        else:
            first = True
            for rows in self._term_rows:
                if len(rows) == 1:
                    term_words = matrix[rows[0]]
                else:
                    np.bitwise_and(
                        matrix[rows[0]], matrix[rows[1]], out=scratch
                    )
                    for row in rows[2:]:
                        np.bitwise_and(scratch, matrix[row], out=scratch)
                    term_words = scratch
                if first:
                    result[:] = term_words
                    first = False
                else:
                    np.bitwise_or(result, term_words, out=result)

        for row in self._common_rows:
            np.bitwise_and(result, matrix[row], out=result)
        return result

    def _evaluate_runs(self, planes: CompressedPlaneSet) -> BitVector:
        """Run strategy: combine word-aligned runs segment-at-a-time.

        A term accumulator that collapses to an all-zero fill stops
        reading that term's remaining literals, and the OR loop stops
        once every word is a one-fill; literal blocks fall back to the
        vectorised word operations inside the segment merge
        (:mod:`repro.bitmap.wah`).  The result is materialised — and
        its tail masked — exactly once at the end.
        """
        nbits = planes.nbits
        if planes.nwords == 0:
            return BitVector(nbits)
        acc: Optional[WordAlignedBitmap] = None
        if self._term_rows:
            for rows in self._term_rows:
                term_acc = planes.plane(rows[0])
                for row in rows[1:]:
                    term_acc = term_acc & planes.plane(row)
                    if term_acc.is_zero():
                        break
                acc = term_acc if acc is None else acc | term_acc
                if acc.is_ones_words():
                    break
        for row in self._common_rows:
            plane = planes.plane(row)
            acc = plane if acc is None else acc & plane
            if acc.is_zero():
                break
        if acc is None:
            # Unreachable in practice: residues constant-true with no
            # common literals folds to a constant earlier.  Guarded for
            # plan-shape safety.
            return BitVector.ones(nbits)
        words = acc.to_words()
        words[-1] &= tail_mask(nbits)
        return BitVector._from_words(words, nbits)

    def _evaluate_gather(self, matrix: np.ndarray) -> np.ndarray:
        """Gather strategy: three numpy calls for the whole DNF."""
        gathered = matrix[self._flat]
        terms = np.bitwise_and.reduceat(gathered, self._bounds, axis=0)
        result: np.ndarray = np.bitwise_or.reduce(terms, axis=0)
        for row in self._common_rows:
            np.bitwise_and(result, matrix[row], out=result)
        return result

    def __repr__(self) -> str:
        if self._constant is not None:
            return f"CompiledKernel(constant={self._constant})"
        return (
            f"CompiledKernel(terms={len(self.function.terms)}, "
            f"width={self.function.width}, "
            f"common={len(self._common_rows)})"
        )


_compile_cache: LRUCache[ReducedFunction, CompiledKernel] = LRUCache(
    COMPILE_CACHE_SIZE, metrics_prefix="kernels.compile_cache"
)


def compile_function(function: ReducedFunction) -> CompiledKernel:
    """Compile ``function``, reusing a cached kernel when available.

    Keyed by the frozen ``ReducedFunction`` value, so identical DNFs —
    e.g. the same predicate reduced by 16 partitions sharing one
    mapping — compile exactly once per process.
    """
    cached = _compile_cache.get(function)
    if cached is not None:
        return cached
    kernel = CompiledKernel(function)
    _compile_cache.put(function, kernel)
    return kernel


def compile_cache_stats() -> Tuple[int, int, int]:
    """(hits, misses, current size) of the process compile cache."""
    return (
        _compile_cache.hits,
        _compile_cache.misses,
        len(_compile_cache),
    )


def clear_compile_cache() -> None:
    """Drop all cached kernels (tests and benchmarks)."""
    _compile_cache.clear()
