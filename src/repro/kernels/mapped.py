"""Memory-mapped plane snapshots for out-of-core kernel evaluation.

A :class:`MappedPlaneSet` is the on-disk counterpart of
:class:`~repro.kernels.planes.PlaneSet`: the same ``(2k, nwords)``
uint64 matrix (planes then pre-materialised negations), but backed by
``np.memmap`` over a CRC-headered plane file instead of process RAM.
:meth:`repro.kernels.compiler.CompiledKernel.evaluate` accepts either —
evaluation never writes into the plane matrix, so results, rows and
``c_e`` accounting are bit-identical while the OS pages plane words in
and out on demand.  This is what lets a partition's planes leave RAM
entirely (``docs/out_of_core.md``) and still serve queries.

File layout (little-endian)::

    offset 0      magic     8s   b"EBIPLANE"
           8      version   u32  1
           12     width     u32  k (planes per polarity)
           16     nbits     u64  logical bit length
           24     nwords    u64  words per plane row
           32     payload_crc u32  CRC32 of the matrix bytes
           36     header_crc  u32  CRC32 of bytes [0, 36)
    offset 4096   matrix    2*width*nwords little-endian u64 words

The matrix starts at a :data:`~repro.storage.page.PAGE_SIZE_DEFAULT`
boundary so plane words never share an OS page with the header and the
Section 3 page-count model (``ceil(bytes / p)`` per plane row) maps
directly onto real page faults.  The header CRC is verified on every
:meth:`MappedPlaneSet.open`; the payload CRC is verified by
:meth:`MappedPlaneSet.verify` (a full sequential read, so it is opt-in
rather than paid on every fault-in).

>>> import tempfile, os
>>> from repro.bitmap.bitvector import BitVector
>>> from repro.kernels.planes import PlaneSet
>>> planes = PlaneSet.from_vectors(
...     [BitVector.from_bools([True, False, True])], 3
... )
>>> path = os.path.join(tempfile.mkdtemp(), "planes.ebp")
>>> _ = write_plane_file(planes, path)
>>> mapped = MappedPlaneSet.open(path)
>>> (mapped.width, mapped.nbits, mapped.nwords)
(1, 3, 1)
>>> bool((mapped.matrix == planes.matrix).all())
True
>>> mapped.verify()
>>> mapped.close()
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from typing import Union

import numpy as np

from repro.errors import ChecksumError, CorruptIndexError, InvalidArgumentError
from repro.kernels.planes import PlaneSet
from repro.storage.page import PAGE_SIZE_DEFAULT

#: Plane-file magic; distinguishes plane files from ``.ebi`` payloads.
PLANE_MAGIC = b"EBIPLANE"

#: On-disk format version.
PLANE_FORMAT_VERSION = 1

#: Fixed header fields: magic, version, width, nbits, nwords, payload CRC.
_HEADER = struct.Struct("<8sIIQQI")

#: Trailing header CRC32 (of the ``_HEADER`` bytes).
_HEADER_CRC = struct.Struct("<I")

#: Matrix offset — one whole page, so plane words are page-aligned.
PLANE_DATA_OFFSET = PAGE_SIZE_DEFAULT


def write_plane_file(planes: PlaneSet, path: Union[str, os.PathLike]) -> int:
    """Write a dense plane snapshot as a CRC-headered plane file.

    Writes to ``path + ".tmp"`` and atomically renames, fsyncing the
    file first, so readers never observe a torn plane file.  Returns
    the total file size in bytes.
    """
    matrix = np.ascontiguousarray(planes.matrix, dtype=np.uint64)
    payload = matrix.tobytes()
    header = _HEADER.pack(
        PLANE_MAGIC,
        PLANE_FORMAT_VERSION,
        planes.width,
        planes.nbits,
        planes.nwords,
        zlib.crc32(payload) & 0xFFFFFFFF,
    )
    header += _HEADER_CRC.pack(zlib.crc32(header) & 0xFFFFFFFF)
    # pid + thread ident: concurrent spills of one partition (two
    # executor workers enforcing the budget at once) must never share
    # a temp file, or the rename publishes a torn header.
    tmp = f"{os.fspath(path)}.tmp.{os.getpid()}.{threading.get_ident()}"
    with open(tmp, "wb") as handle:
        handle.write(header)
        handle.write(b"\x00" * (PLANE_DATA_OFFSET - len(header)))
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, os.fspath(path))
    return PLANE_DATA_OFFSET + len(payload)


class MappedPlaneSet:
    """A plane snapshot whose matrix lives in a memory-mapped file.

    Duck-types the :class:`~repro.kernels.planes.PlaneSet` surface the
    kernels consume (``matrix``/``width``/``nbits``/``nwords``/
    ``row``/``nbytes``), with the matrix opened read-only — kernels
    combine plane rows into fresh result arrays, so nothing ever
    writes through the map.  Like ``PlaneSet``, negated rows carry
    garbage past ``nbits``; the kernel masks the final result once.
    """

    __slots__ = ("matrix", "width", "nbits", "nwords", "path")

    def __init__(
        self,
        matrix: np.ndarray,
        width: int,
        nbits: int,
        path: str,
    ) -> None:
        self.matrix = matrix
        self.width = width
        self.nbits = nbits
        self.nwords = int(matrix.shape[1]) if matrix.ndim == 2 else 0
        self.path = path

    @classmethod
    def open(cls, path: Union[str, os.PathLike]) -> "MappedPlaneSet":
        """Map an existing plane file read-only.

        Verifies the header CRC and the declared geometry against the
        file size; raises
        :class:`~repro.errors.CorruptIndexError` /
        :class:`~repro.errors.ChecksumError` on mismatch.  The matrix
        payload is *not* read here — pages fault in lazily as kernels
        touch plane rows.
        """
        path = os.fspath(path)
        with open(path, "rb") as handle:
            raw = handle.read(_HEADER.size + _HEADER_CRC.size)
        if len(raw) < _HEADER.size + _HEADER_CRC.size:
            raise CorruptIndexError(f"plane file {path!r}: truncated header")
        (stored_crc,) = _HEADER_CRC.unpack_from(raw, _HEADER.size)
        if zlib.crc32(raw[: _HEADER.size]) & 0xFFFFFFFF != stored_crc:
            raise ChecksumError(f"plane file {path!r}: header CRC mismatch")
        magic, version, width, nbits, nwords, _payload_crc = _HEADER.unpack_from(
            raw
        )
        if magic != PLANE_MAGIC:
            raise CorruptIndexError(
                f"plane file {path!r}: bad magic {magic!r}"
            )
        if version != PLANE_FORMAT_VERSION:
            raise CorruptIndexError(
                f"plane file {path!r}: unsupported version {version}"
            )
        expected = PLANE_DATA_OFFSET + 2 * width * nwords * 8
        actual = os.path.getsize(path)
        if actual < expected:
            raise CorruptIndexError(
                f"plane file {path!r}: {actual} bytes, need {expected}"
            )
        matrix = np.memmap(
            path,
            dtype="<u8",
            mode="r",
            offset=PLANE_DATA_OFFSET,
            shape=(2 * width, nwords),
        )
        return cls(matrix, width, int(nbits), path)

    def row(self, index: int, positive: bool) -> int:
        """Matrix row holding plane ``index`` (or its negation)."""
        if not 0 <= index < self.width:
            raise InvalidArgumentError(
                f"plane {index} out of range for width {self.width}"
            )
        return index if positive else index + self.width

    def nbytes(self) -> int:
        """Mapped matrix bytes (what a dense snapshot would occupy in
        RAM; the resident subset is whatever the OS has paged in)."""
        return 2 * self.width * self.nwords * 8

    def verify(self) -> None:
        """Full payload CRC check (sequential read of the whole file).

        Raises :class:`~repro.errors.ChecksumError` on mismatch.
        """
        with open(self.path, "rb") as handle:
            raw = handle.read(_HEADER.size)
            magic, version, width, nbits, nwords, payload_crc = (
                _HEADER.unpack(raw)
            )
            handle.seek(PLANE_DATA_OFFSET)
            measured = 0
            remaining = 2 * width * nwords * 8
            while remaining:
                chunk = handle.read(min(remaining, 1 << 20))
                if not chunk:
                    raise CorruptIndexError(
                        f"plane file {self.path!r}: truncated payload"
                    )
                measured = zlib.crc32(chunk, measured)
                remaining -= len(chunk)
        if measured & 0xFFFFFFFF != payload_crc:
            raise ChecksumError(
                f"plane file {self.path!r}: payload CRC mismatch"
            )

    def materialize(self) -> PlaneSet:
        """Copy the mapped matrix into a dense in-RAM ``PlaneSet``.

        Used when a partition is promoted back to the dense tier; do
        not call per query (EBI108 flags full materialisation of
        mapped planes inside loops).
        """
        dense = PlaneSet.__new__(PlaneSet)
        dense.matrix = np.array(self.matrix, dtype=np.uint64, copy=True)
        dense.width = self.width
        dense.nbits = self.nbits
        dense.nwords = self.nwords
        return dense

    def close(self) -> None:
        """Release the underlying map (drops the mmap reference; the
        OS unmaps once no array views remain)."""
        mm = getattr(self.matrix, "_mmap", None)
        self.matrix = np.empty((2 * self.width, 0), dtype=np.uint64)
        if mm is not None:
            try:
                mm.close()
            except (BufferError, ValueError):
                # Live views keep the map alive; the GC finishes it.
                pass

    def __repr__(self) -> str:
        return (
            f"MappedPlaneSet(width={self.width}, nbits={self.nbits}, "
            f"nwords={self.nwords}, path={self.path!r})"
        )
