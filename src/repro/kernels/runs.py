"""Compressed plane snapshots for run-at-a-time kernel evaluation.

A :class:`CompressedPlaneSet` is the word-aligned-run counterpart of
:class:`~repro.kernels.planes.PlaneSet`: the ``k`` bit planes of an
encoded bitmap index and their negations, each stored as a
:class:`~repro.bitmap.wah.WordAlignedBitmap` instead of a dense matrix
row.  :meth:`repro.kernels.compiler.CompiledKernel.evaluate` accepts
either snapshot type and produces bit-identical results with identical
``c_e`` accounting; the compressed path combines planes
segment-at-a-time — fill runs short-circuit in O(1) per segment and
literal blocks fall back to vectorised word operations.

The row-index convention matches ``PlaneSet`` exactly: ``row(i, True)``
is plane ``B_i`` and ``row(i, False)`` (== ``width + i``) is ``~B_i``.
Negations are pre-materialised at snapshot time (cheap: flip fills,
complement literal words) and, as in the packed case, carry garbage in
the tail bits of the last word; masking happens once on the final
result.

>>> from repro.bitmap.bitvector import BitVector
>>> vector = BitVector.from_bools([True, False, True])
>>> planes = CompressedPlaneSet.from_vectors([vector], 3)
>>> planes.width, planes.nbits
(1, 3)
>>> planes.plane(planes.row(0, True)).to_bitvector().to_bitstring()
'101'
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.bitmap.bitvector import BitVector
from repro.bitmap.wah import WordAlignedBitmap
from repro.errors import InvalidArgumentError, LengthMismatchError


class CompressedPlaneSet:
    """Bit planes of one index snapshot, as word-aligned run bitmaps.

    Immutable, like ``PlaneSet``: an index rebuilds its snapshot when
    the underlying data changes (the ``_data_version`` protocol) rather
    than mutating one in place.
    """

    __slots__ = ("planes", "width", "nbits", "nwords")

    def __init__(
        self,
        planes: Tuple[WordAlignedBitmap, ...],
        width: int,
        nbits: int,
    ) -> None:
        if len(planes) != 2 * width:
            raise InvalidArgumentError(
                f"expected {2 * width} compressed planes, got {len(planes)}"
            )
        self.planes = planes
        self.width = width
        self.nbits = nbits
        self.nwords = planes[0].nwords if planes else 0

    @classmethod
    def from_vectors(
        cls, vectors: Sequence[BitVector], nbits: int
    ) -> "CompressedPlaneSet":
        """Snapshot ``k`` plane vectors plus their negations.

        ``vectors[i]`` becomes compressed plane ``i``; its complement
        becomes plane ``k + i``.  Every vector must have length
        ``nbits``.
        """
        width = len(vectors)
        positives: list[WordAlignedBitmap] = []
        for vector in vectors:
            if len(vector) != nbits:
                raise LengthMismatchError(nbits, len(vector))
            positives.append(WordAlignedBitmap.from_bitvector(vector))
        negatives = [~plane for plane in positives]
        return cls(tuple(positives + negatives), width, nbits)

    def row(self, index: int, positive: bool) -> int:
        """Plane-tuple row holding plane ``index`` (or its negation)."""
        if not 0 <= index < self.width:
            raise InvalidArgumentError(
                f"plane {index} out of range for width {self.width}"
            )
        return index if positive else index + self.width

    def plane(self, row: int) -> WordAlignedBitmap:
        """The compressed plane at a row index from :meth:`row`."""
        return self.planes[row]

    def nbytes(self) -> int:
        """Serialized bytes across planes and negations."""
        return sum(plane.nbytes() for plane in self.planes)

    def packed_nbytes(self) -> int:
        """What a dense :class:`~repro.kernels.planes.PlaneSet` of the
        same shape would occupy — the compression bench's baseline."""
        return 2 * self.width * self.nwords * 8

    def __repr__(self) -> str:
        return (
            f"CompressedPlaneSet(width={self.width}, nbits={self.nbits}, "
            f"nwords={self.nwords}, nbytes={self.nbytes()})"
        )
