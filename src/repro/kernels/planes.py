"""Packed plane matrices consumed by compiled retrieval kernels.

A :class:`PlaneSet` lays the ``k`` bit-plane vectors of an encoded
bitmap index (and their negations) out as one contiguous
``(2k, nwords)`` ``uint64`` matrix: row ``i`` holds plane ``B_i``'s
words, row ``k + i`` holds ``~B_i``.  Pre-materialising the negations
lets a kernel evaluate any literal — plain or negated — as a plain row
read, with no per-literal allocation or invert pass at query time.

Negated rows deliberately keep garbage in the bits beyond the logical
length (the tail of the last word): masking happens once on the final
result, not per row.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bitmap.bitvector import BitVector
from repro.bitmap.ops import packed_length
from repro.errors import InvalidArgumentError, LengthMismatchError


class PlaneSet:
    """The bit planes of one index snapshot, as a dense word matrix.

    Instances are immutable snapshots: an index rebuilds its plane set
    whenever the underlying data changes (see the ``_data_version``
    tracking in :class:`~repro.index.encoded_bitmap.EncodedBitmapIndex`)
    rather than mutating one in place.
    """

    __slots__ = ("matrix", "width", "nbits", "nwords")

    def __init__(self, matrix: np.ndarray, width: int, nbits: int) -> None:
        self.matrix = matrix
        self.width = width
        self.nbits = nbits
        self.nwords = matrix.shape[1] if matrix.ndim == 2 else 0

    @classmethod
    def from_vectors(
        cls, vectors: Sequence[BitVector], nbits: int
    ) -> "PlaneSet":
        """Snapshot ``k`` plane vectors into a ``(2k, nwords)`` matrix.

        ``vectors[i]`` becomes row ``i``; its negation becomes row
        ``k + i``.  Every vector must have length ``nbits``.
        """
        width = len(vectors)
        nwords = packed_length(nbits)
        matrix = np.empty((2 * width, nwords), dtype=np.uint64)
        for i, vector in enumerate(vectors):
            if len(vector) != nbits:
                raise LengthMismatchError(nbits, len(vector))
            matrix[i] = vector.words
        if width:
            np.bitwise_not(matrix[:width], out=matrix[width:])
        return cls(matrix, width, nbits)

    def row(self, index: int, positive: bool) -> int:
        """Matrix row holding plane ``index`` (or its negation)."""
        if not 0 <= index < self.width:
            raise InvalidArgumentError(
                f"plane {index} out of range for width {self.width}"
            )
        return index if positive else index + self.width

    def nbytes(self) -> int:
        """Bytes held by the matrix (planes plus negations)."""
        return int(self.matrix.nbytes)

    def __repr__(self) -> str:
        return (
            f"PlaneSet(width={self.width}, nbits={self.nbits}, "
            f"nwords={self.nwords})"
        )
