"""Compiled retrieval kernels for encoded bitmap indexes.

This package turns a reduced retrieval function
(:class:`~repro.boolean.reduction.ReducedFunction`) into a fused
word-level numpy kernel evaluated directly on packed ``uint64`` plane
matrices — the fast path behind
:meth:`EncodedBitmapIndex.lookup <repro.index.base.Index.lookup>`.
The slow tree walk in :mod:`repro.boolean.evaluator` is kept as the
differential-testing reference; see ``docs/performance.md`` for the
full compile/cache pipeline.
"""

from repro.kernels.compiler import (
    COMPILE_CACHE_SIZE,
    GATHER_MAX_WORDS,
    CompiledKernel,
    PlaneSnapshot,
    clear_compile_cache,
    compile_cache_stats,
    compile_function,
)
from repro.kernels.mapped import (
    MappedPlaneSet,
    PLANE_FORMAT_VERSION,
    write_plane_file,
)
from repro.kernels.planes import PlaneSet
from repro.kernels.runs import CompressedPlaneSet

__all__ = [
    "COMPILE_CACHE_SIZE",
    "GATHER_MAX_WORDS",
    "PLANE_FORMAT_VERSION",
    "CompiledKernel",
    "CompressedPlaneSet",
    "MappedPlaneSet",
    "PlaneSet",
    "PlaneSnapshot",
    "write_plane_file",
    "clear_compile_cache",
    "compile_cache_stats",
    "compile_function",
]
