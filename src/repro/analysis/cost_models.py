"""Closed-form cost models (Sections 2.1 and 3.1 of the paper).

Notation follows the paper: ``n = |T|`` rows, ``m = |A|`` attribute
cardinality, ``k = ceil(log2 m)`` encoded vectors, ``delta`` the width
of a range selection (number of selected values), ``p`` page size and
``M`` B-tree degree.

The best-case encoded cost ``c_e_best`` implements Property 3.1 of
the companion technical report, re-derived here as
``k - tz(delta)`` where ``tz`` is the number of trailing zero bits of
``delta``: a selection of ``delta = 2^t * odd`` optimally placed
values aligns its largest subcube group on ``t`` free dimensions, so
the reduced expression drops ``t`` variables.  This model reproduces
every number printed in the paper (area ratios 0.84/0.90, point
savings 83%/90%).
"""

from __future__ import annotations

import math
from repro.errors import InvalidArgumentError


def _check_cardinality(m: int) -> None:
    if m < 2:
        raise InvalidArgumentError(f"cardinality must be >= 2, got {m}")


def encoded_vectors(m: int) -> int:
    """``h = ceil(log2 m)`` vectors for an encoded bitmap index."""
    _check_cardinality(m)
    return math.ceil(math.log2(m))


def simple_vectors(m: int) -> int:
    """``h = m`` vectors for a simple bitmap index."""
    _check_cardinality(m)
    return m


def trailing_zeros(x: int) -> int:
    """Number of trailing zero bits of a positive integer."""
    if x <= 0:
        raise InvalidArgumentError(f"expected positive integer, got {x}")
    return (x & -x).bit_length() - 1


def c_s(delta: int) -> int:
    """Simple-bitmap vectors accessed for a delta-wide range search."""
    if delta < 1:
        raise InvalidArgumentError(f"delta must be >= 1, got {delta}")
    return delta


def c_e_best(delta: int, m: int) -> int:
    """Best-case encoded vectors accessed (Property 3.1 model)."""
    if delta < 1 or delta > m:
        raise InvalidArgumentError(f"delta must be in [1, {m}], got {delta}")
    k = encoded_vectors(m)
    return max(0, k - trailing_zeros(delta))


def c_e_worst(m: int) -> int:
    """Worst-case encoded vectors accessed: all ``k`` of them."""
    return encoded_vectors(m)


# ----------------------------------------------------------------------
# space (Section 2.1)
# ----------------------------------------------------------------------
def simple_bitmap_bytes(n: int, m: int) -> float:
    """``n * m / 8`` bytes for a simple bitmap index."""
    return n * simple_vectors(m) / 8.0


def encoded_bitmap_bytes(n: int, m: int) -> float:
    """``n * ceil(log2 m) / 8`` bytes for an encoded bitmap index."""
    return n * encoded_vectors(m) / 8.0


def btree_bytes(n: int, degree: int = 512, page_size: int = 4096) -> float:
    """``~1.44 n / M * p`` bytes for a B-tree (Section 2.1)."""
    return 1.44 * n / degree * page_size


def btree_space_crossover(degree: int = 512, page_size: int = 4096) -> float:
    """Cardinality below which simple bitmaps beat B-trees on space.

    From ``n m / 8 < 1.44 n / M * p``: ``m < 11.52 p / M`` — the
    paper's m < 93 at p = 4K, M = 512.
    """
    return 11.52 * page_size / degree


# ----------------------------------------------------------------------
# build time (Section 2.1)
# ----------------------------------------------------------------------
def btree_build_cost(
    n: int, m: int, degree: int = 512, page_size: int = 4096
) -> float:
    """``O(n log_{M/2} m) + O(n log2 (p/4))`` abstract operations."""
    _check_cardinality(m)
    traverse = n * (math.log(m) / math.log(degree / 2)) if m > 1 else 0.0
    insert = n * math.log2(page_size / 4)
    return traverse + insert


def bitmap_build_cost(n: int, h: int) -> float:
    """``O(n * h)`` for any bitmap index with ``h`` vectors."""
    return float(n * h)


# ----------------------------------------------------------------------
# sparsity (Section 3.1)
# ----------------------------------------------------------------------
def simple_sparsity(m: int) -> float:
    """Average sparsity ``(m - 1) / m`` of simple bitmap vectors."""
    _check_cardinality(m)
    return (m - 1) / m


def encoded_sparsity() -> float:
    """Encoded vectors are ~half zeros, independent of ``m``."""
    return 0.5


# ----------------------------------------------------------------------
# maintenance (Section 3.1)
# ----------------------------------------------------------------------
def update_cost_no_expansion(h: int) -> int:
    """``O(h)`` per appended tuple, both index families."""
    return h


def simple_expansion_cost(n: int, m: int) -> float:
    """Simple bitmap domain expansion: ``O(|T|) + O(h)``.

    A brand-new value needs a full new n-bit vector.
    """
    return float(n + simple_vectors(m))


def encoded_expansion_cost(n: int, m: int, grows_width: bool) -> float:
    """Encoded expansion: between ``O(h)`` and ``O(|T|) + O(h)``.

    Without width growth only the mapping changes; with growth a new
    zero vector is appended (O(n) zero bits) plus function revisions.
    """
    k = encoded_vectors(m)
    return float(n + k) if grows_width else float(k)


# ----------------------------------------------------------------------
# cooperativity (Section 2.1)
# ----------------------------------------------------------------------
def compound_btrees_needed(attributes: int) -> int:
    """``2^n - 1`` compound B-trees to cover all condition subsets."""
    if attributes < 1:
        raise InvalidArgumentError("need at least one attribute")
    return (1 << attributes) - 1


def crossover_delta(m: int) -> float:
    """Range width above which encoded beats simple: delta > log2 m + 1."""
    _check_cardinality(m)
    return math.log2(m) + 1
