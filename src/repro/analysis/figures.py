"""Series generators for the paper's quantitative figures.

``figure9_series`` produces the three curves of Figure 9 (``c_s``,
best-case ``c_e`` and the worst-case line ``c_e_w = k``) for a given
cardinality; ``figure10_series`` produces the vector-count curves of
Figure 10.  Benches print these and compare them against measured
values from real indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.analysis.cost_models import (
    c_e_best,
    c_e_worst,
    c_s,
    encoded_vectors,
    simple_vectors,
)


@dataclass(frozen=True)
class Figure9Row:
    """One point of Figure 9: costs at a given range width delta."""

    delta: int
    c_s: int
    c_e_best: int
    c_e_worst: int

    @property
    def encoded_wins(self) -> bool:
        """Does encoded (even at worst case) beat simple here?"""
        return self.c_e_worst < self.c_s


def figure9_series(
    m: int, deltas: Optional[Sequence[int]] = None
) -> List[Figure9Row]:
    """The Figure 9 curves for cardinality ``m``.

    By default sweeps every delta in ``1..m`` — exactly the x-axis of
    the paper's plots (|A| = 50 for 9a, |A| = 1000 for 9b).
    """
    if deltas is None:
        deltas = range(1, m + 1)
    k = c_e_worst(m)
    return [
        Figure9Row(
            delta=delta,
            c_s=c_s(delta),
            c_e_best=c_e_best(delta, m),
            c_e_worst=k,
        )
        for delta in deltas
    ]


@dataclass(frozen=True)
class Figure10Row:
    """One point of Figure 10: vector counts at cardinality ``m``."""

    m: int
    simple_vectors: int
    encoded_vectors: int


def figure10_series(
    cardinalities: Iterable[int],
) -> List[Figure10Row]:
    """The Figure 10 curves: ``m`` vs ``ceil(log2 m)`` bit vectors."""
    return [
        Figure10Row(
            m=m,
            simple_vectors=simple_vectors(m),
            encoded_vectors=encoded_vectors(m),
        )
        for m in cardinalities
    ]


def crossover_point(m: int) -> int:
    """Smallest delta at which worst-case encoded beats simple."""
    k = c_e_worst(m)
    for delta in range(1, m + 1):
        if k < c_s(delta):
            return delta
    return m
