"""Programmatic validation of every number printed in the paper.

Each check recomputes one of the paper's claims with library objects
and compares against the printed value.  ``run_all_checks`` returns a
list of :class:`CheckResult`; the CLI's ``validate`` command renders
them as a PASS/FAIL table.  This is EXPERIMENTS.md as executable code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one paper-claim check."""

    claim: str
    paper_value: str
    our_value: str
    passed: bool
    source: str  # where in the paper the claim appears


def _check_figure1() -> CheckResult:
    from repro.boolean.reduction import reduce_values

    reduced = reduce_values([0b00, 0b01], 2)
    ours = reduced.to_string()
    return CheckResult(
        claim="f_a + f_b reduces to B1'",
        paper_value="B1'",
        our_value=ours,
        passed=ours == "B1'",
        source="Section 2.2 / Figure 1",
    )


def _check_width_12000() -> CheckResult:
    from repro.encoding.mapping import code_width

    ours = code_width(12000)
    return CheckResult(
        claim="12000 products need ceil(log2 12000) vectors",
        paper_value="14",
        our_value=str(ours),
        passed=ours == 14,
        source="Section 2.2",
    )


def _check_figure3() -> CheckResult:
    from repro.boolean.reduction import reduce_values

    good = {"a": 0b000, "c": 0b001, "g": 0b010, "e": 0b011,
            "b": 0b100, "d": 0b101, "h": 0b110, "f": 0b111}
    bad = {"a": 0b000, "c": 0b001, "g": 0b010, "b": 0b011,
           "e": 0b100, "d": 0b101, "h": 0b110, "f": 0b111}
    good_cost = max(
        reduce_values([good[v] for v in sel], 3).vector_count()
        for sel in ("abcd", "cdef")
    )
    bad_cost = min(
        reduce_values([bad[v] for v in sel], 3).vector_count()
        for sel in ("abcd", "cdef")
    )
    return CheckResult(
        claim="Figure 3: proper mapping 1 vector, improper 3",
        paper_value="1 vs 3",
        our_value=f"{good_cost} vs {bad_cost}",
        passed=good_cost == 1 and bad_cost == 3,
        source="Section 2.2 / Figure 3",
    )


def _check_prime_chain_example() -> CheckResult:
    from repro.encoding.chain import find_chain, find_prime_chain

    has_prime = find_prime_chain([0b000, 0b110, 0b010, 0b100]) is not None
    no_chain = find_chain([0b001, 0b011, 0b111]) is None
    return CheckResult(
        claim="prime chain on {000,110,010,100}; none on {001,011,111}",
        paper_value="exists / none",
        our_value=(
            f"{'exists' if has_prime else 'missing'} / "
            f"{'none' if no_chain else 'found'}"
        ),
        passed=has_prime and no_chain,
        source="Section 2.2, after Definition 2.4",
    )


def _check_figure5() -> CheckResult:
    from repro.boolean.reduction import reduce_values

    fig5b = {1: 0b0000, 2: 0b0001, 3: 0b0100, 4: 0b0101,
             5: 0b0010, 6: 0b0011, 7: 0b0110, 8: 0b0111,
             9: 0b1100, 10: 0b1101, 11: 0b1111, 12: 0b1110}
    branches_x = range(1, 9)  # alliance X = companies a, b, c
    dont_cares = [c for c in range(16) if c not in fig5b.values()]
    reduced = reduce_values(
        [fig5b[b] for b in branches_x], 4, dont_cares=dont_cares
    )
    return CheckResult(
        claim="Figure 5(b): 'alliance = X' reads one vector",
        paper_value="1",
        our_value=str(reduced.vector_count()),
        passed=reduced.vector_count() == 1,
        source="Section 2.3 / Figure 5",
    )


def _check_figure6() -> CheckResult:
    from repro.encoding.total_order import (
        is_order_preserving,
        order_preserving_encoding,
    )

    mapping = order_preserving_encoding(
        [101, 102, 103, 104, 105, 106],
        hot_sets=[[101, 102, 104, 105]],
    )
    expected = {101: 0b000, 102: 0b001, 103: 0b010,
                104: 0b100, 105: 0b101, 106: 0b110}
    ours = {v: mapping.encode(v) for v in expected}
    return CheckResult(
        claim="Figure 6 total-order mapping reproduced",
        paper_value="101..106 -> 000,001,010,100,101,110",
        our_value=",".join(format(ours[v], "03b") for v in sorted(ours)),
        passed=ours == expected and is_order_preserving(mapping),
        source="Section 2.3 / Figure 6",
    )


def _check_figure7() -> CheckResult:
    from repro.encoding.range_based import partition_from_predicates

    partition = partition_from_predicates(
        6, 20, [(6, 10), (8, 12), (10, 13), (16, 20)]
    )
    ours = " ".join(str(i) for i in partition.intervals)
    expected = "[6,8) [8,10) [10,12) [12,13) [13,16) [16,20)"
    return CheckResult(
        claim="Figure 7: six induced partitions",
        paper_value=expected,
        our_value=ours,
        passed=ours == expected,
        source="Section 2.3 / Figure 7",
    )


def _check_figure8() -> CheckResult:
    from repro.boolean.reduction import reduce_values

    # the paper's interval encoding; 8 <= A < 12 covers codes 001, 101
    reduced = reduce_values([0b001, 0b101], 3)
    return CheckResult(
        claim="Figure 8: '8 <= A < 12' reduces to B1'B0",
        paper_value="B1'B0",
        our_value=reduced.to_string(),
        passed=reduced.to_string() == "B1'B0",
        source="Section 2.3 / Figure 8",
    )


def _check_crossover() -> CheckResult:
    from repro.analysis.cost_models import btree_space_crossover

    ours = btree_space_crossover(degree=512, page_size=4096)
    return CheckResult(
        claim="bitmap beats B-tree space iff m < 11.52 p/M",
        paper_value="93 (approx)",
        our_value=f"{ours:.2f}",
        passed=92.0 <= ours < 93.0,
        source="Section 2.1",
    )


def _check_compound_btrees() -> CheckResult:
    from repro.analysis.cost_models import compound_btrees_needed

    ours = compound_btrees_needed(10)
    return CheckResult(
        claim="n attributes need 2^n - 1 compound B-trees",
        paper_value="2^10 - 1 = 1023",
        our_value=str(ours),
        passed=ours == 1023,
        source="Section 2.1",
    )


def _check_area_ratios() -> CheckResult:
    from repro.analysis.savings import area_ratio

    r50 = area_ratio(50)
    r1000 = area_ratio(1000)
    return CheckResult(
        claim="area ratios at |A| = 50 and 1000",
        paper_value="0.84 / 0.90",
        our_value=f"{r50:.3f} / {r1000:.3f}",
        passed=abs(r50 - 0.84) < 0.005 and abs(r1000 - 0.90) < 0.005,
        source="Section 3.2",
    )


def _check_peak_savings() -> CheckResult:
    from repro.analysis.savings import point_saving

    s50 = point_saving(32, 50)
    s1000 = point_saving(512, 1000)
    return CheckResult(
        claim="peak savings at delta=32/|A|=50 and delta=512/|A|=1000",
        paper_value="83% / 90%",
        our_value=f"{s50:.1%} / {s1000:.1%}",
        passed=abs(s50 - 5 / 6) < 0.001 and abs(s1000 - 0.9) < 0.001,
        source="Section 3.2",
    )


def _check_sparsity() -> CheckResult:
    from repro.analysis.cost_models import (
        encoded_sparsity,
        simple_sparsity,
    )

    ours = f"{simple_sparsity(100):.2f} / {encoded_sparsity():.2f}"
    return CheckResult(
        claim="sparsity: simple (m-1)/m, encoded ~1/2",
        paper_value="0.99 (m=100) / 0.50",
        our_value=ours,
        passed=ours == "0.99 / 0.50",
        source="Section 3.1",
    )


def _check_tpcd() -> CheckResult:
    from repro.workload.tpcd import range_query_share

    ranges, total = range_query_share()
    return CheckResult(
        claim="TPC-D query classes involving range search",
        paper_value="12 of 17",
        our_value=f"{ranges} of {total}",
        passed=(ranges, total) == (12, 17),
        source="Section 3.2",
    )


def _check_groupset() -> CheckResult:
    from repro.analysis.cost_models import encoded_vectors
    from repro.index.groupset import GroupSetIndex

    simple = GroupSetIndex.simple_vector_count([100, 200, 500])
    encoded = sum(encoded_vectors(m) for m in (100, 200, 500))
    return CheckResult(
        claim="group-set vectors for cards 100 x 200 x 500",
        paper_value="10^7 vs 'only 20'",
        our_value=f"{simple:,} vs {encoded}",
        passed=simple == 10**7 and encoded <= 30,
        source="Section 4",
    )


def _check_crossover_delta() -> CheckResult:
    from repro.analysis.figures import crossover_point

    ours = (crossover_point(50), crossover_point(1000))
    return CheckResult(
        claim="encoded beats simple when delta > log2|A| + 1",
        paper_value="delta >= 7 (m=50), >= 11 (m=1000)",
        our_value=f"delta >= {ours[0]} / >= {ours[1]}",
        passed=ours == (7, 11),
        source="Section 3.1",
    )


_CHECKS: Tuple[Callable[[], CheckResult], ...] = (
    _check_figure1,
    _check_width_12000,
    _check_figure3,
    _check_prime_chain_example,
    _check_figure5,
    _check_figure6,
    _check_figure7,
    _check_figure8,
    _check_crossover,
    _check_compound_btrees,
    _check_area_ratios,
    _check_peak_savings,
    _check_sparsity,
    _check_tpcd,
    _check_groupset,
    _check_crossover_delta,
)


def run_all_checks() -> List[CheckResult]:
    """Execute every paper-claim check and return the results."""
    return [check() for check in _CHECKS]


def all_passed() -> bool:
    return all(result.passed for result in run_all_checks())
