"""Worst-case analysis (Section 3.2 of the paper).

The paper quantifies the benefit of well-defined encodings as the
ratio between the areas under the best-case curve and the worst-case
line ``c_e_w = k``:

* |A| = 50  -> ratio 0.84 (16% average saving),
* |A| = 1000 -> ratio 0.90 (10% average saving),

with point savings up to 83% (delta = 32, |A| = 50) and 90%
(delta = 512, |A| = 1000).  These functions compute those quantities
from the cost model so the benchmark can print paper-vs-computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.cost_models import c_e_best, c_e_worst


def area_ratio(m: int) -> float:
    """Area under best-case ``c_e`` divided by area under ``k`` line."""
    k = c_e_worst(m)
    best_area = sum(c_e_best(delta, m) for delta in range(1, m + 1))
    worst_area = k * m
    return best_area / worst_area


def average_saving(m: int) -> float:
    """The paper's 'saving of processing cost': ``1 - area_ratio``."""
    return 1.0 - area_ratio(m)


def point_saving(delta: int, m: int) -> float:
    """Saving at one specific range width (e.g. 83% at delta=32, m=50)."""
    k = c_e_worst(m)
    return 1.0 - c_e_best(delta, m) / k


@dataclass(frozen=True)
class WorstCaseSummary:
    """All Section 3.2 headline numbers for one cardinality."""

    m: int
    k: int
    area_ratio: float
    average_saving: float
    best_delta: int
    best_saving: float


def worst_case_summary(m: int) -> WorstCaseSummary:
    """Compute the Section 3.2 numbers for cardinality ``m``.

    ``best_delta`` is the largest power of two <= m — where the
    reduction collapses to a single variable and the saving peaks.
    """
    k = c_e_worst(m)
    best_delta = 1 << (m.bit_length() - 1)
    if best_delta > m:
        best_delta >>= 1
    return WorstCaseSummary(
        m=m,
        k=k,
        area_ratio=area_ratio(m),
        average_saving=average_saving(m),
        best_delta=best_delta,
        best_saving=point_saving(best_delta, m),
    )


def paper_reference_numbers() -> Dict[str, float]:
    """The constants printed in the paper, for bench comparison."""
    return {
        "area_ratio_m50": 0.84,
        "area_ratio_m1000": 0.90,
        "max_saving_m50_delta32": 0.83,
        "max_saving_m1000_delta512": 0.90,
        "tpcd_range_queries": 12,
        "tpcd_total_queries": 17,
        "btree_space_crossover_m": 93,
    }
