"""Analytical cost models from Sections 2.1 and 3 of the paper."""

from repro.analysis.cost_models import (
    encoded_vectors,
    simple_vectors,
    c_s,
    c_e_best,
    c_e_worst,
    simple_bitmap_bytes,
    encoded_bitmap_bytes,
    btree_bytes,
    btree_space_crossover,
    btree_build_cost,
    bitmap_build_cost,
    simple_sparsity,
    encoded_sparsity,
    compound_btrees_needed,
)
from repro.analysis.figures import (
    figure9_series,
    figure10_series,
    Figure9Row,
)
from repro.analysis.savings import (
    area_ratio,
    average_saving,
    point_saving,
    worst_case_summary,
)

__all__ = [
    "encoded_vectors",
    "simple_vectors",
    "c_s",
    "c_e_best",
    "c_e_worst",
    "simple_bitmap_bytes",
    "encoded_bitmap_bytes",
    "btree_bytes",
    "btree_space_crossover",
    "btree_build_cost",
    "bitmap_build_cost",
    "simple_sparsity",
    "encoded_sparsity",
    "compound_btrees_needed",
    "figure9_series",
    "figure10_series",
    "Figure9Row",
    "area_ratio",
    "average_saving",
    "point_saving",
    "worst_case_summary",
]
