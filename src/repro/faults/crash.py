"""Deterministic crash injection for the durability matrix.

Complements :class:`~repro.faults.pager.FaultyPager` (which perturbs
*I/O operations*) with process-death simulation: named
:func:`crash_point` hooks are compiled into the write path —
``Database.save``, the WAL-logged ingest path, index compaction — and
a :class:`CrashSchedule` arms exactly one of them.  When the armed
point is reached, :class:`SimulatedCrash` is raised.

``SimulatedCrash`` subclasses :class:`BaseException` deliberately: a
real crash is not an error the code under test may observe, so no
``except Exception`` handler, retry loop or degraded-mode fallback can
swallow it — only cleanup that would also run on ``kill -9``-adjacent
teardown (``finally`` blocks that delete temp files) executes, which
is exactly the semantics the crash matrix wants to audit.

The matrix test (`tests/test_crash_matrix.py`) iterates
:func:`registered_crash_points` and asserts, for every point, that
:meth:`repro.database.Database.recover` + fsck reaches a consistent
state with zero acknowledged-row loss.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple
from contextlib import contextmanager

from repro.errors import InvalidArgumentError


class SimulatedCrash(BaseException):
    """The process "died" at a crash point.

    Not an :class:`Exception` subclass — see the module docstring.
    Carries the point name for the harness's bookkeeping.
    """

    def __init__(self, point: str) -> None:
        super().__init__(point)
        self.point = point


#: Every compiled-in injection point, name -> where it sits in the
#: write path.  ``crash_point`` refuses unregistered names so the
#: matrix in ``registered_crash_points`` can never silently lag the
#: code.
CRASH_POINTS: Dict[str, str] = {
    "database.save.payloads": (
        "Database.save, before any index payload is written"
    ),
    "database.save.manifest-temp": (
        "Database.save, manifest temp written but not yet fsynced"
    ),
    "database.save.pre-rename": (
        "Database.save, manifest temp durable, before os.replace"
    ),
    "database.save.post-rename": (
        "Database.save, manifest renamed, before the WAL checkpoint"
    ),
    "database.save.cleanup": (
        "Database.save, checkpointed, before stale payload deletion"
    ),
    "database.ingest.pre-log": (
        "facade ingest, before the WAL record is appended"
    ),
    "database.ingest.logged": (
        "facade ingest, WAL record durable, before the table apply"
    ),
    "database.ingest.applied": (
        "facade ingest, table applied, before acknowledgement"
    ),
    "index.compact.pre-swap": (
        "EncodedBitmapIndex.compact, before the plane hot-swap"
    ),
    "index.compact.post-swap": (
        "EncodedBitmapIndex.compact, after the plane hot-swap"
    ),
}


def registered_crash_points() -> Tuple[str, ...]:
    """Every compiled-in crash point name, sorted (the matrix axis)."""
    return tuple(sorted(CRASH_POINTS))


@dataclass
class CrashSchedule:
    """Arm one crash point, optionally letting early hits pass.

    ``skip`` counts matching hits to let through first ("crash the
    second save" is ``skip=1`` on a save point).  ``fired`` records
    whether the crash actually happened — the matrix asserts it, so a
    point that silently stops being reachable fails the suite instead
    of passing vacuously.
    """

    point: str
    skip: int = 0
    fired: bool = False
    hits: int = field(default=0)

    def __post_init__(self) -> None:
        if self.point not in CRASH_POINTS:
            raise InvalidArgumentError(
                f"unknown crash point {self.point!r}; expected one of "
                f"{registered_crash_points()}"
            )


_state_lock = threading.Lock()
_active: Optional[CrashSchedule] = None


def crash_point(name: str) -> None:
    """Declare an injection point; raises when a schedule arms it.

    Disarmed cost is one attribute read and a ``None`` check, so the
    hooks stay in production paths permanently (the same philosophy as
    the checksummed pager: the machinery that tests recovery is the
    machinery that runs for real).
    """
    if name not in CRASH_POINTS:
        raise InvalidArgumentError(f"unknown crash point {name!r}")
    schedule = _active
    if schedule is None or schedule.point != name:
        return
    with _state_lock:
        if _active is not schedule or schedule.fired:
            return
        schedule.hits += 1
        if schedule.skip > 0:
            schedule.skip -= 1
            return
        schedule.fired = True
    raise SimulatedCrash(name)


@contextmanager
def crash_schedule(point: str, *, skip: int = 0) -> Iterator[CrashSchedule]:
    """Arm ``point`` for the duration of the block.

    The schedule fires at most once; recovery code running *after* the
    simulated crash (inside or outside the block) is never re-killed,
    mirroring a real restart on healthy hardware.
    """
    global _active
    schedule = CrashSchedule(point=point, skip=skip)
    with _state_lock:
        if _active is not None:
            raise InvalidArgumentError(
                f"crash point {_active.point!r} is already armed"
            )
        _active = schedule
    try:
        yield schedule
    finally:
        with _state_lock:
            _active = None
