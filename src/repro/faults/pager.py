"""A drop-in pager that injects faults according to a policy.

:class:`FaultyPager` subclasses :class:`~repro.storage.pager.Pager`
and consults a :class:`~repro.faults.policy.FaultPolicy` before every
physical read and write:

* ``fail`` faults raise before touching committed state, so a failed
  write leaves the previous image (and the page's dirty flag) intact;
* ``torn`` writes commit the checksum of the full intended image but
  only a prefix of its bytes — detected as
  :class:`~repro.errors.ChecksumError` on the next physical read;
* ``bitrot`` flips one committed bit (checksum untouched) before the
  read proceeds, which then fails verification.

Everything is deterministic given the policy's seed, which is what
lets the fault-matrix tests assert detection-or-recovery per cell.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PermanentIOError, TransientIOError
from repro.faults.policy import FaultEvent, FaultPolicy
from repro.storage.page import PAGE_SIZE_DEFAULT, Page, page_checksum
from repro.storage.pager import Pager
from repro.storage.stats import IOStatistics


class FaultyPager(Pager):
    """A :class:`Pager` whose physical I/O can fail on schedule."""

    def __init__(
        self,
        page_size: int = PAGE_SIZE_DEFAULT,
        stats: Optional[IOStatistics] = None,
        policy: Optional[FaultPolicy] = None,
    ) -> None:
        super().__init__(page_size=page_size, stats=stats)
        self.policy = policy if policy is not None else FaultPolicy.none()

    # ------------------------------------------------------------------
    def read(self, page_id: int) -> Page:
        event = self.policy.decide("read", page_id)
        if event is not None:
            if event.kind == "fail":
                raise self._fault_error(event)
            if event.kind == "bitrot":
                self._rot_one_bit(page_id)
        return super().read(page_id)

    def write(self, page: Page) -> None:
        event = self.policy.decide("write", page.page_id)
        if event is None:
            super().write(page)
            return
        if event.kind == "fail":
            raise self._fault_error(event)
        if event.kind == "torn":
            self._torn_write(page)
            return
        super().write(page)

    # ------------------------------------------------------------------
    # injection mechanics
    # ------------------------------------------------------------------
    def _fault_error(self, event: FaultEvent) -> Exception:
        message = (
            f"injected {event.operation} fault on page {event.page_id} "
            f"(op #{event.op_index})"
        )
        if event.transient:
            return TransientIOError(message)
        return PermanentIOError(message)

    def _torn_write(self, page: Page) -> None:
        """Commit a partial image under the full image's checksum.

        From the writer's perspective the write succeeded (the page is
        marked clean and the write is counted); the damage is only
        observable at the next physical read, exactly like a torn
        sector write under a crash.
        """
        intended = page.snapshot()
        previous = self._images.get(
            page.page_id, bytes(self.page_size)
        )
        cut = self.policy.draw_offset(len(intended))
        self._images[page.page_id] = intended[:cut] + previous[cut:]
        self._checksums[page.page_id] = page_checksum(intended)
        self.stats.record_write()
        page.dirty = False

    def _rot_one_bit(self, page_id: int) -> None:
        """Flip one bit of the committed image, leaving the CRC stale."""
        image = self._images.get(page_id)
        if image is None or not image:
            return
        bit = self.policy.draw_bit(len(image) * 8)
        rotted = bytearray(image)
        rotted[bit // 8] ^= 1 << (bit % 8)
        self._images[page_id] = bytes(rotted)
