"""Deterministic, seedable fault policies.

A :class:`FaultPolicy` decides, per physical I/O operation, whether a
fault fires and which kind.  All randomness flows through one seeded
``random.Random`` instance, so a given ``(seed, rules, operation
sequence)`` always produces the same fault schedule — the fault-matrix
tests rely on this to assert *exactly* which operation fails.

Rules select operations either probabilistically (``probability``) or
positionally (``skip_first`` / ``max_triggers``), and can be scoped to
specific pages.  Kinds:

``fail``
    The operation raises (:class:`~repro.errors.TransientIOError` or
    :class:`~repro.errors.PermanentIOError` depending on ``transient``)
    and has no effect on the committed state.
``torn``
    A write commits the checksum of the *full* intended image but only
    a prefix of the data — the classic torn/partial page write; the
    next physical read fails its checksum.
``bitrot``
    A read first flips one bit of the committed image (checksum left
    untouched), modelling at-rest media decay; the read then fails its
    checksum.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import InvalidArgumentError

#: Operations a rule can match.
OPERATIONS = ("read", "write")

#: Fault kinds a rule can inject.
KINDS = ("fail", "torn", "bitrot")


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One matching clause of a fault policy.

    Parameters
    ----------
    operation:
        ``"read"`` or ``"write"``.
    kind:
        ``"fail"``, ``"torn"`` or ``"bitrot"`` (``torn`` only makes
        sense on writes, ``bitrot`` on reads).
    probability:
        Chance the rule fires on a matching operation; ``1.0`` fires
        always (and consumes no randomness, keeping schedules stable).
    transient:
        For ``kind="fail"``: raise a transient (retryable) rather than
        permanent error.
    skip_first:
        Number of matching operations to let through before the rule
        may fire — "fail the 3rd write" is ``skip_first=2``.
    max_triggers:
        Stop firing after this many hits (``None`` = unlimited); a
        transient burst is ``transient=True, max_triggers=n``.
    page_ids:
        Restrict the rule to these pages (``None`` = all pages).
    """

    operation: str
    kind: str
    probability: float = 1.0
    transient: bool = True
    skip_first: int = 0
    max_triggers: Optional[int] = None
    page_ids: Optional[FrozenSet[int]] = None

    def __post_init__(self) -> None:
        if self.operation not in OPERATIONS:
            raise InvalidArgumentError(
                f"unknown operation {self.operation!r}; "
                f"expected one of {OPERATIONS}"
            )
        if self.kind not in KINDS:
            raise InvalidArgumentError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise InvalidArgumentError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.kind == "torn" and self.operation != "write":
            raise InvalidArgumentError(
                "torn faults apply to writes only"
            )
        if self.kind == "bitrot" and self.operation != "read":
            raise InvalidArgumentError(
                "bitrot faults apply to reads only"
            )


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """A fault the policy decided to inject on one operation."""

    kind: str
    transient: bool
    operation: str
    page_id: int
    op_index: int


@dataclass
class FaultPolicy:
    """Seeded schedule of injected faults.

    The policy is consulted by :class:`~repro.faults.FaultyPager`
    before every physical read/write.  It is stateful (operation
    counters, per-rule trigger counts, one RNG), so reuse one policy
    per pager and rebuild it to replay a schedule.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()
    _rng: random.Random = field(init=False, repr=False)
    _op_counts: Dict[str, int] = field(init=False, repr=False)
    _seen_counts: Dict[int, int] = field(init=False, repr=False)
    _trigger_counts: Dict[int, int] = field(init=False, repr=False)
    events: List[FaultEvent] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.rules = tuple(self.rules)
        self._rng = random.Random(self.seed)
        self._op_counts = {}
        self._seen_counts = {}
        self._trigger_counts = {}
        self.events = []

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def none(cls, seed: int = 0) -> "FaultPolicy":
        """A policy that never injects anything."""
        return cls(seed=seed, rules=())

    @classmethod
    def single(
        cls,
        operation: str,
        kind: str,
        seed: int = 0,
        **rule_kwargs: object,
    ) -> "FaultPolicy":
        """Policy with exactly one rule (the common test shape)."""
        rule = FaultRule(operation=operation, kind=kind, **rule_kwargs)  # type: ignore[arg-type]
        return cls(seed=seed, rules=(rule,))

    def with_rules(self, rules: Iterable[FaultRule]) -> "FaultPolicy":
        """A fresh policy (same seed) with ``rules`` appended."""
        return FaultPolicy(
            seed=self.seed, rules=self.rules + tuple(rules)
        )

    # ------------------------------------------------------------------
    # the decision procedure
    # ------------------------------------------------------------------
    def decide(self, operation: str, page_id: int) -> Optional[FaultEvent]:
        """Should this operation fault?  First matching rule wins."""
        op_index = self._op_counts.get(operation, 0)
        self._op_counts[operation] = op_index + 1
        for rule_index, rule in enumerate(self.rules):
            if rule.operation != operation:
                continue
            if rule.page_ids is not None and page_id not in rule.page_ids:
                continue
            seen = self._seen_counts.get(rule_index, 0)
            self._seen_counts[rule_index] = seen + 1
            if seen < rule.skip_first:
                continue
            triggered = self._trigger_counts.get(rule_index, 0)
            if (
                rule.max_triggers is not None
                and triggered >= rule.max_triggers
            ):
                continue
            if rule.probability < 1.0 and (
                self._rng.random() >= rule.probability
            ):
                continue
            self._trigger_counts[rule_index] = triggered + 1
            event = FaultEvent(
                kind=rule.kind,
                transient=rule.transient,
                operation=operation,
                page_id=page_id,
                op_index=op_index,
            )
            self.events.append(event)
            return event
        return None

    # ------------------------------------------------------------------
    # deterministic draws used by the injector
    # ------------------------------------------------------------------
    def draw_offset(self, size: int) -> int:
        """Deterministic cut point in ``[1, size)`` for a torn write."""
        if size <= 1:
            return 1
        return self._rng.randrange(1, size)

    def draw_bit(self, nbits: int) -> int:
        """Deterministic bit position in ``[0, nbits)`` for bit rot."""
        if nbits <= 0:
            raise InvalidArgumentError(
                f"cannot pick a bit out of {nbits}"
            )
        return self._rng.randrange(nbits)
