"""Deterministic fault injection for the simulated storage layer.

The paper's cost model treats the k bitmap vectors and the mapping
table as trustworthy; this package supplies the machinery to test what
happens when they are not.  :class:`FaultPolicy` is a seeded schedule
of injected faults (failed reads/writes, torn page writes, bit rot);
:class:`FaultyPager` is a drop-in :class:`~repro.storage.pager.Pager`
that executes that schedule; :class:`RetryPolicy` is the bounded-
backoff recovery path for transient faults.

Everything is deterministic given a seed — no wall-clock time, no
global randomness — so the fault-matrix suite can assert exactly which
operation fails and how it is detected or recovered.
"""

from __future__ import annotations

from repro.faults.crash import (
    CrashSchedule,
    SimulatedCrash,
    crash_point,
    crash_schedule,
    registered_crash_points,
)
from repro.faults.pager import FaultyPager
from repro.faults.policy import (
    KINDS,
    OPERATIONS,
    FaultEvent,
    FaultPolicy,
    FaultRule,
)
from repro.faults.retry import RetryPolicy

__all__ = [
    "KINDS",
    "OPERATIONS",
    "CrashSchedule",
    "FaultEvent",
    "FaultPolicy",
    "FaultRule",
    "FaultyPager",
    "RetryPolicy",
    "SimulatedCrash",
    "crash_point",
    "crash_schedule",
    "registered_crash_points",
]
