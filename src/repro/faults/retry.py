"""Bounded retry with deterministic backoff for transient I/O faults.

The policy retries only :class:`~repro.errors.TransientIOError`;
permanent faults and checksum failures propagate immediately (retrying
cannot fix decayed media — that is :func:`repro.index.verify.repair`'s
job).  Backoff delays form a deterministic geometric series; the
``sleep`` hook defaults to ``time.sleep`` but tests inject a recorder
so no wall-clock time is ever spent in the suite.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, TypeVar

from repro.errors import (
    InvalidArgumentError,
    RetryExhaustedError,
    TransientIOError,
)
from repro.obs.metrics import MetricsRegistry, get_registry

T = TypeVar("T")


class RetryPolicy:
    """Retry a callable up to ``max_attempts`` times with backoff.

    Parameters
    ----------
    max_attempts:
        Total attempts, including the first (must be >= 1).
    base_delay:
        Delay before the first retry, in seconds.
    multiplier:
        Geometric growth factor per retry.
    max_delay:
        Upper bound applied to every delay.
    sleep:
        Hook invoked with each delay; inject a recorder in tests.
    registry:
        Optional metrics registry for the ``faults.*`` counters (see
        ``docs/observability.md``); defaults to the process-wide
        registry, resolved lazily at each :meth:`call`.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.001,
        multiplier: float = 2.0,
        max_delay: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_attempts < 1:
            raise InvalidArgumentError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if base_delay < 0 or max_delay < 0:
            raise InvalidArgumentError("delays must be non-negative")
        if multiplier < 1.0:
            raise InvalidArgumentError(
                f"multiplier must be >= 1, got {multiplier}"
            )
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.sleep = sleep
        self.registry = registry

    def _registry(self) -> MetricsRegistry:
        return self.registry if self.registry is not None else get_registry()

    # ------------------------------------------------------------------
    def delay_for(self, retry_index: int) -> float:
        """Deterministic delay before the ``retry_index``-th retry."""
        delay = self.base_delay * (self.multiplier**retry_index)
        return min(delay, self.max_delay)

    def delays(self) -> List[float]:
        """The full backoff schedule (``max_attempts - 1`` entries)."""
        return [
            self.delay_for(index)
            for index in range(self.max_attempts - 1)
        ]

    def call(self, operation: Callable[[], T]) -> T:
        """Run ``operation``, retrying transient I/O faults.

        Raises :class:`~repro.errors.RetryExhaustedError` (chaining the
        last transient fault) once the attempt budget is spent; every
        other exception propagates unchanged on first occurrence.
        """
        registry = self._registry()
        registry.counter("faults.retry_calls").inc()
        last_error: TransientIOError | None = None
        for attempt in range(self.max_attempts):
            try:
                return operation()
            except TransientIOError as exc:
                last_error = exc
                registry.counter("faults.transient_faults").inc()
                if attempt + 1 < self.max_attempts:
                    delay = self.delay_for(attempt)
                    registry.counter("faults.retries").inc()
                    registry.histogram("faults.backoff_seconds").observe(delay)
                    self.sleep(delay)
        registry.counter("faults.retry_exhausted").inc()
        raise RetryExhaustedError(
            f"I/O still failing after {self.max_attempts} attempts: "
            f"{last_error}",
            attempts=self.max_attempts,
        ) from last_error

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, "
            f"multiplier={self.multiplier}, max_delay={self.max_delay})"
        )
