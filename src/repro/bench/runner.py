"""Suite runner: executes bench cases and writes ``BENCH_*.json``.

Each case runs inside its own fresh :class:`MetricsRegistry` (installed
process-wide for the duration via
:func:`repro.obs.metrics.use_registry`), so the metric snapshot
serialized next to the measurements is exactly what that case caused —
no bleed between cases and no dependence on whatever ran before.

The emitted file is validated against :mod:`repro.bench.schema`
*before* it is written; the harness never publishes a payload it would
itself reject.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.cases import BenchCase, CaseOutcome, cases_for
from repro.bench.compare import Comparison
from repro.bench.schema import SCHEMA_VERSION, assert_valid
from repro.errors import InvalidArgumentError
from repro.obs.metrics import MetricsRegistry, use_registry


@dataclass
class CaseReport:
    """Outcome of one bench case."""

    name: str
    description: str
    comparisons: List[Comparison]
    metrics: Dict[str, Union[int, float]]
    wall_seconds: float
    cpu_seconds: float
    error: Optional[str] = None
    #: Worker-thread counts, for partition-parallel cases (schema v2).
    workers: Optional[Tuple[int, ...]] = None
    #: Overall latency quantiles (name → ms), for serving cases
    #: (schema v3).
    latency_percentiles: Optional[Dict[str, float]] = None
    #: Per-tenant accounting rows, for serving cases (schema v3).
    tenants: Optional[List[Dict[str, Any]]] = None

    @property
    def ok(self) -> bool:
        return self.error is None and all(
            c.ok for c in self.comparisons
        )

    def as_dict(self) -> Dict[str, Any]:
        payload = {
            "name": self.name,
            "description": self.description,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "ok": self.ok,
            "metrics": dict(self.metrics),
            "results": [c.as_dict() for c in self.comparisons],
        }
        if self.workers is not None:
            payload["workers"] = list(self.workers)
        if self.latency_percentiles is not None:
            payload["latency_percentiles"] = dict(
                self.latency_percentiles
            )
        if self.tenants is not None:
            payload["tenants"] = [dict(row) for row in self.tenants]
        return payload


@dataclass
class SuiteReport:
    """Outcome of a whole ``repro bench`` run."""

    suite: str
    quick: bool
    tolerance: float
    cases: List[CaseReport] = field(default_factory=list)
    path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return bool(self.cases) and all(case.ok for case in self.cases)

    def as_payload(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "suite": self.suite,
            "quick": self.quick,
            "tolerance": self.tolerance,
            "ok": self.ok,
            "cases": [case.as_dict() for case in self.cases],
        }

    def render(self) -> str:
        lines = [
            f"bench suite {self.suite!r} "
            f"(tolerance {self.tolerance:.0%}):"
        ]
        for case in self.cases:
            flag = "PASS" if case.ok else "FAIL"
            lines.append(
                f"  [{flag}] {case.name} "
                f"({case.wall_seconds * 1000:.1f} ms) — "
                f"{case.description}"
            )
            if case.error is not None:
                lines.append(f"      error: {case.error}")
            for comparison in case.comparisons:
                marker = "ok " if comparison.ok else "DIV"
                lines.append(f"      {marker} {comparison.describe()}")
        passed = sum(1 for case in self.cases if case.ok)
        lines.append(f"{passed}/{len(self.cases)} cases passed")
        if self.path is not None:
            lines.append(f"wrote {self.path}")
        return "\n".join(lines)


def run_case(case: BenchCase, tolerance: float) -> CaseReport:
    """Run one case under a private registry, timing it."""
    registry = MetricsRegistry()
    error: Optional[str] = None
    outcome = CaseOutcome()
    wall = time.perf_counter()
    cpu = time.process_time()
    with use_registry(registry):
        try:
            returned = case.run(tolerance)
            if isinstance(returned, CaseOutcome):
                outcome = returned
            else:
                outcome = CaseOutcome(comparisons=list(returned))
        except Exception as exc:  # noqa: BLE001 - reported, not hidden
            error = f"{type(exc).__name__}: {exc}"
    return CaseReport(
        name=case.name,
        description=case.description,
        comparisons=outcome.comparisons,
        metrics=registry.collect(),
        wall_seconds=time.perf_counter() - wall,
        cpu_seconds=time.process_time() - cpu,
        error=error,
        workers=case.workers,
        latency_percentiles=outcome.latency_percentiles,
        tenants=outcome.tenants,
    )


def run_suite(
    quick: bool = False,
    tolerance: float = 0.25,
    out_dir: Optional[str] = None,
    suite: Optional[str] = None,
    workers: Optional[Sequence[int]] = None,
    only: Optional[Sequence[str]] = None,
    rows: Optional[int] = None,
) -> SuiteReport:
    """Run a suite and write ``BENCH_<suite>.json``.

    ``suite`` defaults to ``smoke`` for quick runs and ``full``
    otherwise; the file lands in ``out_dir`` (default: the current
    working directory, i.e. the repo root when run via ``make`` or
    CI).  ``workers`` overrides the thread counts of the
    partition-parallel case; ``rows`` overrides the row count of
    every row-parameterised case (CLI: ``--rows 1000000`` — pair it
    with ``--suite`` so a sweep writes its own files).  ``only``
    keeps just the cases whose name contains one of the given
    substrings (CLI: ``--case kernel_eval``); pair it with ``suite``
    so the filtered run writes its own file instead of overwriting
    the full suite's.
    """
    if rows is not None and rows < 1:
        raise InvalidArgumentError(
            f"rows override must be >= 1, got {rows}"
        )
    name = suite if suite is not None else ("smoke" if quick else "full")
    report = SuiteReport(suite=name, quick=quick, tolerance=tolerance)
    cases = cases_for(quick, workers=workers, rows=rows)
    if only:
        selected = [
            case
            for case in cases
            if any(token in case.name for token in only)
        ]
        if not selected:
            available = ", ".join(case.name for case in cases)
            raise InvalidArgumentError(
                f"--case {list(only)} matches no bench case; "
                f"available: {available}"
            )
        cases = selected
    for case in cases:
        report.cases.append(run_case(case, tolerance))
    payload = report.as_payload()
    assert_valid(payload)
    directory = out_dir if out_dir is not None else os.getcwd()
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    report.path = path
    return report
